"""Tests for the verifier cache, client protocol, and host mirrors."""

from __future__ import annotations

import pytest

from repro.core.cache import VerifierCache
from repro.core.hostmirror import (
    VIA_DEFERRED,
    VIA_MERKLE,
    VIA_PINNED,
    VerifierMirror,
)
from repro.core.keys import BitKey
from repro.core.protocol import (
    GET,
    Client,
    ClientTable,
    EpochReceipt,
    OpReceipt,
)
from repro.core.records import DataValue, MerkleValue
from repro.crypto.mac import MacKey
from repro.errors import (
    CacheStateError,
    CapacityError,
    ProtocolError,
    ReplayError,
    SignatureError,
)


def bk(s):
    return BitKey.from_bits_string(s)


def dk(i):
    return BitKey.data_key(i, 8)


# ---------------------------------------------------------------------------
# Verifier cache
# ---------------------------------------------------------------------------
class TestVerifierCache:
    def test_add_get_remove(self):
        cache = VerifierCache(4)
        slot = cache.add(dk(1), DataValue(b"v"))
        assert cache.get(dk(1)).slot == slot
        assert cache.remove(dk(1)) == DataValue(b"v")
        assert dk(1) not in cache

    def test_duplicate_add_is_byzantine(self):
        cache = VerifierCache(4)
        cache.add(dk(1), DataValue(b"v"))
        with pytest.raises(CacheStateError):
            cache.add(dk(1), DataValue(b"v"))

    def test_capacity(self):
        cache = VerifierCache(2)
        cache.add(dk(1), DataValue(b"a"))
        cache.add(dk(2), DataValue(b"b"))
        assert cache.is_full
        with pytest.raises(CapacityError):
            cache.add(dk(3), DataValue(b"c"))

    def test_slots_recycle(self):
        cache = VerifierCache(2)
        s1 = cache.add(dk(1), DataValue(b"a"))
        cache.remove(dk(1))
        s2 = cache.add(dk(2), DataValue(b"b"))
        assert s1 == s2

    def test_pinned_cannot_be_removed(self):
        cache = VerifierCache(2)
        cache.add(BitKey.root(), MerkleValue(), pinned=True)
        with pytest.raises(CacheStateError):
            cache.remove(BitKey.root())

    def test_remove_absent(self):
        with pytest.raises(CacheStateError):
            VerifierCache(2).remove(dk(1))

    def test_update_value(self):
        cache = VerifierCache(2)
        cache.add(dk(1), DataValue(b"a"))
        cache.update(dk(1), DataValue(b"b"))
        assert cache.get(dk(1)).value == DataValue(b"b")

    def test_minimum_capacity(self):
        with pytest.raises(ValueError):
            VerifierCache(1)


# ---------------------------------------------------------------------------
# Host mirror
# ---------------------------------------------------------------------------
class TestVerifierMirror:
    def test_clock_mirroring(self):
        mirror = VerifierMirror(0, 8)
        mirror.observe_add(100)
        assert mirror.clock == 100
        assert mirror.predict_evict() == 101
        mirror.observe_add(50)  # lower timestamp: no regression
        assert mirror.clock == 101

    def test_slot_mirroring_matches_verifier_cache(self):
        """The mirror's freelist must replay VerifierCache's arithmetic."""
        cache = VerifierCache(4)
        mirror = VerifierMirror(0, 4)
        for i in range(3):
            assert (cache.add(dk(i), DataValue(b"x"))
                    == mirror.add(dk(i), DataValue(b"x"), VIA_DEFERRED).slot)
        cache.remove(dk(1))
        mirror.remove(dk(1))
        assert (cache.add(dk(9), DataValue(b"x"))
                == mirror.add(dk(9), DataValue(b"x"), VIA_DEFERRED).slot)

    def test_children_counting(self):
        mirror = VerifierMirror(0, 8)
        mirror.add(bk("0"), MerkleValue(), VIA_PINNED, None)
        mirror.add(bk("01"), MerkleValue(), VIA_MERKLE, bk("0"))
        assert mirror.get(bk("0")).children_cached == 1
        with pytest.raises(ProtocolError):
            mirror.remove(bk("0"))  # child still cached
        mirror.remove(bk("01"))
        assert mirror.get(bk("0")).children_cached == 0

    def test_victims_lru_order(self):
        mirror = VerifierMirror(0, 8)
        mirror.add(dk(1), DataValue(b"a"), VIA_DEFERRED)
        mirror.add(dk(2), DataValue(b"b"), VIA_DEFERRED)
        mirror.touch(dk(1))  # now 2 is least recently used
        victims = mirror.victims(set(), 1)
        assert victims[0].key == dk(2)

    def test_victims_respect_locks_and_pins(self):
        mirror = VerifierMirror(0, 8)
        mirror.add(dk(1), DataValue(b"a"), VIA_PINNED)
        mirror.add(dk(2), DataValue(b"b"), VIA_DEFERRED)
        mirror.add(dk(3), DataValue(b"c"), VIA_DEFERRED)
        victims = mirror.victims({dk(2)}, 1)
        assert victims[0].key == dk(3)

    def test_victims_exhaustion(self):
        mirror = VerifierMirror(0, 8)
        mirror.add(dk(1), DataValue(b"a"), VIA_PINNED)
        with pytest.raises(ProtocolError):
            mirror.victims(set(), 1)

    def test_reparent(self):
        mirror = VerifierMirror(0, 8)
        mirror.add(bk("0"), MerkleValue(), VIA_PINNED, None)
        mirror.add(bk("00"), MerkleValue(), VIA_MERKLE, bk("0"))
        mirror.add(bk("001"), DataValue(b"x"), VIA_MERKLE, bk("0"))
        mirror.reparent(bk("001"), bk("00"))
        assert mirror.get(bk("001")).parent_key == bk("00")
        assert mirror.get(bk("00")).children_cached == 1
        assert mirror.get(bk("0")).children_cached == 1


# ---------------------------------------------------------------------------
# Client protocol
# ---------------------------------------------------------------------------
class TestClientNonces:
    def test_monotone_nonces(self):
        client = Client(1, MacKey.generate())
        assert client.next_nonce() == 1
        assert client.next_nonce() == 2

    def test_sliding_window_accepts_reordering(self):
        table = ClientTable()
        table.register(1, MacKey.generate())
        table.check_nonce(1, 5)
        table.check_nonce(1, 3)  # out of order but fresh: fine
        table.check_nonce(1, 4)

    def test_replay_rejected(self):
        table = ClientTable()
        table.register(1, MacKey.generate())
        table.check_nonce(1, 5)
        with pytest.raises(ReplayError):
            table.check_nonce(1, 5)

    def test_out_of_window_rejected(self):
        table = ClientTable()
        table.register(1, MacKey.generate())
        table.check_nonce(1, ClientTable.WINDOW + 10)
        with pytest.raises(ReplayError):
            table.check_nonce(1, 1)

    def test_unknown_client(self):
        with pytest.raises(ProtocolError):
            ClientTable().check_nonce(9, 1)

    def test_double_registration_rejected(self):
        table = ClientTable()
        table.register(1, MacKey.generate())
        with pytest.raises(ProtocolError):
            table.register(1, MacKey.generate())

    def test_restore_burns_window(self):
        """Post-recovery, all pre-checkpoint nonces are dead (anti-replay
        across reboots)."""
        table = ClientTable()
        table.register(1, MacKey.generate())
        table.check_nonce(1, 7)
        saved = table.nonces()
        table2 = ClientTable()
        table2.register(1, MacKey.generate())
        table2.restore_nonces(saved)
        with pytest.raises(ReplayError):
            table2.check_nonce(1, 7)
        table2.check_nonce(1, saved[1] + ClientTable.WINDOW + 1)


class TestReceipts:
    def _receipt(self, client, payload=b"v", kind=GET, nonce=None):
        if nonce is None:
            nonce = client.next_nonce()
        receipt = OpReceipt(client.client_id, kind, dk(1), payload, nonce, 0, b"")
        receipt.tag = client.key.sign(*receipt.mac_fields())
        return receipt

    def test_accept_valid(self):
        client = Client(1, MacKey.generate())
        receipt = self._receipt(client)
        client.accept(receipt)
        assert not client.settled(receipt.nonce)  # no epoch receipt yet

    def test_settlement_requires_epoch_receipt(self):
        client = Client(1, MacKey.generate())
        receipt = self._receipt(client)
        client.accept(receipt)
        epoch = EpochReceipt(0, b"")
        epoch.tag = client.key.sign(*epoch.mac_fields())
        client.accept_epoch(epoch)
        assert client.settled(receipt.nonce)
        assert client.settled_epoch == 0

    def test_forged_payload_rejected(self):
        client = Client(1, MacKey.generate())
        receipt = self._receipt(client)
        receipt.payload = b"forged"
        with pytest.raises(SignatureError):
            client.accept(receipt)

    def test_unknown_nonce_rejected(self):
        client = Client(1, MacKey.generate())
        receipt = self._receipt(client, nonce=99)
        with pytest.raises(ReplayError):
            client.accept(receipt)

    def test_wrong_client_rejected(self):
        alice = Client(1, MacKey.generate())
        receipt = self._receipt(alice)
        bob = Client(2, MacKey.generate())
        bob.next_nonce()
        with pytest.raises(ProtocolError):
            bob.accept(receipt)

    def test_forged_epoch_receipt_rejected(self):
        client = Client(1, MacKey.generate())
        epoch = EpochReceipt(5, b"\x00" * 32)
        with pytest.raises(SignatureError):
            client.accept_epoch(epoch)

    def test_put_request_binding(self):
        client = Client(1, MacKey.generate())
        request = client.make_put(dk(3), b"payload")
        client.key.verify(request.tag, b"PUT", dk(3).to_bytes(),
                          b"\x01payload", request.nonce.to_bytes(8, "big"))
        with pytest.raises(SignatureError):
            client.key.verify(request.tag, b"PUT", dk(4).to_bytes(),
                              b"\x01payload", request.nonce.to_bytes(8, "big"))

    def test_delete_request_distinct_from_empty(self):
        client = Client(1, MacKey.generate())
        delete = client.make_put(dk(3), None)
        empty = client.make_put(dk(3), b"")
        assert delete.tag != empty.tag


class TestReceiptEpochStraddle:
    """Receipt-channel faults that straddle an epoch boundary: an op
    receipt from epoch N delayed until after the epoch-N batch receipt
    arrived, and duplicates delivered on both sides of the boundary."""

    def _op_receipt(self, client, epoch, payload=b"v"):
        nonce = client.next_nonce()
        receipt = OpReceipt(client.client_id, GET, dk(1), payload, nonce,
                            epoch, b"")
        receipt.tag = client.key.sign(*receipt.mac_fields())
        return receipt

    def _epoch_receipt(self, client, epoch):
        receipt = EpochReceipt(epoch, b"")
        receipt.tag = client.key.sign(*receipt.mac_fields())
        return receipt

    def test_op_receipt_delivered_after_its_epoch_settles(self):
        from repro.core.protocol import ReceiptChannel
        from repro.faults import FaultPlan

        client = Client(1, MacKey.generate())
        channel = ReceiptChannel()
        channel.faults = FaultPlan(0, {"receipt.reorder": [0]})
        held = self._op_receipt(client, epoch=1)
        channel.deliver(held, client)               # withheld by the fault
        assert channel.reordered == 1
        channel.deliver(self._epoch_receipt(client, 1), client)
        assert client.settled_epoch == 1
        assert not client.settled(held.nonce)       # op receipt still missing
        assert channel.flush_held() == 1            # late, out of order
        assert client.settled(held.nonce)           # settles immediately

    def test_straddling_receipts_interleave_with_next_epoch(self):
        from repro.core.protocol import ReceiptChannel
        from repro.faults import FaultPlan

        client = Client(1, MacKey.generate())
        channel = ReceiptChannel()
        channel.faults = FaultPlan(0, {"receipt.reorder": [0]})
        old = self._op_receipt(client, epoch=1)
        channel.deliver(old, client)                # epoch-1 receipt held
        channel.deliver(self._epoch_receipt(client, 1), client)
        fresh = self._op_receipt(client, epoch=2)
        channel.deliver(fresh, client)              # epoch 2 overtakes it
        channel.deliver(self._epoch_receipt(client, 2), client)
        assert client.settled(fresh.nonce)
        channel.flush_held()
        assert client.settled(old.nonce)
        assert client.settled_epoch == 2            # the max wins, no regress

    def test_duplicates_across_the_boundary_are_idempotent(self):
        from repro.core.protocol import ReceiptChannel
        from repro.faults import FaultPlan

        client = Client(1, MacKey.generate())
        channel = ReceiptChannel()
        channel.faults = FaultPlan(0, {"receipt.duplicate": [0]})
        receipt = self._op_receipt(client, epoch=0)
        channel.deliver(receipt, client)            # accepted twice
        assert channel.duplicated == 1
        epoch = self._epoch_receipt(client, 0)
        channel.deliver(epoch, client)
        assert client.settled(receipt.nonce)
        # Replays on the far side of the boundary change nothing.
        channel.deliver(receipt, client)
        channel.deliver(epoch, client)
        channel.deliver(self._epoch_receipt(client, 0), client)
        assert client.settled(receipt.nonce)
        assert client.settled_epoch == 0

    def test_reset_forgets_held_receipts(self):
        from repro.core.protocol import ReceiptChannel
        from repro.faults import FaultPlan

        client = Client(1, MacKey.generate())
        channel = ReceiptChannel()
        channel.faults = FaultPlan(0, {"receipt.reorder": [0]})
        held = self._op_receipt(client, epoch=1)
        channel.deliver(held, client)
        channel.reset()                             # e.g. across a recovery
        assert channel.flush_held() == 0
        assert not client.settled(held.nonce)

"""Unit and property tests for the bit-string key algebra (§4.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.keys import KEY_BITS, BitKey


def bk(s: str) -> BitKey:
    return BitKey.from_bits_string(s)


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------
class TestConstruction:
    def test_root_is_empty_string(self):
        assert BitKey.root().length == 0
        assert BitKey.root().is_root
        assert BitKey.root().to_bits_string() == ""

    def test_from_bits_string_roundtrip(self):
        assert bk("0101").to_bits_string() == "0101"
        assert bk("").is_root

    def test_from_bits_string_rejects_junk(self):
        with pytest.raises(ValueError):
            bk("012")

    def test_bits_must_fit_length(self):
        with pytest.raises(ValueError):
            BitKey(2, 4)  # 4 needs 3 bits

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitKey(-1, 0)

    def test_data_key_width(self):
        key = BitKey.data_key(5, width=16)
        assert key.length == 16
        assert key.bits == 5

    def test_data_key_range_check(self):
        with pytest.raises(ValueError):
            BitKey.data_key(1 << 16, width=16)
        with pytest.raises(ValueError):
            BitKey.data_key(-1, width=16)

    def test_default_width_is_256(self):
        assert BitKey.data_key(1).length == KEY_BITS

    def test_from_bytes_full_width(self):
        key = BitKey.from_bytes(b"\xff\x00")
        assert key.length == 16
        assert key.to_bits_string() == "1111111100000000"

    def test_from_bytes_partial_width(self):
        key = BitKey.from_bytes(b"\xf0", length=4)
        assert key.to_bits_string() == "1111"

    def test_from_bytes_insufficient(self):
        with pytest.raises(ValueError):
            BitKey.from_bytes(b"\x00", length=16)

    def test_immutable(self):
        key = bk("01")
        with pytest.raises(AttributeError):
            key.length = 5


# ---------------------------------------------------------------------------
# Structure
# ---------------------------------------------------------------------------
class TestStructure:
    def test_bit_indexing_msb_first(self):
        key = bk("0110")
        assert [key.bit(i) for i in range(4)] == [0, 1, 1, 0]

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            bk("01").bit(2)

    def test_children(self):
        assert bk("01").child(0) == bk("010")
        assert bk("01").child(1) == bk("011")

    def test_child_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            bk("01").child(2)

    def test_parent(self):
        assert bk("010").parent() == bk("01")
        assert bk("0").parent().is_root

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            BitKey.root().parent()

    def test_prefix(self):
        assert bk("010110").prefix(3) == bk("010")
        assert bk("010110").prefix(0).is_root
        assert bk("010110").prefix(6) == bk("010110")

    def test_prefix_range(self):
        with pytest.raises(ValueError):
            bk("01").prefix(3)


# ---------------------------------------------------------------------------
# Relationships (the §4.2 algebra)
# ---------------------------------------------------------------------------
class TestRelationships:
    def test_ancestor(self):
        assert bk("01").is_ancestor_of(bk("0101"))
        assert bk("01").is_ancestor_of(bk("01"))
        assert not bk("01").is_ancestor_of(bk("00"))
        assert not bk("0101").is_ancestor_of(bk("01"))

    def test_root_is_ancestor_of_everything(self):
        assert BitKey.root().is_ancestor_of(bk("1"))
        assert BitKey.root().is_ancestor_of(BitKey.root())

    def test_proper_ancestor(self):
        assert bk("01").is_proper_ancestor_of(bk("0101"))
        assert not bk("01").is_proper_ancestor_of(bk("01"))

    def test_direction_from_paper_example(self):
        # dir(1011, 1) = 0 (the paper's example in §4.2)
        assert bk("1011").direction_from(bk("1")) == 0

    def test_direction_from(self):
        assert bk("0101").direction_from(BitKey.root()) == 0
        assert bk("1101").direction_from(BitKey.root()) == 1
        assert bk("0101").direction_from(bk("010")) == 1

    def test_direction_requires_proper_ancestor(self):
        with pytest.raises(ValueError):
            bk("01").direction_from(bk("01"))
        with pytest.raises(ValueError):
            bk("01").direction_from(bk("11"))

    def test_lca(self):
        assert bk("0101").lca(bk("0110")) == bk("01")
        assert bk("0101").lca(bk("1101")).is_root
        assert bk("0101").lca(bk("0101")) == bk("0101")
        assert bk("0101").lca(bk("01")) == bk("01")

    def test_ancestors_order(self):
        assert list(bk("010").ancestors()) == [bk("01"), bk("0"), BitKey.root()]
        assert list(BitKey.root().ancestors()) == []


# ---------------------------------------------------------------------------
# Serialization and ordering
# ---------------------------------------------------------------------------
class TestSerialization:
    def test_roundtrip(self):
        for s in ("", "0", "1", "0101", "1" * 255):
            key = bk(s)
            assert BitKey.from_encoded(key.to_bytes()) == key

    def test_length_disambiguates(self):
        assert bk("0").to_bytes() != bk("00").to_bytes()

    def test_truncated_encoding_rejected(self):
        with pytest.raises(ValueError):
            BitKey.from_encoded(b"\x00")
        with pytest.raises(ValueError):
            BitKey.from_encoded(bk("0101").to_bytes() + b"x")

    def test_lexicographic_order(self):
        assert bk("0") < bk("1")
        assert bk("01") < bk("010")   # prefix sorts first
        assert bk("0011") < bk("01")
        assert sorted([bk("1"), bk("0101"), bk("00"), bk("011")]) == [
            bk("00"), bk("0101"), bk("011"), bk("1")
        ]

    def test_hash_eq_consistency(self):
        assert hash(bk("0101")) == hash(BitKey(4, 5))
        assert bk("0101") == BitKey(4, 5)
        assert bk("0101") != bk("00101")


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
keys = st.builds(
    lambda bits: BitKey.from_bits_string(bits),
    st.text(alphabet="01", max_size=64),
)


class TestProperties:
    @given(keys)
    def test_encode_roundtrip(self, key):
        assert BitKey.from_encoded(key.to_bytes()) == key

    @given(keys, keys)
    def test_lca_is_common_ancestor(self, a, b):
        m = a.lca(b)
        assert m.is_ancestor_of(a) and m.is_ancestor_of(b)

    @given(keys, keys)
    def test_lca_is_deepest(self, a, b):
        m = a.lca(b)
        if m.length < min(a.length, b.length):
            # One level deeper on either side must not cover both.
            for side in (0, 1):
                child = m.child(side)
                assert not (child.is_ancestor_of(a) and child.is_ancestor_of(b))

    @given(keys, keys)
    def test_lca_commutes(self, a, b):
        assert a.lca(b) == b.lca(a)

    @given(keys)
    def test_child_parent_inverse(self, key):
        for side in (0, 1):
            assert key.child(side).parent() == key
            assert key.child(side).direction_from(key) == side

    @given(keys, keys)
    def test_order_total_and_consistent(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(keys, keys)
    def test_order_matches_string_order(self, a, b):
        assert (a < b) == (a.to_bits_string() < b.to_bits_string())

    @given(keys)
    def test_ancestors_are_prefixes(self, key):
        for anc in key.ancestors():
            assert anc.is_proper_ancestor_of(key)
            assert key.to_bits_string().startswith(anc.to_bits_string())

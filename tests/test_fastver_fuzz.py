"""Property-based system tests: random op schedules against a model store,
and random tampering that must always be detected (§2.2's guarantee)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FastVer, FastVerConfig, new_client
from repro.core.records import Aux, DataValue, Protection
from repro.errors import IntegrityError
from repro.instrument import COUNTERS

# Operation alphabet for generated schedules.
op_strategy = st.one_of(
    st.tuples(st.just("get"), st.integers(0, 59)),
    st.tuples(st.just("put"), st.integers(0, 59),
              st.binary(min_size=1, max_size=8)),
    st.tuples(st.just("delete"), st.integers(0, 59)),
    st.tuples(st.just("verify")),
)


def build(n_records=40, n_workers=2):
    COUNTERS.reset()
    db = FastVer(
        FastVerConfig(key_width=16, n_workers=n_workers, cache_capacity=48,
                      partition_depth=3),
        items=[(k, b"v%d" % k) for k in range(n_records)],
    )
    client = new_client(1)
    db.register_client(client)
    return db, client


class TestHonestSchedules:
    @given(st.lists(op_strategy, max_size=80))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_model_and_always_settles(self, schedule):
        db, client = build()
        model = {k: b"v%d" % k for k in range(40)}
        worker = 0
        for op in schedule:
            worker = (worker + 1) % 2
            if op[0] == "get":
                got = db.get(client, op[1], worker=worker)
                assert got.payload == model.get(op[1])
            elif op[0] == "put":
                db.put(client, op[1], op[2], worker=worker)
                model[op[1]] = op[2]
            elif op[0] == "delete":
                db.put(client, op[1], None, worker=worker)
                model.pop(op[1], None)
            else:
                db.verify()
        db.verify()
        db.flush()
        # Full readback after final verification matches the model.
        for k in range(60):
            assert db.get(client, k).payload == model.get(k)
        db.verify()
        db.flush()

    @given(st.lists(op_strategy, max_size=50), st.integers(1, 3))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_protection_states_partition_the_database(self, schedule, workers):
        """At any quiescent point every record is in exactly one protection
        state, and the host's indices agree with the aux words."""
        db, client = build(n_workers=workers)
        for op in schedule:
            if op[0] == "get":
                db.get(client, op[1])
            elif op[0] == "put":
                db.put(client, op[1], op[2])
            elif op[0] == "delete":
                db.put(client, op[1], None)
            else:
                db.verify()
        db.flush()
        for key, value, aux_word in db.store.items():
            aux = Aux.unpack(aux_word)
            if key in db.cached_where:
                assert aux.state is Protection.CACHED
                assert key in db.mirrors[db.cached_where[key]].entries
            elif aux.state is Protection.DEFERRED:
                assert db.deferred_index[key] == (aux.timestamp, aux.epoch)
            else:
                assert aux.state is Protection.MERKLE
                assert key not in db.deferred_index


class TestTamperFuzz:
    @given(
        st.lists(op_strategy, min_size=3, max_size=30),
        st.integers(0, 59),
        st.sampled_from(["value", "flip_payload_bit", "aux_timestamp"]),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_tampering_prevents_settlement(self, schedule, victim, how):
        """After arbitrary honest traffic, tamper with one record, then
        continue honestly: no further epoch may ever settle."""
        db, client = build()
        for op in schedule:
            if op[0] == "get":
                db.get(client, op[1])
            elif op[0] == "put":
                db.put(client, op[1], op[2])
            elif op[0] == "delete":
                db.put(client, op[1], None)
            else:
                db.verify()
        db.flush()
        settled_before = client.settled_epoch
        record = db.store.read_record(db.data_key(victim))
        if record is None:
            return  # victim never existed; nothing to tamper
        aux = Aux.unpack(record.aux)
        if aux.state is Protection.CACHED:
            return  # in-enclave copy is authoritative; store copy unused
        if how == "value":
            record.value = DataValue(b"__evil__")
        elif how == "flip_payload_bit":
            payload = record.value.payload if isinstance(record.value, DataValue) else None
            if not payload:
                return
            record.value = DataValue(bytes([payload[0] ^ 1]) + payload[1:])
        else:
            if aux.state is not Protection.DEFERRED:
                return
            record.aux = Aux.deferred(aux.timestamp + 5, aux.epoch).pack()
            db.deferred_index[db.data_key(victim)] = (aux.timestamp + 5,
                                                      aux.epoch)
        detected = False
        try:
            db.get(client, victim)
            db.flush()
            db.verify()
            db.flush()
        except IntegrityError:
            detected = True
        assert detected, "tampering escaped every verifier check"
        assert client.settled_epoch == settled_before

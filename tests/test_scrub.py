"""Background scrub & verified record-level repair tests.

Covers the self-healing loop end to end: budgeted walks over
device-resident pages, quarantine on mismatch, repair through every tier
(cached / deferred / merkle) and from every source (external model,
server read cache, quorum standby), forgery rejection on both the
host-side pre-vet and the enclave gate, retained-checkpoint rot
flagging, and the repair ledger's audit/determinism properties — with
seeded fault-point firings across checkpoint→restore round-trips.
"""

from __future__ import annotations

import pytest

from repro.core.records import DataValue
from repro.errors import (
    RecoveryError,
    RepairFailedError,
    RepairForgeryError,
)
from repro.faults import FaultPlan, install_faults
from repro.faults.plan import FaultSpec
from repro.instrument import COUNTERS
from repro.scrub import Scrubber
from tests.conftest import small_fastver


def scrub_db(n_records=60, **kw):
    """A verified, checkpointed FastVer: the CPR flush puts every page on
    the device, so the scrubber has something at-rest to walk."""
    db, client = small_fastver(n_records=n_records, **kw)
    db.verify()
    db.checkpoint()
    return db, client


def workload_model(n_records):
    """The chaos harness's stand-in for an operator's external backup: a
    payload model plus the ``candidate_fn`` the scrubber consults."""
    payloads = {k: b"v%d" % k for k in range(n_records)}
    return payloads, (lambda bits: (bits in payloads, payloads.get(bits)))


def merkle_at_rest(db):
    """``(address, key)`` for every data record whose at-rest bytes are
    load-bearing: not verifier-cached, not deferred, flushed to device."""
    store = db.store
    device = store.log.device
    out = []
    for key, address in sorted(store.index.snapshot().items(),
                               key=lambda kv: kv[1]):
        if key.length != db.config.key_width:
            continue
        if key in db.cached_where or key in db.deferred_index:
            continue
        if store.log.in_memory(address) or address not in device:
            continue
        out.append((address, key))
    return out


def smash(db, address):
    """Destroy one device page outright (undecodable garbage) — the
    deterministic stand-in for rot/tear damage."""
    db.store.log.device._pages[address] = b"\x01rot"


# ======================================================================
# Budgeted walk
# ======================================================================
class TestScrubWalk:
    def test_clean_store_converges_without_findings(self):
        db, _ = scrub_db()
        scrub = Scrubber(db, budget_pages=16)
        assert scrub.scrub_to_convergence()
        assert scrub.mismatches_found == 0
        assert len(scrub.ledger) == 0
        assert scrub.full_passes >= 1
        assert COUNTERS.scrubbed_pages > 0

    def test_budget_bounds_each_pump_and_cursor_resumes(self):
        db, _ = scrub_db()
        scrub = Scrubber(db, budget_pages=3)
        first = scrub.pump()
        assert 0 < first["pages"] <= 3
        checked = scrub.pages_checked
        scrub.pump()
        assert scrub.pages_checked > checked  # picked up past the cursor
        for _ in range(200):
            if scrub.full_passes:
                break
            scrub.pump()
        assert scrub.full_passes >= 1

    def test_in_memory_pages_are_skipped(self):
        db, _ = small_fastver(n_records=20)
        db.verify()  # no checkpoint: nothing flushed to the device
        scrub = Scrubber(db, budget_pages=64)
        assert scrub.pump()["pages"] == 0


# ======================================================================
# Detection and repair
# ======================================================================
class TestDetectionAndRepair:
    def test_garbage_page_quarantined_then_repaired(self):
        db, client = scrub_db()
        payloads, fn = workload_model(60)
        address, key = merkle_at_rest(db)[0]
        smash(db, address)
        scrub = Scrubber(db, budget_pages=256, candidate_fn=fn)
        assert scrub.scrub_to_convergence()
        assert db.store.quarantined_addresses == []
        outcomes = scrub.ledger.outcomes()
        assert outcomes.get("quarantined") == 1
        assert outcomes.get("repaired") == 1
        repaired = [a for a in scrub.ledger.actions
                    if a.outcome == "repaired"]
        assert repaired[0].source == "external"
        assert repaired[0].reason == "merkle"  # the tier it resolved in
        assert COUNTERS.scrub_mismatches == 1
        assert COUNTERS.scrub_repairs == 1
        # The record reads back verified, and the epoch closes cleanly.
        assert db.get(client, key.bits).payload == payloads[key.bits]
        db.verify()

    def test_single_byte_bitrot_detected(self):
        """The device's own flip pattern (tail-of-page XOR) is caught by
        the same hash comparison the enclave would make on first touch."""
        db, client = scrub_db()
        payloads, fn = workload_model(60)
        scrub = Scrubber(db, budget_pages=256, candidate_fn=fn)
        device = db.store.log.device
        rotted = None
        for address, key in merkle_at_rest(db):
            blob = device._pages[address]
            pos = len(blob) - 1 - (address % max(1, len(blob) // 3))
            device._pages[address] = (blob[:pos]
                                      + bytes([blob[pos] ^ 0x20])
                                      + blob[pos + 1:])
            if scrub._check_page(key, address) is not None:
                rotted = (address, key)
                break
            device._pages[address] = blob  # flip landed in dead bytes
        assert rotted is not None, "no flip produced a detectable rot"
        assert scrub.scrub_to_convergence()
        assert db.store.quarantined_addresses == []
        assert scrub.repairs_done == 1
        assert db.get(client, rotted[1].bits).payload == \
            payloads[rotted[1].bits]

    def test_torn_page_at_rest_repaired(self):
        """A torn page that slipped past a crash (half-written, never
        read back) is caught and patched like any other rot."""
        db, client = scrub_db()
        payloads, fn = workload_model(60)
        address, key = merkle_at_rest(db)[0]
        device = db.store.log.device
        blob = device._pages[address]
        device._pages[address] = blob[:len(blob) // 2]
        scrub = Scrubber(db, budget_pages=256, candidate_fn=fn)
        assert scrub.scrub_to_convergence()
        assert scrub.repairs_done == 1
        assert db.get(client, key.bits).payload == payloads[key.bits]

    def test_cached_record_repaired_without_candidate(self):
        """Verifier-cached pages need no repair courier: the enclave's
        own cache (shadowed by the host mirror) is the authority."""
        db, _ = scrub_db()
        store = db.store
        snapshot = store.index.snapshot()
        victim = None
        for key in sorted(db.cached_where, key=lambda k: (k.length, k.bits)):
            address = snapshot.get(key)
            if address is None or store.log.in_memory(address):
                continue
            if address in store.log.device:
                victim = (address, key)
                break
        assert victim is not None, "no cached record is device-resident"
        smash(db, victim[0])
        # No repl, no server, no candidate_fn: nothing external to ask.
        scrub = Scrubber(db, budget_pages=256)
        assert scrub.scrub_to_convergence()
        repaired = [a for a in scrub.ledger.actions
                    if a.outcome == "repaired"]
        assert repaired and repaired[0].source == "verifier-cache"
        assert repaired[0].reason == "cached"
        db.verify()

    def test_deferred_tier_takes_candidate_and_requires_one(self):
        db, _ = scrub_db()
        deferred = sorted(db.deferred_index,
                          key=lambda k: (k.length, k.bits))
        assert deferred, "setup should leave deferred records (anchors)"
        key = deferred[0]
        with pytest.raises(RepairFailedError):
            db.repair_record(key, None)
        authentic = db.store.read_record(key).value
        assert db.repair_record(key, authentic) == "deferred"
        db.verify()  # the aggregate set-hash check vets it

    def test_injected_bitrot_fault_point_roundtrip(self):
        """The real ``device.read.bitrot`` injection site: one seeded
        firing, then scrub-to-convergence, then a full client sweep and a
        checkpoint→restore round-trip — all healthy."""
        db, client = scrub_db()
        payloads, fn = workload_model(60)
        plan = FaultPlan(0, {"device.read.bitrot": FaultSpec(
            at_counts=(0,), max_fires=1)})
        install_faults(db, plan)
        scrub = Scrubber(db, budget_pages=64, candidate_fn=fn)
        assert scrub.scrub_to_convergence()
        assert plan.fires("device.read.bitrot") == 1
        assert db.store.quarantined_addresses == []
        install_faults(db, None)
        db.verify()
        for k, expected in payloads.items():
            assert db.get(client, k).payload == expected
        checkpoint = db.checkpoint()
        db.recover(checkpoint)
        assert db.get(client, 7).payload == payloads[7]


# ======================================================================
# Forgery rejection (the load-bearing step)
# ======================================================================
class TestForgeryRejection:
    def test_forged_candidate_rejected_host_side(self):
        """With the host pre-vet on, a forged candidate dies *before*
        enclave state is touched — the session stays healthy and an
        honest retry completes."""
        db, client = scrub_db()
        payloads, _ = workload_model(60)
        address, key = merkle_at_rest(db)[0]
        smash(db, address)
        with pytest.raises(RepairForgeryError):
            db.repair_record(key, DataValue(b"forged-bytes"))
        assert db.repair_record(
            key, DataValue(payloads[key.bits])) == "merkle"
        assert db.get(client, key.bits).payload == payloads[key.bits]
        db.verify()

    def test_forged_candidate_rejected_by_enclave_gate(self):
        """A byzantine host that skips its own pre-vet still cannot get a
        forgery past the enclave's parent-hash check."""
        db, _ = scrub_db()
        address, key = merkle_at_rest(db)[0]
        smash(db, address)
        with pytest.raises(RepairForgeryError):
            db.repair_record(key, DataValue(b"forged-bytes"),
                             host_prevet=False)

    def test_honest_candidate_passes_enclave_gate(self):
        db, client = scrub_db()
        payloads, _ = workload_model(60)
        address, key = merkle_at_rest(db)[0]
        smash(db, address)
        assert db.repair_record(key, DataValue(payloads[key.bits]),
                                host_prevet=False) == "merkle"
        assert db.get(client, key.bits).payload == payloads[key.bits]

    def test_forged_external_candidate_escalates_from_pump(self):
        """A lying courier is a *detection*: the pump re-raises the
        forgery (the supervisor treats it like any tamper alarm), the
        ledger says "forged", and the page stays quarantined."""
        db, _ = scrub_db()
        address, key = merkle_at_rest(db)[0]
        smash(db, address)
        lying = lambda bits: (True, b"forged-bytes")  # noqa: E731
        scrub = Scrubber(db, budget_pages=256, candidate_fn=lying)
        scrub.pump()  # walk: quarantine the smashed page
        assert address in db.store.quarantined_addresses
        with pytest.raises(RepairForgeryError):
            scrub.pump()  # repair phase consults the lying courier
        assert COUNTERS.repair_forgeries == 1
        assert scrub.ledger.outcomes().get("forged") == 1
        assert address in db.store.quarantined_addresses  # nothing settled


# ======================================================================
# Retained-checkpoint rot
# ======================================================================
class TestCheckpointRot:
    def test_blob_rot_flagged_once_and_cleared_by_fresh_checkpoint(self):
        db, _ = scrub_db()
        install_faults(db, FaultPlan(0, {"checkpoint.blob.bitrot": [0]}))
        scrub = Scrubber(db, budget_pages=4)
        scrub.pump()
        assert scrub.checkpoint_stale
        assert COUNTERS.scrub_checkpoint_refreshes == 1
        assert scrub.ledger.outcomes().get("checkpoint-rot") == 1
        scrub.pump()  # known-rotted: no double count
        assert COUNTERS.scrub_checkpoint_refreshes == 1
        install_faults(db, None)
        db.verify()
        db.checkpoint()  # maintenance supersedes the rotted blob
        scrub.pump()
        assert not scrub.checkpoint_stale

    def test_rotted_blob_fails_restore_with_recovery_error(self):
        """The checkpoint→restore round-trip observes the same rot the
        scrubber flags: recovery types it and the heal ladder moves on."""
        db, _ = scrub_db()
        install_faults(db, FaultPlan(0, {"checkpoint.blob.bitrot": [0]}))
        with pytest.raises(RecoveryError):
            db.recover(db.last_checkpoint)


# ======================================================================
# Checkpoint→restore round-trips around repairs
# ======================================================================
class TestRoundTrips:
    def test_repair_survives_checkpoint_restore(self):
        db, client = scrub_db()
        payloads, fn = workload_model(60)
        address, key = merkle_at_rest(db)[0]
        smash(db, address)
        scrub = Scrubber(db, budget_pages=256, candidate_fn=fn)
        assert scrub.scrub_to_convergence()
        db.verify()
        checkpoint = db.checkpoint()
        db.recover(checkpoint)
        assert db.get(client, key.bits).payload == payloads[key.bits]
        fresh = Scrubber(db, budget_pages=256)
        assert fresh.scrub_to_convergence()
        assert fresh.mismatches_found == 0  # the repair is durable

    def test_rot_after_restore_repaired(self):
        db, client = scrub_db()
        payloads, fn = workload_model(60)
        db.recover(db.last_checkpoint)
        address, key = merkle_at_rest(db)[0]
        smash(db, address)
        scrub = Scrubber(db, budget_pages=256, candidate_fn=fn)
        assert scrub.scrub_to_convergence()
        assert db.get(client, key.bits).payload == payloads[key.bits]


# ======================================================================
# Repair lifecycle: retry, supersede, gauges, determinism
# ======================================================================
class TestRepairLifecycle:
    def test_injected_repair_failure_is_retried(self):
        db, _ = scrub_db()
        payloads, fn = workload_model(60)
        address, key = merkle_at_rest(db)[0]
        smash(db, address)
        install_faults(db, FaultPlan(0, {"scrub.repair.fail": [0]}))
        scrub = Scrubber(db, budget_pages=256, candidate_fn=fn)
        scrub.pump()  # quarantine
        scrub.pump()  # repair attempt dies at the fault point
        assert COUNTERS.repair_failures == 1
        assert address in db.store.quarantined_addresses
        scrub.pump()  # retried, heals
        assert address not in db.store.quarantined_addresses
        outcomes = scrub.ledger.outcomes()
        assert outcomes.get("quarantined") == 1
        assert outcomes.get("failed") == 1
        assert outcomes.get("repaired") == 1

    def test_superseded_when_index_moves_past_the_quarantine(self):
        """An out-of-band heal (here: a direct repair_record) moves the
        index; the quarantined page becomes unreferenced dead weight and
        the scrubber retires it without a repair."""
        db, _ = scrub_db()
        payloads, _ = workload_model(60)
        address, key = merkle_at_rest(db)[0]
        smash(db, address)
        scrub = Scrubber(db, budget_pages=256)
        scrub.pump()  # quarantine
        assert address in db.store.quarantined_addresses
        db.repair_record(key, DataValue(payloads[key.bits]))
        scrub.pump()
        assert db.store.quarantined_addresses == []
        assert scrub.ledger.outcomes().get("superseded") == 1
        assert scrub.repairs_done == 0

    def test_quarantine_gauge_is_a_high_water_mark(self):
        db, _ = scrub_db()
        payloads, fn = workload_model(60)
        victims = merkle_at_rest(db)[:2]
        assert len(victims) == 2
        for address, _key in victims:
            smash(db, address)
        scrub = Scrubber(db, budget_pages=256, candidate_fn=fn)
        scrub.pump()
        assert COUNTERS.quarantined_pages == 2
        assert scrub.scrub_to_convergence()
        assert db.store.quarantined_addresses == []
        assert COUNTERS.quarantined_pages == 2  # gauge keeps the peak

    def test_ledger_digest_is_deterministic(self):
        def run():
            db, _ = scrub_db()
            _, fn = workload_model(60)
            address, _key = merkle_at_rest(db)[0]
            smash(db, address)
            scrub = Scrubber(db, budget_pages=8, candidate_fn=fn)
            assert scrub.scrub_to_convergence()
            return scrub.ledger.digest()

        assert run() == run()


# ======================================================================
# Quorum / server sources and the serving-path pump
# ======================================================================
class TestQuorumSources:
    def test_repair_payload_served_from_standby(self):
        from tests.test_replication import envelope, repl_setup
        db, client, server, repl = repl_setup()
        server.handle(envelope(server, client, "put", 3, b"fresh3"))
        server.maintain()  # epoch marker: the standby commits the put
        found, payload = repl.repair_payload(db.data_key(3).bits)
        assert found and payload == b"fresh3"

    def test_adaptive_retain_depth_tracks_observed_lag(self):
        """Satellite: the shipper's retained tail sizes itself to the
        worst member lag ever observed (plus margin) and never shrinks
        back below that high-water mark."""
        from tests.test_replication import envelope, repl_setup
        db, client, server, repl = repl_setup()
        for k in range(8):
            server.handle(envelope(server, client, "put", k, b"r%d" % k))
        sh = repl.shipper
        assert sh.retain == repl.config.retain_shipments  # never lagged
        member = repl.live_standbys()[0]
        member.last_admitted_seq = sh.next_seq - 1 - 400  # a deep stall
        repl._adapt_retain()
        expected = max(repl.config.retain_shipments,
                       400 + repl.config.retain_margin)
        assert sh.retain == expected
        assert COUNTERS.replication_retain_depth == expected
        member.last_admitted_seq = sh.next_seq - 1  # fully caught up
        repl._adapt_retain()
        assert sh.retain == expected  # high-water sticks

    def test_server_pump_repairs_from_read_cache(self):
        """The serving path's per-pump scrub slice heals rot with bytes
        from the server's durable read cache — no operator involved."""
        from repro.server import FastVerServer, ServerConfig
        from tests.test_replication import envelope

        db, client = scrub_db(n_records=40)
        warm = [(k, b"v%d" % k) for k in range(40)]
        server = FastVerServer(
            db, ServerConfig(scrub_enabled=True, scrub_budget_pages=64),
            warm=warm)
        victims = merkle_at_rest(db)
        address, key = victims[0]
        other = victims[-1][1].bits
        assert other != key.bits
        smash(db, address)
        for _ in range(6):
            result = server.handle(
                envelope(server, client, "get", other))
            assert result.payload == b"v%d" % other
        assert not server.degraded
        assert db.store.quarantined_addresses == []
        ledger = server.scrubber().ledger
        repaired = [a for a in ledger.actions if a.outcome == "repaired"]
        assert repaired and repaired[0].source == "server-cache"
        assert db.get(client, key.bits).payload == b"v%d" % key.bits


# ======================================================================
# Observability plumbing
# ======================================================================
class TestScrubObservability:
    def test_run_metrics_and_prometheus_export_scrub_group(self):
        from repro.obs.export import to_prometheus
        from repro.sim.metrics import RunMetrics

        COUNTERS.scrubbed_pages += 5
        COUNTERS.scrub_repairs += 2
        COUNTERS.quarantined_pages = 1
        metrics = RunMetrics(
            key_ops=10, op_wall_ns=1.0, verify_wall_ns=1.0,
            n_verifications=1, verifier_fraction=0.5,
            scrub=COUNTERS.group_dict("scrub"))
        exported = metrics.as_dict()["scrub"]
        assert exported["scrub_repairs"] == 2
        assert exported["quarantined_pages"] == 1
        text = to_prometheus({"counters": {}, "metrics": metrics.as_dict(),
                              "latency": {}, "attribution": {}, "trace": {}})
        assert 'repro_scrub{name="scrub_repairs"} 2' in text
        assert 'repro_scrub{name="quarantined_pages"} 1' in text

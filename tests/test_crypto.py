"""Tests for hashing, multiset hashing, PRFs, and MACs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    decode_fields,
    encode_fields,
    hash_bytes,
    hash_fields,
    hash_key_to_data_key_bytes,
)
from repro.crypto.mac import MacKey
from repro.crypto.multiset import EMPTY_HASH, MultisetHasher, aggregate
from repro.crypto.prf import PRF_SIZE, Prf
from repro.errors import SignatureError
from repro.instrument import COUNTERS


# ---------------------------------------------------------------------------
# Field encoding
# ---------------------------------------------------------------------------
class TestFieldEncoding:
    def test_roundtrip(self):
        fields = [b"", b"a", b"hello world", b"\x00" * 100]
        assert decode_fields(encode_fields(*fields)) == fields

    def test_no_concatenation_ambiguity(self):
        assert encode_fields(b"ab", b"c") != encode_fields(b"a", b"bc")

    def test_decode_rejects_truncation(self):
        blob = encode_fields(b"hello")
        with pytest.raises(ValueError):
            decode_fields(blob[:-1])
        with pytest.raises(ValueError):
            decode_fields(blob[:2])

    @given(st.lists(st.binary(max_size=64), max_size=8))
    def test_roundtrip_property(self, fields):
        assert decode_fields(encode_fields(*fields)) == fields


# ---------------------------------------------------------------------------
# Hashing
# ---------------------------------------------------------------------------
class TestHashing:
    def test_digest_size(self):
        assert len(hash_bytes(b"x")) == DIGEST_SIZE

    def test_deterministic(self):
        assert hash_bytes(b"abc") == hash_bytes(b"abc")
        assert hash_bytes(b"abc") != hash_bytes(b"abd")

    def test_hash_fields_separates(self):
        assert hash_fields(b"ab", b"c") != hash_fields(b"a", b"bc")

    def test_counters_incremented(self):
        before = COUNTERS.merkle_hashes
        hash_bytes(b"x" * 100)
        assert COUNTERS.merkle_hashes == before + 1
        assert COUNTERS.merkle_hash_bytes >= 100

    def test_application_key_mapping(self):
        assert len(hash_key_to_data_key_bytes(b"user@example.com")) == 32
        already = b"k" * 32
        assert hash_key_to_data_key_bytes(already) == already


# ---------------------------------------------------------------------------
# PRF
# ---------------------------------------------------------------------------
class TestPrf:
    def test_output_size(self):
        prf = Prf.generate()
        assert len(prf.evaluate(b"x")) == PRF_SIZE

    def test_keyed(self):
        a, b = Prf.generate(), Prf.generate()
        assert a.evaluate(b"x") != b.evaluate(b"x")

    def test_deterministic_under_key(self):
        prf = Prf(b"k" * 32)
        assert prf.evaluate(b"x") == Prf(b"k" * 32).evaluate(b"x")

    def test_key_length_bounds(self):
        with pytest.raises(ValueError):
            Prf(b"short")

    def test_int_form(self):
        prf = Prf.generate()
        assert prf.evaluate_int(b"m") == int.from_bytes(prf.evaluate(b"m"), "big")


# ---------------------------------------------------------------------------
# Multiset hashing (the §5.1 primitive)
# ---------------------------------------------------------------------------
@pytest.fixture
def prf():
    return Prf(b"0" * 32)


class TestMultisetHash:
    def test_empty(self, prf):
        assert MultisetHasher(prf).value == EMPTY_HASH

    def test_order_independence(self, prf):
        a = MultisetHasher(prf)
        b = MultisetHasher(prf)
        for x in (b"x", b"y", b"z"):
            a.insert(x)
        for x in (b"z", b"x", b"y"):
            b.insert(x)
        assert a.value == b.value

    def test_multiset_sensitivity_add_combiner(self, prf):
        """The 'add' combiner distinguishes multiplicities — the property
        plain XOR lacks and double-add detection needs."""
        once = MultisetHasher(prf, combiner="add")
        once.insert(b"x")
        twice = MultisetHasher(prf, combiner="add")
        twice.insert(b"x")
        twice.insert(b"x")
        assert once.value != twice.value
        assert twice.value != EMPTY_HASH

    def test_xor_combiner_cancels_duplicates(self, prf):
        """Documents why XOR alone is insufficient (kept for ablation)."""
        twice = MultisetHasher(prf, combiner="xor")
        twice.insert(b"x")
        twice.insert(b"x")
        assert twice.value == EMPTY_HASH

    def test_combine_matches_union(self, prf):
        left = MultisetHasher(prf)
        right = MultisetHasher(prf)
        union = MultisetHasher(prf)
        for x in (b"a", b"b"):
            left.insert(x)
            union.insert(x)
        for x in (b"c", b"d"):
            right.insert(x)
            union.insert(x)
        left.combine(right.value)
        assert left.value == union.value

    def test_aggregate_matches_pairwise(self, prf):
        hashers = [MultisetHasher(prf) for _ in range(4)]
        total = MultisetHasher(prf)
        for i, h in enumerate(hashers):
            h.insert(b"e%d" % i)
            total.insert(b"e%d" % i)
        assert aggregate([h.value for h in hashers]) == total.value

    def test_insert_entry_uses_canonical_fields(self, prf):
        a = MultisetHasher(prf)
        b = MultisetHasher(prf)
        a.insert_entry(b"ab", b"c")
        b.insert_entry(b"a", b"bc")
        assert a.value != b.value

    def test_bad_combiner_rejected(self, prf):
        with pytest.raises(ValueError):
            MultisetHasher(prf, combiner="mult")
        with pytest.raises(ValueError):
            aggregate([1], combiner="mult")

    def test_spawn_is_fresh_same_key(self, prf):
        h = MultisetHasher(prf)
        h.insert(b"x")
        h2 = h.spawn()
        assert h2.value == EMPTY_HASH
        h2.insert(b"x")
        h3 = MultisetHasher(prf)
        h3.insert(b"x")
        assert h2.value == h3.value

    @given(st.lists(st.binary(min_size=1, max_size=16), max_size=20))
    def test_permutation_invariance(self, elements):
        prf = Prf(b"1" * 32)
        import random
        shuffled = list(elements)
        random.Random(7).shuffle(shuffled)
        a = MultisetHasher(prf)
        b = MultisetHasher(prf)
        for x in elements:
            a.insert(x)
        for x in shuffled:
            b.insert(x)
        assert a.value == b.value

    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=10),
           st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=10))
    def test_different_multisets_differ(self, xs, ys):
        from collections import Counter
        if Counter(xs) == Counter(ys):
            return
        prf = Prf(b"2" * 32)
        a = MultisetHasher(prf)
        b = MultisetHasher(prf)
        for x in xs:
            a.insert(x)
        for y in ys:
            b.insert(y)
        assert a.value != b.value


# ---------------------------------------------------------------------------
# MACs
# ---------------------------------------------------------------------------
class TestMac:
    def test_sign_verify_roundtrip(self):
        key = MacKey.generate()
        tag = key.sign(b"msg", b"extra")
        key.verify(tag, b"msg", b"extra")  # no raise

    def test_verify_rejects_modified_fields(self):
        key = MacKey.generate()
        tag = key.sign(b"msg")
        with pytest.raises(SignatureError):
            key.verify(tag, b"msG")

    def test_verify_rejects_field_shuffle(self):
        key = MacKey.generate()
        tag = key.sign(b"ab", b"c")
        with pytest.raises(SignatureError):
            key.verify(tag, b"a", b"bc")

    def test_keys_are_independent(self):
        a, b = MacKey.generate(), MacKey.generate()
        tag = a.sign(b"m")
        with pytest.raises(SignatureError):
            b.verify(tag, b"m")

    def test_minimum_key_size(self):
        with pytest.raises(ValueError):
            MacKey(b"tiny")

    def test_mac_counter(self):
        before = COUNTERS.mac_ops
        key = MacKey.generate()
        key.verify(key.sign(b"m"), b"m")
        assert COUNTERS.mac_ops == before + 2

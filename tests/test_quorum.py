"""Quorum HA tests: multi-standby groups, lease-based leadership,
incremental delta resync, epoch markers, and verified-stale replica
reads.

Everything here runs on the simulated tick clock, mirroring
tests/test_replication.py's setup idiom; the chaos acceptance scenario
(correlated same-tick primary+standby double kill at N=3) runs across
three seeds with a bit-for-bit determinism check.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    LeaseExpiredError,
    ProtocolError,
    SplitBrainError,
    StaleReplayError,
)
from repro.obs import TRACER
from repro.replication import ReplicationConfig
from tests.test_replication import envelope, repl_setup, sdk_for


# ======================================================================
# Group provisioning and quorum arithmetic
# ======================================================================
class TestGroup:
    def test_group_boots_at_configured_size(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=3))
        assert len(repl.standbys) == 3
        assert repl.config.quorum == 2
        assert {s.standby_id for s in repl.standbys} == {0, 1, 2}

    def test_every_member_receives_every_put(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=3))
        for k in range(6):
            server.handle(envelope(server, client, "put", k, b"fan%d" % k))
        assert repl.lag() == 0
        for member in repl.standbys:
            snapshot = dict(member.db.items_snapshot())
            for k in range(6):
                assert snapshot[k] == b"fan%d" % k

    def test_health_surface_reports_group_state(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=3))
        h = server.health()["replication"]
        assert h["group_size"] == 3
        assert h["group_live"] == 3
        assert h["quorum"] == 2
        assert "lease_valid" in h


# ======================================================================
# Quorum promotion edges
# ======================================================================
class TestQuorumPromotion:
    def test_promotion_with_exact_quorum_live(self):
        """N=3 needs ⌈(3+1)/2⌉ = 2 healthy voters: with exactly two
        live members promotion must go through (the group then heals
        back to size, restoring the lease quorum)."""
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=3))
        server.handle(envelope(server, client, "put", 1, b"keep"))
        repl.standbys[2].db.enclave.teardown()  # one member down
        assert repl.can_promote()  # exactly quorum (2 of 3) left
        db.enclave.teardown()
        assert server.force_heal()
        assert server.generation == 1
        assert server.handle(
            envelope(server, client, "get", 1)).payload == b"keep"

    def test_promotion_below_quorum_is_refused(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=3,
                                          auto_reattach=False))
        repl.standbys[1].db.enclave.teardown()
        repl.standbys[2].db.enclave.teardown()
        assert not repl.can_promote()  # 1 healthy < quorum 2
        with pytest.raises(ProtocolError, match="quorum"):
            repl.promote()

    def test_tied_votes_break_on_lowest_standby_id(self):
        """All members share the same verified (epoch, seq) position, so
        the vote is a pure tie: the winner must be the lowest standby id,
        deterministically."""
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=3))
        server.handle(envelope(server, client, "put", 1, b"tie"))
        server.maintain()
        votes = {s.standby_id: s.vote() for s in repl.standbys}
        assert len(set(votes.values())) == 1, "harness: votes not tied"
        repl.promote()
        quorum_events = [e for e in TRACER.last(100) if e.kind == "quorum"]
        assert quorum_events, "promotion must leave a quorum trace event"
        assert quorum_events[-1].detail["winner"] == min(votes)

    def test_losers_keep_tailing_the_same_chain(self):
        """Surviving losers stay in the group after promotion and keep
        admitting the (continuing) chain under the new primary."""
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=3))
        server.handle(envelope(server, client, "put", 1, b"before"))
        db.enclave.teardown()
        assert server.force_heal()
        survivors = [s for s in repl.standbys]
        assert len(survivors) >= 2  # losers retained (plus any top-up)
        server.handle(envelope(server, client, "put", 2, b"after"))
        assert repl.lag() == 0
        assert repl.rejects == 0
        for member in survivors:
            assert dict(member.db.items_snapshot())[2] == b"after"


# ======================================================================
# Leases
# ======================================================================
class TestLeases:
    def test_deposed_generation_cannot_renew(self):
        """Once the member enclaves pin a higher leadership generation,
        the old primary's renewals are starved and the lease gate stops
        it with a typed error — before any ecall is even attempted."""
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=3))
        # A newer leader (generation+1) acquired the lease: every member
        # enclave pinned the bumped generation floor.
        for member in repl.standbys:
            member.grant_lease(server.generation + 1, server.now + 500.0)
        server._advance(repl.config.lease_duration_ticks + 1.0)
        with pytest.raises(LeaseExpiredError):
            server.handle(envelope(server, client, "put", 1, b"too-late"))
        assert repl.lease_expiries >= 1

    def test_member_refuses_regressed_generation_grant(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=2))
        member = repl.standbys[0]
        member.grant_lease(5, server.now + 100.0)
        with pytest.raises(SplitBrainError):
            member.grant_lease(4, server.now + 200.0)

    def test_honest_primary_renews_and_serves(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=3))
        for i in range(4):
            server._advance(repl.config.lease_duration_ticks * 0.6)
            server.handle(envelope(server, client, "put", i, b"ok%d" % i))
        assert repl.lease_expiries == 0
        assert repl.lease_valid()


# ======================================================================
# Delta resync vs snapshot fallback
# ======================================================================
class TestResync:
    def test_lagging_member_rejoins_via_delta(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=2,
                                          auto_reattach=False))
        member = repl.standbys[1]
        member.detached = True
        for k in range(4):
            server.handle(envelope(server, client, "put", k, b"gap%d" % k))
        repl.resync_standby(1)
        assert repl.delta_resyncs == 1
        assert repl.snapshot_resyncs == 0
        assert not member.detached
        assert member.last_admitted_seq == repl.shipper.next_seq - 1
        assert dict(member.db.items_snapshot())[3] == b"gap3"

    def test_gap_straddling_gced_tail_falls_back_to_snapshot(self):
        """A member whose next-needed seq fell below the shipper's
        retained floor cannot delta-resync: the rejoin must take the
        snapshot path, and the rebuilt member lands at the stream head."""
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=2, retain_shipments=2,
                                          batch_entries=1,
                                          auto_reattach=False))
        member = repl.standbys[1]
        member.detached = True
        for k in range(12):  # >> retain: the tail GCs past the member
            server.handle(envelope(server, client, "put", k, b"go%d" % k))
        assert member.last_admitted_seq + 1 < repl.shipper.floor
        repl.resync_standby(1)
        assert repl.snapshot_resyncs == 1
        assert repl.delta_resyncs == 0
        rebuilt = repl.standbys[1]
        assert rebuilt.last_admitted_seq == repl.shipper.next_seq - 1
        assert dict(rebuilt.db.items_snapshot())[11] == b"go11"


# ======================================================================
# Epoch markers and verified-stale replica reads
# ======================================================================
class TestReplicaReads:
    def test_size_triggered_marker_advances_verified_position(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=1,
                                          epoch_marker_entries=4,
                                          epoch_marker_ticks=1e9))
        before = repl.standby.last_marker_epoch
        for k in range(8):
            server.handle(envelope(server, client, "put", k, b"m%d" % k))
        assert repl.epoch_markers >= 1
        assert repl.standby.last_marker_epoch > before

    def test_time_triggered_marker_advances_verified_position(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=1,
                                          epoch_marker_entries=10_000,
                                          epoch_marker_ticks=32.0))
        server.handle(envelope(server, client, "put", 1, b"pending"))
        before = repl.epoch_markers
        server._advance(64.0)
        repl.pump()
        assert repl.epoch_markers > before

    def test_stale_read_served_within_budget(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=2))
        sdk = sdk_for(server, client)
        sdk.put(1, b"fresh")
        server.maintain()  # marker ships: replicas verified at this epoch
        result = sdk.get_stale(1, budget_epochs=2)
        assert result.stale
        assert result.payload == b"fresh"
        assert result.stale_epochs <= 2
        assert repl.replica_reads >= 1

    def test_stale_read_over_budget_falls_through_to_primary(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=2,
                                          staleness_budget_epochs=8))
        sdk = sdk_for(server, client)
        sdk.put(1, b"fresh")
        server.maintain()
        # The primary's epoch advances without shipping markers (epoch
        # closes the group never hears about), so the replicas' verified
        # position falls behind.
        for _ in range(2):
            server.db.verify()
        distance = (server.db.current_epoch
                    - max(s.last_marker_epoch for s in repl.standbys))
        assert distance >= 1, "harness: replicas did not fall behind"
        result = sdk.get_stale(1, budget_epochs=0)
        assert not result.stale  # served fresh by the primary instead
        assert result.payload == b"fresh"

    def test_group_budget_bounds_staleness(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=2,
                                          staleness_budget_epochs=1))
        sdk = sdk_for(server, client)
        sdk.put(1, b"fresh")
        server.maintain()
        for _ in range(3):
            server.db.verify()  # replicas now > 1 epoch behind
        assert repl.replica_read(server.bitkey(1).bits) is None

    def test_sdk_rejects_superseded_stale_answer(self):
        """The byzantine-replica wall: a stale answer carrying one of the
        client's own settled-then-overwritten payloads under a fresh
        as-of claim must raise a typed StaleReplayError."""
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(n_standbys=2))
        sdk = sdk_for(server, client)
        sdk.put(1, b"old")
        server.maintain()
        sdk.put(1, b"new")
        server.maintain()
        fresh_epoch = server.db.current_epoch
        repl.replica_read = lambda key_bits: (b"old", fresh_epoch, 0)
        with pytest.raises(StaleReplayError):
            sdk.get_stale(1, budget_epochs=2)


# ======================================================================
# Chaos acceptance: correlated double kill at N=3
# ======================================================================
class TestQuorumChaos:
    def test_correlated_double_kill_converges_across_seeds(self):
        """Primary and one standby die on the same tick, twice per run;
        the group must still converge to a single leased leader with
        zero integrity escapes, across three seeds."""
        from repro.faults.chaos import run_chaos

        for seed in (7, 11, 23):
            report = run_chaos(seed=seed, ops=400, records=80,
                               failover=True, standbys=3)
            assert report.ok, (seed, report.hard_failures)
            assert report.leader_converged
            assert report.standbys == 3
            assert report.failovers >= 1
            assert not report.unrecoverable

    def test_quorum_soak_deterministic(self):
        from repro.faults.chaos import run_chaos

        first = run_chaos(seed=11, ops=300, records=60,
                          failover=True, standbys=3)
        second = run_chaos(seed=11, ops=300, records=60,
                           failover=True, standbys=3)
        assert first.ok and second.ok
        assert first.digest() == second.digest()


class TestQuorumBench:
    def test_quorum_rto_and_delta_speedup(self):
        from repro.bench.failover import run_failover_bench

        result = run_failover_bench(records=300, ops=100, seed=3)
        assert result["ok"], result
        q = result["quorum"]
        assert q["multiple_of_single"] <= q["max_multiple"]
        assert q["delta_speedup"] >= q["min_delta_speedup"]

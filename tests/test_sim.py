"""Tests for the cost model, metrics, and simulated executor."""

from __future__ import annotations

import pytest

from repro.enclave.costmodel import NONE, SGX, SIMULATED
from repro.instrument import COUNTERS, Counters
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.executor import SimulatedExecutor
from repro.sim.metrics import MetricsBuilder
from repro.workloads.ycsb import YCSB_A, YcsbGenerator
from tests.conftest import small_fastver


class TestCounters:
    def test_scoped_measurement(self):
        with COUNTERS.scoped() as delta:
            COUNTERS.ops += 5
        assert delta.ops == 5

    def test_diff_and_add(self):
        a = Counters(ops=10, merkle_hashes=3)
        b = Counters(ops=4, merkle_hashes=1)
        d = a.diff(b)
        assert d.ops == 6 and d.merkle_hashes == 2
        b.add(d)
        assert b.ops == 10 and b.merkle_hashes == 3

    def test_reset(self):
        c = Counters(ops=5)
        c.reset()
        assert c.ops == 0

    def test_str_shows_nonzero_only(self):
        assert "ops" in str(Counters(ops=1))
        assert "merkle" not in str(Counters(ops=1))


class TestCostModel:
    def test_merkle_hashing_dearer_than_multiset(self):
        """The §8.5 asymmetry: 400 MB/s Blake3 vs 3.2 GB/s AES-CMAC."""
        c = Counters(merkle_hashes=1, merkle_hash_bytes=100)
        m = Counters(multiset_updates=1, multiset_hash_bytes=100)
        costs = DEFAULT_COSTS
        assert (costs.verifier_ns(c, NONE) > 4 * costs.verifier_ns(m, NONE))

    def test_sgx_slower_than_simulated(self):
        c = Counters(merkle_hashes=100, merkle_hash_bytes=10_000,
                     enclave_entries=10)
        assert (DEFAULT_COSTS.verifier_ns(c, SGX)
                > DEFAULT_COSTS.verifier_ns(c, SIMULATED))

    def test_memory_hierarchy_effect(self):
        c = Counters(store_reads=1000)
        small = DEFAULT_COSTS.host_ns(c, 16_000)
        large = DEFAULT_COSTS.host_ns(c, 64_000_000)
        assert large > 2 * small

    def test_parallel_speedup_sublinear(self):
        costs = DEFAULT_COSTS
        t1 = costs.parallel_ns(1e9, 1)
        t2 = costs.parallel_ns(1e9, 2)
        t32 = costs.parallel_ns(1e9, 32)
        assert t1 == 1e9
        assert pytest.approx(t1 / t2, rel=0.01) == 1.75  # Fig 14c's rule
        assert t1 / t32 < 32  # imperfect scaling
        assert t1 / t32 > 10

    def test_verifier_fraction_bounds(self):
        c = Counters(merkle_hashes=10, merkle_hash_bytes=100, store_reads=10)
        f = DEFAULT_COSTS.verifier_fraction(c, SIMULATED, 1000)
        assert 0.0 < f < 1.0
        assert DEFAULT_COSTS.verifier_fraction(Counters(), SIMULATED, 1000) == 0.0


class TestMetricsBuilder:
    def test_throughput_and_latency(self):
        b = MetricsBuilder(n_workers=2, modeled_db_records=1000)
        b.add_ops(Counters(store_reads=1000, ops=1000), key_ops=1000)
        b.add_verification(Counters(multiset_updates=100,
                                    multiset_hash_bytes=5000))
        m = b.build()
        assert m.key_ops == 1000
        assert m.throughput_mops > 0
        assert m.verification_latency_s > 0
        assert m.n_verifications == 1

    def test_zero_run(self):
        m = MetricsBuilder(1, 1000).build()
        assert m.throughput_mops == 0.0
        assert m.verification_latency_s == 0.0


class TestExecutor:
    def test_runs_fastver_with_verifications(self):
        db, client = small_fastver(n_records=80, n_workers=2)
        executor = SimulatedExecutor(db, client, 2, modeled_db_records=80)
        gen = YcsbGenerator(YCSB_A, 80, seed=1)
        result = executor.run(gen, 300, verify_every=100)
        assert result.metrics.key_ops == 300
        assert result.metrics.n_verifications >= 3
        assert result.throughput_mops > 0
        assert result.verification_latency_s > 0
        db.flush()
        assert client.settled_epoch >= 2

    def test_batching_improves_throughput(self):
        """Fig 12's fundamental tradeoff: larger batches between
        verifications give higher throughput and higher latency."""
        def measure(verify_every):
            db, client = small_fastver(n_records=100, n_workers=2)
            executor = SimulatedExecutor(db, client, 2,
                                         modeled_db_records=2_000_000)
            gen = YcsbGenerator(YCSB_A, 100, seed=1)
            return executor.run(gen, 600, verify_every=verify_every)

        frequent = measure(50)
        rare = measure(600)
        assert rare.throughput_mops > frequent.throughput_mops
        assert rare.verification_latency_s > frequent.verification_latency_s

"""The examples are part of the deliverable: run each one and check its
observable claims (they double as end-to-end smoke tests)."""

from __future__ import annotations

import importlib
import sys

import pytest

sys.path.insert(0, ".")  # examples/ is not a package; import by path


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(f"examples.{name}")
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "b'updated-by-alice'" in out
        assert "settled after verify()?  True" in out

    def test_password_vault(self, capsys):
        out = run_example("password_vault", capsys)
        assert "alice/correct-horse -> True" in out
        assert "alice/wrong-pass    -> False" in out
        assert "TAMPERING DETECTED" in out

    def test_bank_ledger(self, capsys):
        out = run_example("bank_ledger", capsys)
        assert "total money: 2000000 (expected 2000000)" in out
        assert "every transfer settled" in out

    def test_attack_gallery_all_detected(self, capsys):
        out = run_example("attack_gallery", capsys)
        assert "UNDETECTED" not in out
        # Every registered attack appears with a detector name.
        for attack in ("tamper_value", "tamper_timestamp",
                       "cross_mode_confusion", "skip_migration",
                       "duplicate_read_entry", "corrupt_merkle_pointer",
                       "rollback_record"):
            assert attack in out

    def test_crash_recovery(self, capsys):
        out = run_example("crash_recovery", capsys)
        assert "ROLLBACK DETECTED" in out
        assert "b'after-checkpoint'" in out
        # Reboot-mid-epoch: the epoch fails loudly, then recovery restores
        # full service.
        assert "rebooted mid-epoch" in out
        assert "reboot-mid-epoch recovered: get(2) -> b'post-recovery'" in out
        # Lenient salvage of a rotten device page.
        assert "rebuild refused" in out
        assert "quarantined" in out
        assert "!!" not in out

    def test_latency_budget(self, capsys):
        out = run_example("latency_budget", capsys)
        assert "budget" in out
        assert "decided the latency" in out

"""Tests for the simulated enclave and sealed anti-rollback state (§2.2)."""

from __future__ import annotations

import pytest

from repro.enclave.costmodel import NONE, PROFILES, SGX, SIMULATED
from repro.enclave.enclave import SimulatedEnclave
from repro.enclave.sealed import SealedSlot, seal_hash
from repro.errors import CapacityError, EnclaveError, RollbackError
from repro.instrument import COUNTERS


class EchoProgram:
    """Minimal trusted program for call-gate tests."""

    def __init__(self, sealed):
        self.sealed = sealed
        self.state = 0
        self.memory = 100

    def bump(self, by=1):
        self.state += by
        return self.state

    def trusted_memory_bytes(self):
        return self.memory

    def _secret(self):  # never callable through the gate
        return "secret"


class TestCallGate:
    def test_ecall_dispatches(self):
        enclave = SimulatedEnclave(EchoProgram)
        assert enclave.ecall("bump") == 1
        assert enclave.ecall("bump", by=5) == 6

    def test_ecall_counts_crossings(self):
        enclave = SimulatedEnclave(EchoProgram)
        before = COUNTERS.enclave_entries
        enclave.ecall("bump")
        enclave.ecall("bump")
        assert COUNTERS.enclave_entries == before + 2

    def test_unknown_entry_point(self):
        enclave = SimulatedEnclave(EchoProgram)
        with pytest.raises(EnclaveError):
            enclave.ecall("nonexistent")

    def test_private_methods_hidden(self):
        enclave = SimulatedEnclave(EchoProgram)
        with pytest.raises(EnclaveError):
            enclave.ecall("_secret")

    def test_teardown_kills_gate(self):
        enclave = SimulatedEnclave(EchoProgram)
        enclave.teardown()
        with pytest.raises(EnclaveError):
            enclave.ecall("bump")


class TestMemoryBound:
    def test_within_bound(self):
        enclave = SimulatedEnclave(EchoProgram, profile=SGX)
        enclave.ecall("bump")  # fine

    def test_overflow_detected(self):
        enclave = SimulatedEnclave(EchoProgram, profile=SGX)
        enclave._program.memory = SGX.trusted_memory_bytes + 1
        with pytest.raises(CapacityError):
            enclave.ecall("bump")


class TestReboot:
    def test_reboot_resets_volatile_state(self):
        enclave = SimulatedEnclave(EchoProgram)
        enclave.ecall("bump")
        enclave.ecall("bump")
        enclave.reboot()
        assert enclave.ecall("bump") == 1
        assert enclave.reboots == 1

    def test_sealed_slot_survives_reboot(self):
        enclave = SimulatedEnclave(EchoProgram)
        enclave.sealed.advance(b"h" * 32)
        enclave.reboot()
        assert enclave.sealed.version == 1
        assert enclave.sealed.state_hash == b"h" * 32


class TestSealedSlot:
    def test_advance_monotone(self):
        slot = SealedSlot()
        assert slot.advance(b"a" * 32) == 1
        assert slot.advance(b"b" * 32) == 2

    def test_check_accepts_latest(self):
        slot = SealedSlot()
        slot.advance(b"a" * 32)
        slot.check(1, b"a" * 32)  # no raise

    def test_check_rejects_old_version(self):
        slot = SealedSlot()
        slot.advance(b"a" * 32)
        slot.advance(b"b" * 32)
        with pytest.raises(RollbackError):
            slot.check(1, b"a" * 32)

    def test_check_rejects_forged_hash(self):
        slot = SealedSlot()
        slot.advance(b"a" * 32)
        with pytest.raises(RollbackError):
            slot.check(1, b"x" * 32)

    def test_seal_hash_is_field_separated(self):
        assert seal_hash(b"ab", b"c") != seal_hash(b"a", b"bc")


class TestProfiles:
    def test_registry(self):
        assert PROFILES["simulated"] is SIMULATED
        assert PROFILES["sgx"] is SGX
        assert PROFILES["none"] is NONE

    def test_sgx_slower_than_simulated(self):
        """Fig 13b: real enclaves run ~90% of simulated — more crossing
        cost and an in-enclave compute penalty."""
        assert SGX.crossing_ns >= SIMULATED.crossing_ns
        assert SGX.compute_multiplier > SIMULATED.compute_multiplier
        assert SGX.trusted_memory_bytes < SIMULATED.trusted_memory_bytes

"""Tests for the persistent observability pipeline (PR 10): the trace
spool (rotation, retention, disk round-trip, replay fidelity), exemplar
sampling (gate semantics, determinism), and the SLO burn-rate engine
(burn math, alert transitions, serving-stack advisory wiring)."""

from __future__ import annotations

import json

import pytest

from repro.faults.chaos import run_chaos
from repro.obs import LATENCIES, TRACER
from repro.obs import reset as obs_reset
from repro.obs.histogram import (
    EXEMPLAR_BASELINE,
    EXEMPLAR_EVERY,
    EXEMPLAR_MIN_WINDOW,
    EXEMPLAR_OUTLIERS,
    LatencyRecorder,
)
from repro.obs.sink import (
    SpoolReader,
    TraceSpool,
    event_to_line,
    line_to_event,
    replay_fidelity,
)
from repro.obs.slo import SloConfig, SloEngine
from repro.obs.trace import TraceEvent, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    obs_reset()
    yield
    obs_reset()


def _fill(tracer: Tracer, n: int, kind: str = "admit") -> None:
    for i in range(n):
        tracer.record(kind, float(i), f"t{i % 7}", index=i)


# ======================================================================
# Spool mechanics
# ======================================================================
class TestSpool:
    def test_line_round_trip_preserves_event(self):
        event = TraceEvent(3, 12.5, "flush", "c1-9",
                           {"shard": 2, "ops": 4})
        back = line_to_event(event_to_line(event))
        assert back == event
        assert event_to_line(back) == event_to_line(event)

    def test_write_through_and_rotation(self):
        tracer = Tracer(capacity=64)
        spool = TraceSpool(segment_events=10)
        tracer.attach_sink(spool)
        _fill(tracer, 35)
        assert spool.appended == 35
        assert len(spool) == 35
        # 3 closed segments of 10 plus an active one holding 5.
        assert len(spool.segments()) == 4
        assert [len(s) for s in spool.segments()] == [10, 10, 10, 5]

    def test_segment_count_retention_drops_oldest(self):
        spool = TraceSpool(segment_events=4, max_segments=2)
        tracer = Tracer(capacity=1024)
        tracer.attach_sink(spool)
        _fill(tracer, 40)
        stats = spool.stats()
        assert stats["dropped_segments"] > 0
        assert stats["dropped_events"] == 4 * stats["dropped_segments"]
        # The newest events always survive compaction.
        assert spool.events()[-1].detail["index"] == 39

    def test_simulated_time_retention(self):
        spool = TraceSpool(segment_events=4, retention_ticks=10.0)
        tracer = Tracer(capacity=1024)
        tracer.attach_sink(spool)
        _fill(tracer, 40)  # ts runs 0..39; retention keeps last ~10 ticks
        assert spool.dropped_segments > 0
        oldest = spool.events()[0].ts
        assert 39.0 - oldest <= 10.0 + 4  # within a segment of the bound

    def test_disk_round_trip_and_reader_parity(self, tmp_path):
        directory = str(tmp_path / "spool")
        spool = TraceSpool(directory=directory, segment_events=8)
        tracer = Tracer(capacity=1024)
        tracer.attach_sink(spool)
        _fill(tracer, 30)
        spool.flush()
        reader = SpoolReader(directory)
        assert len(reader) == 30
        live = [event_to_line(e) for e in spool.events()]
        cold = [event_to_line(e) for e in reader.events()]
        assert live == cold
        # The query surface agrees with the ring's.
        assert reader.traces() == tracer.traces()
        assert reader.find_lifecycle({"admit"}) == \
            tracer.find_lifecycle({"admit"})

    def test_fresh_spool_wipes_stale_directory(self, tmp_path):
        directory = str(tmp_path / "spool")
        first = TraceSpool(directory=directory, segment_events=4)
        tracer = Tracer()
        tracer.attach_sink(first)
        _fill(tracer, 12)
        first.flush()
        # A new run over the same directory must not leave the old run's
        # segments interleaved behind its own.
        second = TraceSpool(directory=directory, segment_events=4)
        tracer2 = Tracer()
        tracer2.attach_sink(second)
        _fill(tracer2, 5)
        second.flush()
        reader = SpoolReader(directory)
        assert len(reader) == 5

    def test_reader_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SpoolReader(str(tmp_path / "nope"))

    def test_tracer_reset_detaches_sink(self):
        tracer = Tracer()
        tracer.attach_sink(TraceSpool())
        tracer.reset()
        assert tracer.sink is None

    def test_replay_fidelity_suffix_contract_after_eviction(self):
        tracer = Tracer(capacity=8)  # tiny ring: evicts quickly
        spool = TraceSpool()
        tracer.attach_sink(spool)
        _fill(tracer, 50)
        assert tracer.dropped > 0
        assert replay_fidelity(tracer, spool)
        # Corrupt the spool's copy: fidelity must notice.
        spool._active.events[-1] = TraceEvent(9999, 0.0, "admit", "t0", {})
        assert not replay_fidelity(tracer, spool)


# ======================================================================
# Replay fidelity across a real soak (ISSUE satellite)
# ======================================================================
class TestSoakReplayFidelity:
    def test_batched_failover_seed7_spans_byte_identical(self, tmp_path):
        directory = str(tmp_path / "spool")
        report = run_chaos(seed=7, ops=600, records=200, batched=True,
                           failover=True, spool_dir=directory)
        assert report.ok
        assert report.spool_replay_ok
        assert report.spool_events >= len(TRACER)
        reader = SpoolReader(directory)
        # Byte-identical spans: the ring never evicted at this size, so
        # every span must match outright, not just as a suffix.
        assert TRACER.dropped == 0
        for trace in TRACER.traces():
            ring_lines = [event_to_line(e)
                          for e in TRACER.lifecycle(trace)]
            cold_lines = [event_to_line(e)
                          for e in reader.lifecycle(trace)]
            assert ring_lines == cold_lines
        # The chaos acceptance query works identically on the cold side.
        kinds = {"admit", "receipt"}
        assert reader.find_lifecycle(kinds) == TRACER.find_lifecycle(kinds)

    def test_spool_attach_keeps_legacy_digest(self):
        # The spool rides along on every soak now; the pinned legacy
        # digest (tests/test_pipelined.py) must not feel it.
        report = run_chaos(seed=7, ops=600, records=200, batched=True)
        assert report.digest() == (
            "a577d0567dcac45e29a933854bf4766b"
            "030c996470a671326f21a3a13cecdcce")


# ======================================================================
# Exemplar sampling
# ======================================================================
class TestExemplars:
    def test_outlier_gate_needs_minimum_window(self):
        rec = LatencyRecorder()
        rec.observe("verified_latency", 10_000.0, trace="huge-early")
        assert not [e for e in rec.exemplars("verified_latency")
                    if e.kind == "outlier"]

    def test_outlier_beyond_window_p99_is_kept(self):
        rec = LatencyRecorder()
        for i in range(EXEMPLAR_MIN_WINDOW):
            rec.observe("verified_latency", 10.0, trace=f"c{i}")
        rec.observe("verified_latency", 500.0, trace="slow-one")
        outliers = [e for e in rec.exemplars("verified_latency")
                    if e.kind == "outlier"]
        assert [e.trace for e in outliers] == ["slow-one"]
        assert outliers[0].value == 500.0

    def test_baseline_every_nth_traced_observation(self):
        rec = LatencyRecorder()
        for i in range(EXEMPLAR_EVERY * 3):
            rec.observe("admission_wait", 1.0, trace=f"c{i}")
        baseline = [e for e in rec.exemplars("admission_wait")
                    if e.kind == "baseline"]
        assert [e.at for e in baseline] == [
            EXEMPLAR_EVERY, EXEMPLAR_EVERY * 2, EXEMPLAR_EVERY * 3]

    def test_untraced_observations_never_sample(self):
        rec = LatencyRecorder()
        for _ in range(EXEMPLAR_EVERY * 2):
            rec.observe("ecall_service", 1.0)
        rec.observe("ecall_service", 9999.0)
        assert rec.exemplars() == []

    def test_retention_is_bounded(self):
        rec = LatencyRecorder()
        for i in range(EXEMPLAR_MIN_WINDOW):
            rec.observe("verified_latency", 1.0, trace=f"warm{i}")
        for i in range(EXEMPLAR_OUTLIERS * 4):
            # Strictly growing: every one beats the window p99 gate.
            rec.observe("verified_latency", 1000.0 + i * 100,
                        trace=f"out{i}")
        outliers = [e for e in rec.exemplars("verified_latency")
                    if e.kind == "outlier"]
        assert len(outliers) == EXEMPLAR_OUTLIERS
        baseline = [e for e in rec.exemplars("verified_latency")
                    if e.kind == "baseline"]
        assert len(baseline) <= EXEMPLAR_BASELINE

    def test_exemplar_digest_deterministic_across_reruns(self):
        first = run_chaos(seed=11, ops=800, records=150, server=True,
                          obs=True)
        digest_a = first.exemplar_digest
        assert digest_a
        second = run_chaos(seed=11, ops=800, records=150, server=True,
                           obs=True)
        assert second.exemplar_digest == digest_a
        assert second.digest() == first.digest()
        # A different seed selects a different exemplar set.
        other = run_chaos(seed=23, ops=800, records=150, server=True,
                          obs=True)
        assert other.exemplar_digest != digest_a

    def test_window_meta_counts_resets(self):
        rec = LatencyRecorder()
        rec.observe("verified_latency", 5.0)
        assert rec.window_meta()["verified_latency"] == {
            "window_count": 1, "resets": 0}
        rec.take_window("verified_latency")
        meta = rec.window_meta()["verified_latency"]
        assert meta == {"window_count": 0, "resets": 1}


# ======================================================================
# SLO engine
# ======================================================================
class _StubStore:
    def __init__(self):
        self.quarantined_addresses = set()


class _StubDb:
    def __init__(self):
        self.store = _StubStore()


class _StubServer:
    def __init__(self):
        self.now = 0.0
        self.db = _StubDb()


class TestSloEngine:
    def _engine(self, **cfg) -> tuple[SloEngine, _StubServer]:
        return SloEngine(SloConfig(**cfg)), _StubServer()

    def test_latency_burn_fires_fast_alert(self):
        engine, server = self._engine(verified_p99_budget=64.0)
        from repro.instrument import COUNTERS
        COUNTERS.reset()
        for epoch in range(3):
            server.now += 100.0
            # Half the interval's settlements land over budget: burn 50x.
            for i in range(20):
                LATENCIES.observe("verified_latency",
                                  200.0 if i % 2 else 10.0)
            fired = engine.observe_epoch(server)
            LATENCIES.take_window("verified_latency")
            if epoch == 0:
                assert fired == 1  # fast burn trips immediately
        assert "verified_latency_p99" in engine.firing()
        snap = engine.snapshot()
        assert snap["objectives"]["verified_latency_p99"]["state"] == \
            "fast_burn"
        # The transition emitted an slo trace event.
        events = TRACER.events(kind="slo")
        assert events and events[0].detail["objective"] == \
            "verified_latency_p99"

    def test_healthy_epochs_recover_to_ok(self):
        engine, server = self._engine(verified_p99_budget=64.0,
                                      fast_window=2, slow_window=10)
        from repro.instrument import COUNTERS
        COUNTERS.reset()
        server.now = 1.0
        for _ in range(10):
            LATENCIES.observe("verified_latency", 500.0)
        engine.observe_epoch(server)
        LATENCIES.take_window("verified_latency")
        assert engine.firing()
        for _ in range(25):
            server.now += 1.0
            LATENCIES.observe("verified_latency", 1.0)
            engine.observe_epoch(server)
            LATENCIES.take_window("verified_latency")
        assert "verified_latency_p99" not in engine.firing()

    def test_shed_rate_burn_uses_counter_deltas(self):
        engine, server = self._engine(shed_rate_budget=0.05)
        from repro.instrument import COUNTERS
        COUNTERS.reset()
        COUNTERS.admitted = 80
        COUNTERS.shed = 20  # 20% shed rate = 4x budget
        fired = engine.observe_epoch(server)
        assert fired >= 1
        assert "shed_rate" in engine.firing()
        # No further sheds: the next epochs see a zero delta, not the
        # cumulative total.
        for _ in range(10):
            COUNTERS.admitted += 100
            engine.observe_epoch(server)
        assert "shed_rate" not in engine.firing()

    def test_quarantine_burn_tracks_convergence(self):
        engine, server = self._engine()
        q = server.db.store.quarantined_addresses
        for addr in range(4):
            q.add(addr)
        for _ in range(3):  # growing/stuck: burn 2.0 > fast threshold? no
            engine.observe_epoch(server)
        # burn 2.0 == fast_burn_threshold -> fires fast.
        assert "scrub_quarantine" in engine.firing()
        q.clear()
        for _ in range(6):
            engine.observe_epoch(server)
        assert "scrub_quarantine" not in engine.firing()

    def test_engine_never_bumps_counters(self):
        from repro.instrument import COUNTERS
        COUNTERS.reset()
        engine, server = self._engine()
        before = COUNTERS.snapshot()
        for _ in range(5):
            for _ in range(10):
                LATENCIES.observe("verified_latency", 500.0)
            engine.observe_epoch(server)
            LATENCIES.take_window("verified_latency")
        diff = COUNTERS.snapshot().diff(before)
        assert all(v == 0 for v in diff.as_dict().values())


# ======================================================================
# Serving-stack wiring
# ======================================================================
def _tiny_server(slo: SloConfig | None = None, **cfg_kwargs):
    from repro.core.fastver import FastVer, FastVerConfig
    from repro.core.protocol import Client
    from repro.crypto.mac import MacKey
    from repro.server.pipeline import FastVerServer, ServerConfig

    items = [(k, b"v%d" % k) for k in range(64)]
    db = FastVer(FastVerConfig(key_width=16, n_workers=2,
                               partition_depth=3, cache_capacity=64),
                 items=items)
    client = Client(1, MacKey.generate("obs-pipeline-test"))
    db.register_client(client)
    db.verify()
    db.checkpoint()
    server = FastVerServer(
        db, ServerConfig(slo=slo, default_deadline=float(10 ** 9),
                         **cfg_kwargs), warm=items)
    return db, client, server


class TestServingWiring:
    def test_health_exports_obs_and_slo(self):
        TRACER.attach_sink(TraceSpool())
        _, _, server = _tiny_server(slo=SloConfig())
        health = server.health()
        assert health["slo"]["epochs"] == 0
        obs = health["obs"]
        assert obs["trace_capacity"] == TRACER.capacity
        assert obs["spool"]["appended"] == obs["trace_events"]
        assert "windows" in obs
        # No SLO declared -> health says so explicitly.
        _, _, plain = _tiny_server()
        assert plain.health()["slo"] is None

    def test_maintain_evaluates_slo_and_counts(self):
        from repro.instrument import COUNTERS
        from repro.server.pipeline import ServerRequest

        COUNTERS.reset()
        _, client, server = _tiny_server(slo=SloConfig())
        for i in range(8):
            server.handle(ServerRequest(
                "put", client.make_put(server.bitkey(i), b"x"),
                float(10 ** 9)))
        server.maintain()
        assert COUNTERS.slo_evaluations == 1
        assert server.health()["slo"]["epochs"] == 1
        # The engine's epoch interval was reset even without a controller.
        assert LATENCIES.window("verified_latency").count == 0

    def test_no_slo_config_means_no_engine_and_no_counters(self):
        from repro.instrument import COUNTERS

        COUNTERS.reset()
        _, _, server = _tiny_server()
        assert server._slo is None
        server.maintain()
        assert COUNTERS.slo_evaluations == 0

    def test_controller_shrinks_on_slo_advisory(self):
        from repro.server.controller import LatencyBudgetController

        _, _, server = _tiny_server(
            slo=SloConfig(verified_p99_budget=50.0),
            group_commit=True, latency_budget_p99=1000.0)
        controller = server._controller
        assert isinstance(controller, LatencyBudgetController)
        server.now = 10.0
        # Interval p99 (90) is UNDER the controller's own budget (1000)
        # but far over the SLO's (50): burn alert fires on evaluation,
        # and the controller must treat the epoch as a breach.
        for _ in range(50):
            LATENCIES.observe("verified_latency", 90.0)
        server._slo.observe_epoch(server)
        assert "verified_latency_p99" in server._slo.firing()
        before = controller.batch_limit(0)
        controller.observe_epoch()
        assert controller.last_action == "shrink"
        assert controller.batch_limit(0) <= before

    def test_supervisor_proactive_repair_refuses_while_degraded(self):
        _, _, server = _tiny_server(slo=SloConfig())
        server._enter_degraded("test")
        assert server.supervisor.proactive_repair() is False


# ======================================================================
# Acceptance: deterministic SLO alert, lifecycle from the spool alone
# ======================================================================
class TestObsChaosAcceptance:
    def test_seeded_alert_and_spool_only_lifecycle(self, tmp_path):
        directory = str(tmp_path / "spool")
        report = run_chaos(seed=7, ops=2000, records=200, server=True,
                           obs=True, spool_dir=directory)
        assert report.ok
        assert report.obs_armed
        # The tight --obs budget makes a stressed soak fire: at least one
        # burn-rate alert, deterministically.
        assert report.slo_alerts >= 1
        assert report.exemplar_digest
        rerun = run_chaos(seed=7, ops=2000, records=200, server=True,
                          obs=True)
        assert rerun.digest() == report.digest()
        assert rerun.slo_alerts == report.slo_alerts

        # Reconstruct the alert's exemplar-backed lifecycle from the
        # PERSISTED spool alone (fresh reader; the live obs layer could
        # be gone entirely).
        exemplars = {e.trace for e in LATENCIES.exemplars()
                     if e.name == "verified_latency"}
        assert exemplars
        obs_reset()  # drop the ring: the disk copy is all that's left
        reader = SpoolReader(directory)
        slo_events = reader.events(kind="slo")
        assert any(e.detail["state"] != "ok" for e in slo_events)
        reconstructed = 0
        for trace in exemplars:
            span = reader.lifecycle(trace)
            assert span, f"exemplar {trace} has no spooled span"
            kinds = {e.kind for e in span}
            assert "admit" in kinds
            reconstructed += 1
        assert reconstructed == len(exemplars)

    def test_obs_digest_folds_slo_and_exemplars(self):
        armed = run_chaos(seed=7, ops=600, records=150, server=True,
                          obs=True)
        plain = run_chaos(seed=7, ops=600, records=150, server=True)
        # Same workload, but the armed run's digest folds the obs facts.
        assert armed.digest() != plain.digest()
        assert plain.exemplar_digest == ""

    def test_forensics_dump_is_spool_backed(self, tmp_path, monkeypatch):
        from repro.faults import chaos as chaos_mod

        # Force a hard failure cheaply: run a soak, then fabricate one.
        run = chaos_mod._ChaosRun(seed=7, ops=300, records=100, plan=None,
                                  tamper_every=None, server=True)
        TRACER.attach_sink(TraceSpool())
        report = run.run()
        if report.forensics is None:
            report.hard_failures.append("synthetic failure for forensics")
            report.forensics = None
        # Re-drive just the forensics logic via a real run with an
        # injected failure marker.
        report2 = run_chaos(seed=13, ops=300, records=100, server=True)
        assert report2.spool_events >= len(TRACER)
        assert report2.spool_replay_ok


class TestMetricsIntegration:
    def test_run_metrics_carries_slo_and_obs(self):
        from repro.obs.runner import run_instrumented

        run = run_instrumented(records=120, ops=400, maintain_every=100)
        m = run.metrics
        assert m.slo["slo_evaluations"] >= 4
        assert m.obs["trace_events"] > 0
        assert m.obs["spool"]["appended"] == m.obs["trace_events"]
        payload = run.payload()
        assert payload["schema"] == "repro.metrics.v2"
        from repro.obs.export import check_payload
        assert check_payload(payload) == []

    def test_prometheus_exposition_includes_new_gauges(self):
        from repro.obs.export import to_prometheus
        from repro.obs.runner import run_instrumented

        run = run_instrumented(records=120, ops=400, maintain_every=100)
        text = to_prometheus(run.payload())
        assert "repro_spool" in text
        assert "repro_slo_burn" in text
        assert "repro_latency_window_resets" in text
        assert "repro_exemplars_retained" in text

    def test_payload_check_catches_v1(self):
        from repro.obs.export import check_payload
        from repro.obs.runner import run_instrumented

        payload = run_instrumented(records=120, ops=400,
                                   maintain_every=100).payload()
        payload["schema"] = "repro.metrics.v1"
        del payload["exemplar_digest"]
        problems = check_payload(payload)
        assert any("schema" in p for p in problems)
        assert any("exemplar_digest" in p for p in problems)

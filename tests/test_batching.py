"""Group-commit batching tests: one-ecall batches, partial-batch
isolation, epoch-at-boundary semantics, maintain straddling, anti-replay
floor behaviour, standby fault points, and the bitkey/BitKey memo caches.

Everything here drives the *opt-in* batched serving loop
(``ServerConfig(group_commit=True)``); the legacy per-op path's
behavioural identity is separately pinned by the chaos digest baselines.
"""

from __future__ import annotations

import pytest

from repro.core.keys import BitKey
from repro.errors import (
    AvailabilityError,
    BatchAbortedError,
    EnclaveRebootError,
    ProtocolError,
    ReplayError,
    SignatureError,
)
from repro.faults import FaultPlan, install_faults
from repro.instrument import COUNTERS
from repro.server import FastVerServer, ServerConfig, ServerRequest
from tests.conftest import small_fastver


def batched_setup(specs=None, seed=3, n_records=50, standby=False,
                  **cfg_kwargs):
    """A checkpointed FastVer behind a group-commit server."""
    db, client = small_fastver(n_records=n_records)
    db.verify()
    db.flush()
    db.checkpoint()
    cfg_kwargs.setdefault("group_commit", True)
    cfg_kwargs.setdefault("max_batch_ops", 8)
    cfg_kwargs.setdefault("max_batch_ticks", 1000.0)
    cfg_kwargs.setdefault("queue_capacity", 256)
    server = FastVerServer(db, ServerConfig(**cfg_kwargs))
    if standby:
        server.attach_standby()
    if specs is not None:
        install_faults(db, FaultPlan(seed, specs))
    return db, client, server


def envelope(server, client, kind, key, payload=None):
    bk = server.bitkey(key)
    op = client.make_get(bk) if kind == "get" else client.make_put(bk, payload)
    return ServerRequest(kind, op, server.now + 10_000.0, worker=bk.bits,
                         generation=server.generation)


class TestGroupCommit:
    def test_one_crossing_per_shard_batch(self):
        db, client, server = batched_setup(max_batch_ops=64)
        tickets = [server.submit(envelope(server, client, "put", k, b"p%d" % k))
                   for k in range(32)]
        before = COUNTERS.enclave_entries
        server.pump()
        crossings = COUNTERS.enclave_entries - before
        assert all(t.done and t.error is None for t in tickets)
        # 32 ops over n_workers shards settle in at most one ecall each.
        assert crossings <= db.config.n_workers
        assert COUNTERS.crossings_saved > 0

    def test_batch_one_matches_legacy_results(self):
        # Receipt-synchronous batch=1 must answer exactly like the legacy
        # pump — same payloads, same nonce echo — for the same stream.
        db1, client1 = small_fastver(n_records=20)
        db1.verify(); db1.flush(); db1.checkpoint()
        legacy = FastVerServer(db1, ServerConfig())
        db2, client2 = small_fastver(n_records=20)
        db2.verify(); db2.flush(); db2.checkpoint()
        batched = FastVerServer(db2, ServerConfig(group_commit=True,
                                                  max_batch_ops=1))
        for k in range(15):
            a = legacy.handle(envelope(legacy, client1, "put", k, b"w%d" % k))
            b = batched.handle(envelope(batched, client2, "put", k, b"w%d" % k))
            assert (a.payload, a.degraded, a.deduped) == \
                (b.payload, b.degraded, b.deduped)
        for k in range(15):
            a = legacy.handle(envelope(legacy, client1, "get", k))
            b = batched.handle(envelope(batched, client2, "get", k))
            assert a.payload == b.payload == b"w%d" % k
        db1.verify()
        db2.verify()

    def test_unregistered_client_fails_alone(self):
        from repro.crypto.mac import MacKey
        from repro.core.protocol import Client

        db, client, server = batched_setup()
        stranger = Client(99, MacKey.generate("stranger"))
        good = server.submit(envelope(server, client, "put", 1, b"ok"))
        bad = server.submit(ServerRequest(
            "put", stranger.make_put(server.bitkey(2), b"no"),
            server.now + 10_000.0, worker=0))
        server.pump()
        assert good.error is None and good.result.payload == b"ok"
        assert isinstance(bad.error, ProtocolError)
        db.verify()

    def test_epoch_closes_on_batch_boundary(self):
        # config.batch_ops inside a batch must defer the close to the
        # boundary: one close for the whole batch, never mid-batch.
        db, client, server = batched_setup(max_batch_ops=16)
        db.config.batch_ops = 4
        epoch_before = db.current_epoch
        for k in range(6):
            server.submit(envelope(server, client, "put", k, b"e%d" % k))
        server.pump()
        # 6 ops crossed the threshold of 4 exactly once, at the boundary.
        assert db.current_epoch == epoch_before + 1
        assert db.ops_since_close == 0

    def test_health_exposes_batching_surface(self):
        db, client, server = batched_setup()
        server.handle(envelope(server, client, "put", 1, b"h"))
        surface = server.health()["batching"]
        assert surface["group_commit"] is True
        assert surface["batches_flushed"] >= 1
        assert surface["open_shards"] == 0


class TestPartialBatch:
    def test_poisoned_op_fails_alone(self):
        db, client, server = batched_setup({"batch.partial": [0]})
        tickets = [server.submit(envelope(server, client, "put", k, b"p%d" % k))
                   for k in range(8)]
        server.pump()
        failed = [(i, t) for i, t in enumerate(tickets) if t.error is not None]
        assert len(failed) == 1
        bad_index, bad_ticket = failed[0]
        assert isinstance(bad_ticket.error, SignatureError)
        assert not server.degraded  # isolation, not recovery
        # The poisoned key still reads its pre-batch value; the verifier
        # agrees with the store (verify stays green).
        readback = server.handle(envelope(server, client, "get", bad_index))
        assert readback.payload == b"v%d" % bad_index
        for i, ticket in enumerate(tickets):
            if i == bad_index:
                continue
            assert ticket.error is None
            out = server.handle(envelope(server, client, "get", i))
            assert out.payload == b"p%d" % i
        db.verify()

    def test_same_key_conflict_voids_batch(self):
        # The poisoned put is followed (same batch) by a get of the same
        # key whose staged entries embed the poisoned value: isolation is
        # impossible and the whole batch resolves as an availability
        # failure — nothing applied, server degrades and heals.
        # Keys 2 and 4 both route to shard 0 (worker % n_workers), so all
        # three ops share one batch and the poison hits the last put.
        db, client, server = batched_setup({"batch.partial": [0]})
        t_put_a = server.submit(envelope(server, client, "put", 2, b"aa"))
        t_put_b = server.submit(envelope(server, client, "put", 4, b"bb"))
        t_get_b = server.submit(envelope(server, client, "get", 4))
        server.pump()
        errors = [t.error for t in (t_put_a, t_put_b, t_get_b)
                  if t.error is not None]
        assert any(isinstance(e, BatchAbortedError) for e in errors)
        # Cancel is definitive: neither put was applied.
        for t in (t_put_a, t_put_b):
            assert server.cancel(client.client_id, t.request.nonce) is None
        # Heal brings the pre-batch values back.
        assert server.handle(envelope(server, client, "get", 2)).payload == b"v2"
        assert server.handle(envelope(server, client, "get", 4)).payload == b"v4"
        db.verify()

    def test_reboot_mid_batch_voids_and_recovers(self):
        db, client, server = batched_setup({"batch.reboot_mid_batch": [0]})
        # Even keys keep all eight ops in one shard batch.
        tickets = [server.submit(envelope(server, client, "put", 2 * k,
                                          b"r%d" % k))
                   for k in range(8)]
        server.pump()
        assert all(isinstance(t.error, EnclaveRebootError) for t in tickets)
        assert server.degraded
        out = server.handle(envelope(server, client, "get", 0))
        assert out.payload == b"v0"  # rolled back to the checkpoint
        assert not server.degraded
        db.verify()


class TestAntiReplayAcrossBatches:
    def test_retry_after_batch_answers_from_dedup(self):
        db, client, server = batched_setup()
        first = envelope(server, client, "put", 5, b"once")
        a = server.handle(first)
        retry = ServerRequest("put", first.op, server.now + 10_000.0,
                              worker=first.worker)
        b = server.handle(retry)
        assert a.payload == b.payload == b"once"
        assert b.deduped

    def test_direct_reapply_trips_the_floor(self):
        # Bypassing the server's dedup table, the verifier's own
        # anti-replay window rejects the nonce the batch consumed. The
        # rejection lands at validation time (the staged entry's flush),
        # which is where the batch path surfaces it too.
        db, client, server = batched_setup()
        request = envelope(server, client, "put", 5, b"once")
        server.handle(request)
        db.apply_put(client, request.op, worker=0)
        with pytest.raises(ReplayError):
            db.flush()

    def test_floor_advances_once_per_batch_and_seals(self):
        # A full batch of nonces lands, the maintain marker seals the
        # floor, and every consumed nonce stays rejected after a reboot
        # + recovery (the sealed floor covers the whole batch).
        db, client, server = batched_setup()
        requests = [envelope(server, client, "put", k, b"f%d" % k)
                    for k in range(8)]
        for r in requests:
            server.submit(r)
        server.pump()
        server.maintain()
        db.enclave.reboot()
        db.recover(db.last_checkpoint)
        # The restored floor burns every nonce up to the high-water mark;
        # the lowest nonce of the batch is the strongest probe (monotone
        # floor ⇒ rejecting it rejects the whole batch).
        db.apply_put(client, requests[0].op, worker=0)
        with pytest.raises(ReplayError):
            db.flush()


class TestMaintainStraddlesBatch:
    def test_open_batch_flushes_before_checkpoint(self):
        from repro.server.pipeline import Ticket

        db, client, server = batched_setup()
        request = envelope(server, client, "put", 7, b"straddle")
        ticket = Ticket(request)
        server._shard_batches[0] = [ticket]
        server._shard_opened[0] = server.now
        server._staged_keys[request.dedup_key] = 0
        server.maintain()
        # The maintain marker landed on a batch boundary: the staged op
        # committed first and is inside the checkpoint's durable tier.
        assert ticket.done and ticket.error is None
        assert not server._shard_batches
        assert server.committed_reads[request.op.key] == b"straddle"
        db.enclave.reboot()
        db.recover(db.last_checkpoint)
        out = server.handle(envelope(server, client, "get", 7))
        assert out.payload == b"straddle"


class TestStandbyFaultPoints:
    def _soak(self, point):
        db, client, server = batched_setup({point: [0]}, standby=True,
                                           group_commit=False)
        for i in range(20):
            server.handle(envelope(server, client, "put", i % 50, b"s%d" % i))
        return db, client, server

    @pytest.mark.parametrize("point",
                             ["standby.reboot", "standby.stall_mid_apply"])
    def test_failed_standby_is_rebuilt_and_promotable(self, point):
        db, client, server = self._soak(point)
        repl = server.replication
        assert repl.rejects >= 1  # the faulted shipment was not admitted
        assert repl.can_promote()  # the manager rebuilt the replica
        repl.promote()
        assert server.generation == 1
        out = server.handle(envelope(server, client, "get", 3))
        assert out.payload == b"s3"

    def test_boundary_coalesces_shipments(self):
        db, client, server = batched_setup(standby=True)
        shipper = server.replication.shipper
        for k in range(6):
            server.submit(envelope(server, client, "put", k, b"b%d" % k))
        server.pump()
        # Batch boundaries marked the outbox for prompt shipping, and the
        # pump drained it: nothing acknowledged is still sitting locally.
        assert not shipper.boundary_pending
        assert server.replication.lag() == 0
        assert server.replication.shipped_batches >= 1


class TestMicroCaches:
    def test_bitkey_memo_hits(self):
        db, client, server = batched_setup()
        first = server.bitkey(9)
        again = server.bitkey(9)
        assert first == again
        assert server.bitkey_hits >= 1
        # Memoized keys stay valid across recovery (width-pure derivation).
        db.enclave.reboot()
        db.recover(db.last_checkpoint)
        assert server.bitkey(9) == db.data_key(9)

    def test_bitkey_hash_is_memoized_and_stable(self):
        key = BitKey(64, 12345)
        assert hash(key) == hash(BitKey(64, 12345))
        assert hash(key) == key._hash  # slot populated lazily
        with pytest.raises(AttributeError):
            key.bits = 1  # immutability guard intact
        assert BitKey(4, 5) != BitKey(5, 5)


class TestBatchingBenchShape:
    def test_tiny_sweep_is_monotone(self):
        from repro.bench.batching import _run_one

        rows = []
        for batch in (1, 8):
            row, _server = _run_one(batch, records=60, ops=120, seed=5)
            rows.append(row)
        assert rows[0]["crossings_saved"] == 0  # batch=1 is the baseline
        assert rows[1]["crossings_saved"] > 0
        assert rows[1]["crossings"] < rows[0]["crossings"]

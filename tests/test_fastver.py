"""End-to-end tests of the FastVer verified store (§6–§7)."""

from __future__ import annotations

import random

import pytest

from repro import FastVer, FastVerConfig, new_client
from repro.core.records import Aux, Protection
from repro.errors import ProtocolError
from repro.instrument import COUNTERS
from tests.conftest import small_fastver


class TestBasicOps:
    def test_loaded_values_readable(self, db_and_client):
        db, client = db_and_client
        for k in (0, 1, 50, 99):
            assert db.get(client, k).payload == b"v%d" % k

    def test_put_then_get(self, db_and_client):
        db, client = db_and_client
        db.put(client, 7, b"hello")
        assert db.get(client, 7).payload == b"hello"

    def test_get_absent(self, db_and_client):
        db, client = db_and_client
        assert db.get(client, 40000).payload is None

    def test_insert_new_key(self, db_and_client):
        db, client = db_and_client
        db.put(client, 40000, b"fresh")
        assert db.get(client, 40000).payload == b"fresh"

    def test_many_inserts(self, db_and_client):
        db, client = db_and_client
        for k in range(200, 260):
            db.put(client, k, b"n%d" % k)
        for k in range(200, 260):
            assert db.get(client, k).payload == b"n%d" % k

    def test_delete_tombstones(self, db_and_client):
        db, client = db_and_client
        db.put(client, 7, None)
        assert db.get(client, 7).payload is None

    def test_delete_absent_is_noop(self, db_and_client):
        db, client = db_and_client
        db.put(client, 40000, None)
        assert db.get(client, 40000).payload is None

    def test_reinsert_after_delete(self, db_and_client):
        db, client = db_and_client
        db.put(client, 7, None)
        db.put(client, 7, b"back")
        assert db.get(client, 7).payload == b"back"

    def test_scan_ordered(self, db_and_client):
        db, client = db_and_client
        result = db.scan(client, 10, 5)
        assert [k for k, _ in result] == [10, 11, 12, 13, 14]

    def test_scan_skips_deleted(self, db_and_client):
        db, client = db_and_client
        db.put(client, 11, None)
        result = db.scan(client, 10, 4)
        assert 11 not in [k for k, _ in result]

    def test_empty_database_start(self):
        db = FastVer(FastVerConfig(key_width=16, n_workers=1,
                                   cache_capacity=64))
        client = new_client(1)
        db.register_client(client)
        assert db.get(client, 1).payload is None
        db.put(client, 1, b"first")
        assert db.get(client, 1).payload == b"first"
        db.verify()
        db.flush()
        assert client.settled_epoch == 0

    def test_unregistered_client_rejected(self, db_and_client):
        db, _ = db_and_client
        stranger = new_client(99)
        with pytest.raises(ProtocolError):
            db.get(stranger, 1)
            db.flush()


class TestEpochs:
    def test_verify_settles_clients(self, db_and_client):
        db, client = db_and_client
        result = db.put(client, 3, b"x")
        db.verify()
        db.flush()
        assert client.settled(result.nonce)

    def test_results_provisional_before_verify(self, db_and_client):
        db, client = db_and_client
        result = db.put(client, 3, b"x")
        db.flush()
        assert not client.settled(result.nonce)

    def test_epochs_advance_in_order(self, db_and_client):
        db, client = db_and_client
        for i in range(4):
            db.put(client, i, b"e%d" % i)
            report = db.verify()
            assert report.epoch == i
        db.flush()
        assert client.settled_epoch == 3

    def test_touched_records_return_to_merkle(self, db_and_client):
        db, client = db_and_client
        db.put(client, 3, b"x")
        key = db.data_key(3)
        assert Aux.unpack(db.store.read_record(key).aux).state is Protection.DEFERRED
        db.verify()
        assert Aux.unpack(db.store.read_record(key).aux).state is Protection.MERKLE

    def test_verification_work_scales_with_touched_set(self, db_and_client):
        db, client = db_and_client
        db.put(client, 1, b"x")
        small = db.verify().migrated_data
        for k in range(50):
            db.put(client, k, b"y")
        large = db.verify().migrated_data
        assert small <= 2
        assert large >= 40

    def test_auto_verify_by_batch_ops(self):
        db, client = small_fastver(batch_ops=10)
        for i in range(25):
            db.get(client, i % 7)
        db.flush()
        assert db.verified_epoch() >= 1

    def test_deferred_population_bounded_after_verify(self, db_and_client):
        db, client = db_and_client
        for i in range(60):
            db.put(client, i % 30, b"z%d" % i)
        assert db.deferred_population() >= 25
        db.verify()
        # Only anchors (if LRU-evicted) may remain deferred.
        assert db.deferred_population() <= len(db.anchors)


class TestWorkers:
    def test_ops_spread_across_workers(self):
        db, client = small_fastver(n_workers=4)
        for i in range(80):
            db.put(client, i % 40, b"w%d" % i, worker=i % 4)
        for i in range(40):
            assert db.get(client, i, worker=i % 4).payload is not None
        db.verify()
        db.flush()
        assert client.settled_epoch == 0

    def test_same_key_different_workers(self):
        db, client = small_fastver(n_workers=4)
        for w in range(4):
            db.put(client, 5, b"from-%d" % w, worker=w)
        assert db.get(client, 5, worker=2).payload == b"from-3"
        db.verify()
        db.flush()

    def test_single_worker_no_partitioning(self):
        db, client = small_fastver(n_workers=1, partition_depth=None)
        assert db.anchors == {}
        db.put(client, 7, b"x")
        assert db.get(client, 7).payload == b"x"
        db.verify()
        db.flush()
        assert client.settled_epoch == 0


class TestPartitioning:
    def test_anchor_count_tracks_depth(self):
        db4, _ = small_fastver(n_records=300, partition_depth=4)
        db2, _ = small_fastver(n_records=300, partition_depth=2)
        assert len(db4.anchors) == 16
        assert len(db2.anchors) == 4

    def test_anchors_stay_deferred_or_cached(self, db_and_client):
        db, client = db_and_client
        for i in range(40):
            db.get(client, i)
        db.verify()
        for anchor in db.anchors:
            if anchor in db.cached_where:
                continue
            aux = Aux.unpack(db.store.read_record(anchor).aux)
            assert aux.state is Protection.DEFERRED

    def test_owners_round_robin(self):
        db, _ = small_fastver(n_records=300, n_workers=4, partition_depth=4)
        owners = set(db.anchors.values())
        assert owners == {0, 1, 2, 3}


class TestCounters:
    def test_warm_ops_do_no_merkle_hashing(self, db_and_client):
        db, client = db_and_client
        db.get(client, 3)          # cold: pulls the chain
        db.flush()
        before = COUNTERS.merkle_hashes
        db.get(client, 3)          # warm now
        db.flush()
        assert COUNTERS.merkle_hashes == before

    def test_cold_ops_hash_logarithmically(self, db_and_client):
        db, client = db_and_client
        before = COUNTERS.merkle_hashes
        db.get(client, 3)
        db.flush()
        chain_hashes = COUNTERS.merkle_hashes - before
        assert 1 <= chain_hashes <= db.config.key_width + 2

    def test_log_amortizes_enclave_entries(self):
        db, client = small_fastver(n_workers=1)
        db.flush()
        before = COUNTERS.enclave_entries
        for i in range(50):
            db.get(client, i % 20)
        db.flush()
        entries = COUNTERS.enclave_entries - before
        assert entries < 20  # far fewer crossings than operations


class TestConfigValidation:
    def test_cache_too_small(self):
        with pytest.raises(ValueError):
            FastVerConfig(key_width=64, cache_capacity=10).validate()

    def test_bad_partition_depth(self):
        with pytest.raises(ValueError):
            FastVerConfig(key_width=16, cache_capacity=64,
                          partition_depth=0).validate()
        with pytest.raises(ValueError):
            FastVerConfig(key_width=16, cache_capacity=64,
                          partition_depth=16).validate()

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            FastVerConfig(n_workers=0).validate()

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            FastVerConfig(key_width=16, cache_capacity=64,
                          batch_ops=0).validate()


class TestRandomizedModelCheck:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_ops_match_dict_model(self, seed):
        db, client = small_fastver(n_records=120, n_workers=3,
                                   partition_depth=3)
        model = {k: b"v%d" % k for k in range(120)}
        rng = random.Random(seed)
        nonces = []
        for step in range(600):
            k = rng.randrange(180)
            worker = rng.randrange(3)
            action = rng.random()
            if action < 0.45:
                got = db.get(client, k, worker=worker)
                assert got.payload == model.get(k)
                nonces.append(got.nonce)
            elif action < 0.85:
                v = b"s%d" % step
                nonces.append(db.put(client, k, v, worker=worker).nonce)
                model[k] = v
            elif action < 0.92:
                nonces.append(db.put(client, k, None, worker=worker).nonce)
                model.pop(k, None)
            else:
                start = rng.randrange(180)
                got = db.scan(client, start, 5, worker=worker)
                expected = [(kk, model[kk]) for kk in sorted(model)
                            if kk >= start][:5]
                # scan counts only 5 directory slots; deleted keys inside
                # the window shrink the result rather than extend it
                assert dict(got).items() <= dict(expected).items() or \
                    [k for k, _ in got] == [k for k, _ in expected][:len(got)]
            if step % 150 == 149:
                db.verify()
        db.verify()
        db.flush()
        # Every operation is settled and every read was model-correct.
        for nonce in nonces:
            assert client.settled(nonce)
        for k, v in model.items():
            assert db.get(client, k).payload == v
        db.verify()
        db.flush()

"""Tests for CPR-style checkpointing and recovery of the host store (§7)."""

from __future__ import annotations

import pytest

from repro.core.keys import BitKey
from repro.core.records import DataValue
from repro.errors import CheckpointError, RecoveryError
from repro.store.checkpoint import recover, take_checkpoint
from repro.store.faster import FasterKV


def dk(i):
    return BitKey.data_key(i, 16)


def loaded_store(n=20):
    store = FasterKV(ordered_width=16)
    for i in range(n):
        store.upsert(dk(i), DataValue(b"v%d" % i), aux=i)
    return store


class TestCheckpoint:
    def test_roundtrip(self):
        store = loaded_store()
        token = take_checkpoint(store, version=1)
        recovered = recover(token, store.log.device)
        for i in range(20):
            assert recovered.read(dk(i)) == (DataValue(b"v%d" % i), i)

    def test_recovered_store_is_writable(self):
        store = loaded_store()
        token = take_checkpoint(store, version=1)
        recovered = recover(token, store.log.device)
        recovered.upsert(dk(5), DataValue(b"new"))
        assert recovered.read(dk(5))[0] == DataValue(b"new")
        assert recovered.read(dk(6))[0] == DataValue(b"v6")

    def test_recovered_directory_supports_scans(self):
        store = loaded_store()
        token = take_checkpoint(store, version=1)
        recovered = recover(token, store.log.device)
        got = recovered.scan_from(dk(3), 3)
        assert [k.bits for k, _, _ in got] == [3, 4, 5]

    def test_tombstones_not_resurrected(self):
        store = loaded_store()
        store.delete(dk(7))
        token = take_checkpoint(store, version=2)
        recovered = recover(token, store.log.device)
        assert recovered.read(dk(7)) is None
        assert dk(7) not in recovered.directory

    def test_checkpoint_version_validation(self):
        with pytest.raises(CheckpointError):
            take_checkpoint(loaded_store(), version=0)

    def test_updates_after_checkpoint_not_in_it(self):
        store = loaded_store()
        token = take_checkpoint(store, version=1)
        store.upsert(dk(0), DataValue(b"post-checkpoint"))
        recovered = recover(token, store.log.device)
        assert recovered.read(dk(0))[0] == DataValue(b"v0")

    def test_destroyed_log_detected(self):
        store = loaded_store()
        token = take_checkpoint(store, version=1)
        # Adversary destroys a page the index needs.
        victim = next(iter(store.index.items()))[1]
        del store.log.device._pages[victim]
        with pytest.raises(RecoveryError):
            recover(token, store.log.device)

    def test_swapped_pages_detected(self):
        store = loaded_store()
        token = take_checkpoint(store, version=1)
        pages = store.log.device._pages
        a0 = store.index.lookup(dk(0))
        a1 = store.index.lookup(dk(1))
        pages[a0], pages[a1] = pages[a1], pages[a0]
        with pytest.raises(RecoveryError):
            recover(token, store.log.device)

    def test_corrupt_index_blob_detected(self):
        store = loaded_store()
        token = take_checkpoint(store, version=1)
        token.index_blob = token.index_blob + b"junk"
        with pytest.raises(RecoveryError):
            recover(token, store.log.device)

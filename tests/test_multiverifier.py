"""Tests for the enclave-resident verifier group: batch dispatch, epoch
close with hash aggregation, and sealed checkpoint/restore (§5.3, §7)."""

from __future__ import annotations

import pytest

from repro.core.keys import BitKey
from repro.core.multiverifier import VerifierGroup
from repro.core.protocol import Client, EpochReceipt, OpReceipt
from repro.core.records import DataValue
from repro.crypto.mac import MacKey
from repro.enclave.sealed import SealedSlot
from repro.errors import (
    EpochError,
    ProtocolError,
    ReplayError,
    RollbackError,
    SetHashMismatchError,
    SignatureError,
)


def dk(i):
    return BitKey.data_key(i, 8)


ROOT = BitKey.root()


@pytest.fixture
def group():
    g = VerifierGroup(SealedSlot(), n_threads=2, cache_capacity=16)
    g.bulk_load([(dk(i), b"v%d" % i) for i in range(8)])
    return g


@pytest.fixture
def client(group):
    c = Client(1, MacKey.generate())
    group.register_client(c.client_id, c.key.key_bytes())
    return c


def first_parent(group, key):
    """Honest host: find the tree parent by walking thread 0's root."""
    from repro.merkle.sparse import lookup

    def source(k):
        if k.is_root:
            return group.threads[0].cache.get(ROOT).value
        return source.records[k]

    return source


class TestBulkLoad:
    def test_returns_all_records(self, group):
        # already loaded in fixture; reload must fail
        with pytest.raises(ProtocolError):
            group.bulk_load([(dk(1), b"x")])

    def test_root_pinned_in_thread_zero(self, group):
        assert ROOT in group.threads[0].cache
        assert ROOT not in group.threads[1].cache

    def test_start_empty(self):
        g = VerifierGroup(SealedSlot(), n_threads=1, cache_capacity=8)
        root_value = g.start_empty()
        assert root_value.is_empty
        with pytest.raises(ProtocolError):
            g.start_empty()


class TestBatchDispatch:
    def test_unknown_method_rejected(self, group):
        with pytest.raises(ProtocolError):
            group.process_batch(0, [("drop_all_checks", ())])

    def test_raw_update_not_exposed(self, group):
        """The host must not be able to modify data without a client MAC."""
        with pytest.raises(ProtocolError):
            group.process_batch(0, [("update", (dk(1), DataValue(b"EVIL")))])
        with pytest.raises(ProtocolError):
            group.process_batch(0, [("insert_extend",
                                     (dk(200), DataValue(b"x"), ROOT))])

    def test_unknown_thread_rejected(self, group):
        with pytest.raises(ProtocolError):
            group.process_batch(7, [])

    def test_validate_put_requires_client_signature(self, group, client):
        # Cache the record first via its merkle parent chain on thread 0.
        self._cache_record(group, dk(1))
        nonce = client.next_nonce()
        with pytest.raises(SignatureError):
            group.process_batch(0, [
                ("validate_put_update",
                 (client.client_id, dk(1), b"EVIL", nonce, b"\x00" * 32)),
            ])

    def test_honest_get_receipt(self, group, client):
        self._cache_record(group, dk(1))
        nonce = client.next_nonce()
        [receipt] = group.process_batch(0, [
            ("validate_get", (client.client_id, dk(1), nonce)),
        ])
        assert isinstance(receipt, OpReceipt)
        client.accept(receipt)
        assert receipt.payload == b"v1"

    def test_nonce_replay_rejected(self, group, client):
        self._cache_record(group, dk(1))
        nonce = client.next_nonce()
        group.process_batch(0, [("validate_get", (client.client_id, dk(1), nonce))])
        with pytest.raises(ReplayError):
            group.process_batch(0, [("validate_get",
                                     (client.client_id, dk(1), nonce))])

    @staticmethod
    def _cache_record(group, key):
        """Chain the record into thread 0's cache via honest merkle adds."""
        records = {k: v for k, v in group._test_records.items()}
        from repro.merkle.sparse import lookup

        def source(k):
            if k.is_root:
                return group.threads[0].cache.get(ROOT).value
            return records[k]

        result = lookup(source, key)
        thread = group.threads[0]
        batch = []
        for i, node in enumerate(result.path[1:], start=1):
            if node not in thread.cache:
                batch.append(("add_merkle",
                              (node, records[node], result.path[i - 1])))
        batch.append(("add_merkle", (key, records[key], result.terminal)))
        group.process_batch(0, batch)


@pytest.fixture(autouse=True)
def _keep_host_copy(monkeypatch):
    """Retain the bulk-load output so tests can act as the honest host."""
    original = VerifierGroup.bulk_load

    def wrapper(self, items):
        root_value, records = original(self, items)
        self._test_records = dict(records)
        return root_value, records

    monkeypatch.setattr(VerifierGroup, "bulk_load", wrapper)


class TestEpochClose:
    def test_balanced_epoch_closes(self, group, client):
        thread = group.threads[0]
        TestBatchDispatch._cache_record(group, dk(1))
        [ts_epoch] = group.process_batch(0, [("evict_deferred", (dk(1),))])
        ts, epoch = ts_epoch
        closing = group.start_epoch_close()
        assert closing == 0
        group.process_batch(0, [
            ("add_deferred", (dk(1), DataValue(b"v1"), ts, epoch)),
            ("evict_deferred", (dk(1),)),
        ])
        receipts = group.finish_epoch_close(closing)
        assert client.client_id in receipts
        client.accept_epoch(receipts[client.client_id])
        assert group.verified_epoch() == 0

    def test_unmigrated_record_fails_close(self, group, client):
        TestBatchDispatch._cache_record(group, dk(1))
        group.process_batch(0, [("evict_deferred", (dk(1),))])
        closing = group.start_epoch_close()
        with pytest.raises(SetHashMismatchError):
            group.finish_epoch_close(closing)

    def test_cannot_close_open_epoch(self, group):
        with pytest.raises(EpochError):
            group.finish_epoch_close(0)

    def test_cross_thread_balance(self, group, client):
        """Evict on thread 0, re-add on thread 1: aggregation balances."""
        TestBatchDispatch._cache_record(group, dk(1))
        [(ts, epoch)] = group.process_batch(0, [("evict_deferred", (dk(1),))])
        closing = group.start_epoch_close()
        group.process_batch(1, [
            ("add_deferred", (dk(1), DataValue(b"v1"), ts, epoch)),
            ("evict_deferred", (dk(1),)),
        ])
        group.finish_epoch_close(closing)
        assert group.verified_epoch() == 0


class TestCheckpointRestore:
    def _run_some_ops(self, group, client):
        TestBatchDispatch._cache_record(group, dk(1))
        request_nonce = client.next_nonce()
        tag = client.key.sign(b"PUT", dk(1).to_bytes(), b"\x01xyz",
                              request_nonce.to_bytes(8, "big"))
        group.process_batch(0, [
            ("validate_put_update",
             (client.client_id, dk(1), b"xyz", request_nonce, tag)),
            ("evict_deferred", (dk(1),)),
        ])

    def test_roundtrip_preserves_state(self, group, client):
        self._run_some_ops(group, client)
        blob = group.checkpoint_state()
        # Simulate a reboot: fresh group with the same identity keys.
        g2 = VerifierGroup(group.sealed, n_threads=2, cache_capacity=16,
                           prf=group.prf, sealing_key=group.sealing_key)
        g2.register_client(client.client_id, client.key.key_bytes())
        g2.restore_state(blob)
        assert g2.epochs.current == group.epochs.current
        assert g2.threads[0].clock == group.threads[0].clock
        assert ROOT in g2.threads[0].cache

    def test_restored_group_can_close_epoch(self, group, client):
        self._run_some_ops(group, client)
        blob = group.checkpoint_state()
        g2 = VerifierGroup(group.sealed, n_threads=2, cache_capacity=16,
                           prf=group.prf, sealing_key=group.sealing_key)
        g2.register_client(client.client_id, client.key.key_bytes())
        g2.restore_state(blob)
        # Migrate the put's record honestly, then close.
        rec = group.threads  # the host knows (value, ts, epoch) it stored
        # The put left dk(1) deferred at some (ts, epoch); recompute them:
        # clock after evict == stored ts.
        ts = g2.threads[0].clock
        closing = g2.start_epoch_close()
        g2.process_batch(0, [
            ("add_deferred", (dk(1), DataValue(b"xyz"), ts, 0)),
            ("evict_deferred", (dk(1),)),
        ])
        g2.finish_epoch_close(closing)
        assert g2.verified_epoch() == 0

    def test_rollback_to_old_checkpoint_detected(self, group, client):
        self._run_some_ops(group, client)
        old_blob = group.checkpoint_state()
        self._run_some_ops(group, client)
        group.checkpoint_state()  # newer checkpoint advances sealed slot
        g2 = VerifierGroup(group.sealed, n_threads=2, cache_capacity=16,
                           prf=group.prf, sealing_key=group.sealing_key)
        with pytest.raises(RollbackError):
            g2.restore_state(old_blob)

    def test_forged_checkpoint_detected(self, group, client):
        self._run_some_ops(group, client)
        blob = group.checkpoint_state()
        forged = blob[:-1] + bytes([blob[-1] ^ 1])
        g2 = VerifierGroup(group.sealed, n_threads=2, cache_capacity=16,
                           prf=group.prf, sealing_key=group.sealing_key)
        with pytest.raises((SignatureError, RollbackError, ProtocolError,
                            ValueError)):
            g2.restore_state(forged)

    def test_wrong_identity_key_rejected(self, group, client):
        self._run_some_ops(group, client)
        blob = group.checkpoint_state()
        g2 = VerifierGroup(group.sealed, n_threads=2, cache_capacity=16,
                           prf=group.prf, sealing_key=MacKey.generate())
        with pytest.raises(SignatureError):
            g2.restore_state(blob)

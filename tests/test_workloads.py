"""Tests for YCSB workload generation and key distributions (§8 setup)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.workloads.distributions import (
    SequentialKeys,
    UniformKeys,
    ZipfianKeys,
    make_distribution,
)
from repro.workloads.ycsb import (
    OP_GET,
    OP_INSERT,
    OP_PUT,
    OP_SCAN,
    WORKLOADS,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_E,
    WorkloadSpec,
    YcsbGenerator,
)


class TestDistributions:
    def test_uniform_in_range(self):
        dist = UniformKeys(100, seed=1)
        samples = [dist.sample() for _ in range(1000)]
        assert all(0 <= s < 100 for s in samples)
        assert len(set(samples)) > 50

    def test_zipfian_in_range(self):
        dist = ZipfianKeys(1000, theta=0.9, seed=1)
        samples = [dist.sample() for _ in range(2000)]
        assert all(0 <= s < 1000 for s in samples)

    def test_zipfian_is_skewed(self):
        """At θ=0.9 the hottest key is far above uniform share."""
        dist = ZipfianKeys(1000, theta=0.9, seed=1)
        counts = Counter(dist.sample() for _ in range(20000))
        top = counts.most_common(1)[0][1]
        assert top > 20000 / 1000 * 20

    def test_zipfian_theta_zero_is_uniformish(self):
        dist = ZipfianKeys(100, theta=0.0, seed=1)
        counts = Counter(dist.sample() for _ in range(20000))
        top = counts.most_common(1)[0][1]
        assert top < 20000 / 100 * 3

    def test_zipfian_scramble_scatters_hot_keys(self):
        plain = ZipfianKeys(1000, theta=0.9, seed=1, scramble=False)
        counts = Counter(plain.sample() for _ in range(5000))
        # Unscrambled: rank 0 (key 0) is the hottest.
        assert counts.most_common(1)[0][0] == 0
        scrambled = ZipfianKeys(1000, theta=0.9, seed=1, scramble=True)
        counts2 = Counter(scrambled.sample() for _ in range(5000))
        assert counts2.most_common(1)[0][0] != 0

    def test_zipfian_large_n_constructs_quickly(self):
        dist = ZipfianKeys(200_000_000, theta=0.9, seed=1)
        assert 0 <= dist.sample() < 200_000_000

    def test_sequential_cycles(self):
        dist = SequentialKeys(3)
        assert [dist.sample() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_factory(self):
        assert isinstance(make_distribution("uniform", 10), UniformKeys)
        assert isinstance(make_distribution("zipfian", 10), ZipfianKeys)
        assert isinstance(make_distribution("sequential", 10), SequentialKeys)
        with pytest.raises(ValueError):
            make_distribution("pareto", 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(10, theta=1.0)


class TestYcsbSpecs:
    def test_registry(self):
        assert set(WORKLOADS) == {"YCSB-A", "YCSB-B", "YCSB-C", "YCSB-E"}

    def test_mixes_sum_to_one(self):
        for spec in WORKLOADS.values():
            total = (spec.get_fraction + spec.put_fraction
                     + spec.scan_fraction + spec.insert_fraction)
            assert abs(total - 1.0) < 1e-9

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", get_fraction=0.7, put_fraction=0.7)


class TestGenerator:
    def test_initial_items(self):
        gen = YcsbGenerator(YCSB_A, 50, value_size=8, seed=1)
        items = gen.initial_items()
        assert [k for k, _ in items] == list(range(50))
        assert all(len(v) == 8 for _, v in items)

    def test_mix_fractions_observed(self):
        gen = YcsbGenerator(YCSB_A, 100, seed=1)
        kinds = Counter(kind for kind, _, _ in gen.operations(4000))
        assert 0.45 < kinds[OP_GET] / 4000 < 0.55
        assert 0.45 < kinds[OP_PUT] / 4000 < 0.55

    def test_readonly_generates_only_gets(self):
        gen = YcsbGenerator(YCSB_C, 100, seed=1)
        kinds = {kind for kind, _, _ in gen.operations(500)}
        assert kinds == {OP_GET}

    def test_scan_workload(self):
        gen = YcsbGenerator(YCSB_E, 100, seed=1)
        ops = list(gen.operations(1000))
        kinds = Counter(kind for kind, _, _ in ops)
        assert kinds[OP_SCAN] > 900
        assert kinds[OP_INSERT] > 10
        scan_lengths = {arg for kind, _, arg in ops if kind == OP_SCAN}
        assert scan_lengths == {100}

    def test_inserts_draw_fresh_keys(self):
        gen = YcsbGenerator(YCSB_E, 100, seed=1)
        inserted = [key for kind, key, _ in gen.operations(2000)
                    if kind == OP_INSERT]
        assert all(k >= 100 for k in inserted)
        assert len(set(inserted)) == len(inserted)

    def test_key_operations_accounting(self):
        gen_a = YcsbGenerator(YCSB_A, 100, seed=1)
        assert gen_a.key_operations(1000) == 1000
        gen_e = YcsbGenerator(YCSB_E, 100, seed=1)
        # 95% scans of length 100: ~95x amplification.
        assert gen_e.key_operations(1000) > 90_000

    def test_deterministic_under_seed(self):
        a = list(YcsbGenerator(YCSB_A, 100, seed=5).operations(100))
        b = list(YcsbGenerator(YCSB_A, 100, seed=5).operations(100))
        assert a == b

    def test_reproducible_against_fastver(self):
        """The generator stream drives FastVer without errors."""
        from repro.workloads.ycsb import run_workload
        from tests.conftest import small_fastver
        db, client = small_fastver(n_records=50)
        gen = YcsbGenerator(YCSB_A, 50, value_size=4, seed=3)
        executed = run_workload(db, client, gen, 100, n_workers=2)
        assert executed == 100
        db.verify()
        db.flush()
        assert client.settled_epoch == 0

"""Byzantine-host integration tests: every attack must be detected (§2.2,
§6.4). The system-level guarantee: no epoch receipt is ever issued for an
epoch containing a tampered result."""

from __future__ import annotations

import pytest

from repro.adversary import (
    COLD_ATTACKS,
    RECEIPT_ATTACKS,
    WARM_ATTACKS,
    forge_receipt_payload,
    rollback_record,
)
from repro.backoff import BackoffPolicy
from repro.client import RetryingClient
from repro.core.protocol import OpReceipt
from repro.core.records import Aux, DataValue, Protection
from repro.errors import IntegrityError, ProtocolError, SignatureError
from repro.server import FastVerServer, ServerConfig
from tests.conftest import small_fastver


def warm_db(target=7):
    """A store where the target key is in deferred (warm) state."""
    db, client = small_fastver(n_records=100)
    db.put(client, target, b"precious")
    db.flush()
    return db, client


def cold_db(target=7):
    """A store where the target key is Merkle-protected (cold)."""
    db, client = small_fastver(n_records=100)
    db.put(client, target, b"precious")
    db.verify()  # re-merkleizes the touched set
    db.flush()
    key = db.data_key(target)
    assert Aux.unpack(db.store.read_record(key).aux).state is Protection.MERKLE
    return db, client


def provoke(db, client, target):
    """Exercise the target and close the epoch; some check must fire."""
    db.get(client, target)
    db.flush()
    db.verify()
    db.flush()


class TestWarmAttacks:
    @pytest.mark.parametrize("name", sorted(WARM_ATTACKS))
    def test_detected(self, name):
        if name == "skip_migration":
            # Re-accessing the record honestly re-registers it in the
            # migration index, which *repairs* a pure bookkeeping drop —
            # that attack only bites without re-access (next test).
            pytest.skip("repaired by re-access; covered below")
        db, client = warm_db()
        WARM_ATTACKS[name](db, 7)
        with pytest.raises(IntegrityError):
            provoke(db, client, 7)
        assert client.settled_epoch < 0  # no epoch receipt ever issued

    @pytest.mark.parametrize("name", sorted(WARM_ATTACKS))
    def test_detected_even_without_reaccess(self, name):
        """Attacks are caught by the verification scan even if no client
        ever touches the tampered key again."""
        if name == "tamper_timestamp":
            pytest.skip("timestamp forgery surfaces at the next add")
        db, client = warm_db()
        WARM_ATTACKS[name](db, 7)
        with pytest.raises(IntegrityError):
            db.verify()
            db.flush()
        assert client.settled_epoch < 0


class TestColdAttacks:
    @pytest.mark.parametrize("name", sorted(COLD_ATTACKS))
    def test_detected_on_access(self, name):
        db, client = cold_db()
        settled_before = client.settled_epoch  # epoch 0, pre-attack
        # Pick a cold target whose chain is attackable (not entirely
        # shielded by the verifier caches).
        from repro.errors import ProtocolError
        target = None
        for candidate in range(7, 99):
            try:
                COLD_ATTACKS[name](db, candidate)
                target = candidate
                break
            except ProtocolError:
                continue
        assert target is not None, "no attackable cold key found"
        with pytest.raises(IntegrityError):
            provoke(db, client, target)
        # No epoch containing the tampered access ever settles.
        assert client.settled_epoch == settled_before


class TestRollback:
    def test_rollback_of_deferred_record_detected(self):
        db, client = small_fastver(n_records=100)
        db.put(client, 7, b"v-old")
        db.flush()
        rollback_record(db, 7, lambda: db.put(client, 7, b"v-new"))
        with pytest.raises(IntegrityError):
            db.get(client, 7)
            db.flush()
            db.verify()
            db.flush()
        assert client.settled_epoch < 0

    def test_stale_read_never_settles(self):
        """Even if the rollback serves stale data provisionally, the epoch
        receipt never arrives, so the client never accepts it."""
        db, client = small_fastver(n_records=100)
        db.put(client, 7, b"v-old")
        db.flush()
        rollback_record(db, 7, lambda: db.put(client, 7, b"v-new"))
        try:
            result = db.get(client, 7)
            db.flush()
            stale_nonce = result.nonce
            db.verify()
            db.flush()
        except IntegrityError:
            return  # detected before even answering: fine
        assert not client.settled(stale_nonce)


class TestReceiptForgery:
    def test_forged_receipt_rejected_by_client(self):
        db, client = small_fastver()
        # Capture receipts instead of delivering them.
        captured = []
        original_accept = client.accept
        client.accept = captured.append
        db.get(client, 3)
        db.flush()
        client.accept = original_accept
        [receipt] = [r for r in captured if isinstance(r, OpReceipt)]
        forge_receipt_payload(receipt)
        with pytest.raises(SignatureError):
            client.accept(receipt)

    def test_host_cannot_mint_puts(self):
        """A put fabricated by the host (bad client tag) is rejected inside
        the enclave before any state changes."""
        db, client = small_fastver()
        bk = db.data_key(3)
        with pytest.raises(SignatureError):
            db._data_op(0, client, bk, "put", nonce=client.next_nonce(),
                        payload=b"EVIL", tag=b"\x00" * 32)
            db.flush()


class TestEnclaveReboot:
    def test_reboot_loses_volatile_state(self):
        db, client = small_fastver()
        db.put(client, 3, b"x")
        db.flush()
        db.enclave.reboot()
        # The fresh verifier has no root pinned and no client table: any
        # further interaction fails rather than silently accepting state.
        with pytest.raises(Exception):
            db.get(client, 3)
            db.flush()
            db.verify()


class TestAuxForgeryVariants:
    def test_forged_slot_aux_detected(self):
        """Marking a record as 'cached' when it is not: the host loses
        track and the operation path rejects."""
        db, client = small_fastver()
        db.put(client, 7, b"x")
        db.flush()
        record = db.store.read_record(db.data_key(7))
        record.aux = Aux.cached(0, 3).pack()
        db.deferred_index.pop(db.data_key(7), None)
        with pytest.raises(Exception):
            db.get(client, 7)
            db.flush()
            db.verify()
            db.flush()
        assert client.settled_epoch < 0

    def test_value_swap_between_two_records_detected(self):
        """Swapping the values of two warm records preserves per-record
        plausibility but not the multiset accounting."""
        db, client = small_fastver()
        db.put(client, 5, b"five")
        db.put(client, 6, b"six")
        db.flush()
        a = db.store.read_record(db.data_key(5))
        b = db.store.read_record(db.data_key(6))
        a.value, b.value = b.value, a.value
        with pytest.raises(IntegrityError):
            db.get(client, 5)
            db.get(client, 6)
            db.flush()
            db.verify()
            db.flush()
        assert client.settled_epoch < 0


# ----------------------------------------------------------------------
# The same attack registries, driven through the serving pipeline instead
# of the direct verifier API. Two topologies the direct tests above never
# exercise: the group-commit batched pipeline (detection must survive the
# stage → batch-flush indirection) and a post-failover promoted verifier
# (detection must survive checkpoint shipping + promotion). The guarantee
# is unchanged: the attack is detected and no epoch containing tampered
# state ever settles.
# ----------------------------------------------------------------------

TOPOLOGIES = ("batched", "failover")


def served_stack(topology):
    """A full client→server stack for the requested topology."""
    db, client = small_fastver(n_records=100)
    if topology == "batched":
        config = ServerConfig(group_commit=True, max_batch_ops=4,
                              max_batch_ticks=16.0)
    else:
        config = ServerConfig()
    server = FastVerServer(db, config)
    sdk = RetryingClient(server, client,
                         policy=BackoffPolicy(max_attempts=5,
                                              base_delay=2.0,
                                              max_delay=16.0, seed=11))
    if topology == "failover":
        server.attach_standby()
        sdk.put(3, b"warmup")
        server.maintain()
        server.replication.promote()
        assert sdk.get(3).payload == b"warmup"  # adopt the new generation
    return server, sdk, client


class TestWarmAttacksThroughTopologies:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("name", sorted(WARM_ATTACKS))
    def test_detected_before_settlement(self, name, topology):
        server, sdk, client = served_stack(topology)
        sdk.put(7, b"precious")  # leaves key 7 deferred (warm)
        settled_before = client.settled_epoch
        WARM_ATTACKS[name](server.db, 7)
        with pytest.raises(IntegrityError):
            if name != "skip_migration":  # re-access repairs that one
                sdk.get(7)
            server.maintain()
        assert client.settled_epoch == settled_before


class TestColdAttacksThroughTopologies:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("name", sorted(COLD_ATTACKS))
    def test_detected_on_access(self, name, topology):
        server, sdk, client = served_stack(topology)
        sdk.put(7, b"precious")
        server.maintain()  # verify re-merkleizes the touched set
        settled_before = client.settled_epoch
        target = None
        for candidate in range(7, 99):
            try:
                COLD_ATTACKS[name](server.db, candidate)
                target = candidate
                break
            except ProtocolError:
                continue
        assert target is not None, "no attackable cold key found"
        with pytest.raises(IntegrityError):
            sdk.get(target)
            server.maintain()
        assert client.settled_epoch == settled_before


class TestReceiptAttacksThroughTopologies:
    """The adversary owns the receipt wire even when a pipeline (or a
    freshly promoted verifier) sits between client and store: drops only
    cost availability, replays and reorders are absorbed."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_dropped_receipts_never_settle_never_lie(self, topology):
        server, sdk, client = served_stack(topology)
        settled_before = client.settled_epoch
        RECEIPT_ATTACKS["drop_receipts"](server.db, client)
        result = sdk.put(7, b"precious")
        server.maintain()
        assert not client.settled(result.nonce)
        assert client.settled_epoch == settled_before
        server.db.receipt_channel.faults = None  # heal the wire
        assert sdk.get(7).payload == b"precious"

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_duplicated_receipts_settle_once_without_alarm(self, topology):
        server, sdk, client = served_stack(topology)
        settled_before = client.settled_epoch
        RECEIPT_ATTACKS["duplicate_receipts"](server.db, client)
        result = sdk.put(7, b"precious")
        server.maintain()  # no spurious alarm (tri-state invariant)
        assert client.settled(result.nonce)
        assert client.settled_epoch > settled_before
        assert server.db.receipt_channel.duplicated > 0

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_reordered_receipts_still_settle(self, topology):
        server, sdk, client = served_stack(topology)
        settled_before = client.settled_epoch
        RECEIPT_ATTACKS["reorder_receipts"](server.db, client)
        result = sdk.put(7, b"precious")
        server.maintain()
        server.db.flush()  # deliver the withheld stragglers
        assert client.settled(result.nonce)
        assert client.settled_epoch > settled_before

"""The zero-escape gate: every distributed byzantine campaign in the
red-team matrix must be detected before anything client-visible settles,
must name the detector that fired, and must leave a reconstructable
attack/detect span in the repro.obs ring.

These are the acceptance tests for the red-team engine; CI runs the same
matrix via ``python -m repro chaos --redteam`` (the ``redteam-smoke``
job) across several seeds.
"""

from __future__ import annotations

import pytest

from repro.adversary.redteam import (
    APPLICABLE,
    REDTEAM_ATTACKS,
    REDTEAM_TOPOLOGIES,
    matrix,
    run_redteam,
)
from repro.obs import TRACER

#: Every (attack, topology) cell the engine schedules.
MATRIX = matrix()


def test_matrix_meets_the_gate_floor():
    """The acceptance criterion: >= 5 distributed attacks x >= 3 served
    topologies (direct rides along with its applicable subset)."""
    assert len(REDTEAM_ATTACKS) >= 5
    served = [t for t in REDTEAM_TOPOLOGIES if t != "direct"]
    assert len(served) >= 3
    # Every served topology runs the full synchronous attack set; the
    # pipelined topology additionally runs settle_swap, which needs an
    # in-flight streamed batch to exist at all.
    sync_attacks = set(REDTEAM_ATTACKS) - {"settle_swap"}
    for topology in served:
        expected = set(REDTEAM_ATTACKS) if topology == "pipelined" \
            else sync_attacks
        assert set(APPLICABLE[topology]) == expected
    assert len(MATRIX) >= 15


class TestZeroEscape:
    """One fresh system per cell; the attack must come back detected."""

    @pytest.mark.parametrize("attack,topology", MATRIX)
    def test_attack_is_detected(self, attack, topology):
        report = run_redteam(seed=7, topologies=(topology,),
                             attacks=(attack,))
        [verdict] = report.verdicts
        assert verdict.detected, (
            f"{attack} x {topology} ESCAPED: {verdict.note}")
        assert verdict.detector, "a detection must name its detector"
        assert verdict.latency_ticks >= 0
        # The forensic span is reconstructable from the ring: the
        # campaign's trace id carries its injection and its verdict.
        events = TRACER.events(trace=verdict.trace)
        kinds = [e.kind for e in events]
        assert "attack" in kinds and "detect" in kinds
        injected = next(e for e in events if e.kind == "attack")
        assert injected.detail["attack"] == attack
        assert injected.detail["topology"] == topology
        verdict_event = next(e for e in events if e.kind == "detect")
        assert verdict_event.detail["detected"] is True
        assert verdict_event.detail["detector"] == verdict.detector


class TestFullRun:
    def test_full_matrix_zero_escapes(self):
        report = run_redteam(seed=7)
        assert report.ok, [v.note for v in report.verdicts if v.escaped]
        assert report.escapes == 0
        assert len(report.verdicts) == len(MATRIX)
        # No escape -> no forensics payload (CI only uploads on failure).
        assert report.forensics is None

    def test_same_seed_is_deterministic(self):
        assert run_redteam(seed=13).digest() == run_redteam(seed=13).digest()

    def test_detectors_are_diverse(self):
        """The campaigns probe different walls: the matrix must exercise
        the sealed slot, the client fence/chain, the SDK's generation and
        receipt-binding checks, the standby's re-validation, and the
        enclave's client-MAC check — not funnel into one detector."""
        report = run_redteam(seed=7)
        detectors = {v.detector for v in report.verdicts}
        assert {"sealed_slot", "client_fence", "client_chain",
                "sdk_generation", "sdk_receipt_binding",
                "standby_revalidation", "client_mac",
                "lease_generation", "sdk_stale_replay"} <= detectors

    def test_report_is_json_serializable(self):
        import json
        payload = json.loads(json.dumps(run_redteam(
            seed=7, topologies=("direct",)).as_dict()))
        assert payload["ok"] is True
        assert payload["verdicts"][0]["detector"]

"""Tests for the §3/§8.5 baseline systems: correctness and detection."""

from __future__ import annotations

import pytest

from repro import new_client
from repro.baselines.deferred_only import DeferredStore
from repro.baselines.merkle_only import CachedMerkleStore, plain_merkle_store
from repro.baselines.trusted_db import TrustedDbStore
from repro.core.records import DataValue
from repro.errors import CapacityError, IntegrityError, SignatureError
from repro.instrument import COUNTERS

ITEMS = [(k, b"v%d" % k) for k in range(64)]


def merkle_store(**kwargs):
    db = CachedMerkleStore(ITEMS, key_width=16, cache_capacity=64, **kwargs)
    client = new_client(1)
    db.register_client(client)
    return db, client


class TestCachedMerkleStore:
    def test_get_put(self):
        db, client = merkle_store()
        assert db.get(client, 5) == b"v5"
        db.put(client, 5, b"new")
        assert db.get(client, 5) == b"new"
        db.flush()

    def test_absent(self):
        db, client = merkle_store()
        assert db.get(client, 5000) is None
        db.flush()

    def test_receipts_are_final(self):
        """Merkle validation has no deferred component: results settle at
        flush without any epoch receipt (performance goal P3)."""
        db, client = merkle_store()
        db.get(client, 5)
        db.flush()  # receipts delivered; no exception == validated

    def test_tampering_detected(self):
        db, client = merkle_store()
        bk = db.data_key(9)
        db.records[bk] = DataValue(b"EVIL")
        with pytest.raises(IntegrityError):
            db.get(client, 9)
            db.flush()

    def test_caching_reduces_hashing(self):
        """§4.3: a cached chain turns repeat accesses nearly hash-free."""
        db, client = merkle_store()
        db.get(client, 5)
        db.flush()
        before = COUNTERS.merkle_hashes
        db.get(client, 5)
        db.flush()
        assert COUNTERS.merkle_hashes - before <= 1

    def test_plain_variant_rehashes_every_time(self):
        """The 'M' configuration tears the chain down after each op."""
        db = plain_merkle_store(ITEMS, key_width=16)
        client = new_client(1)
        db.register_client(client)
        db.get(client, 5)
        db.flush()
        before = COUNTERS.merkle_hashes
        db.get(client, 5)
        db.flush()
        assert COUNTERS.merkle_hashes - before >= 2

    def test_eager_propagation_costs_more(self):
        """MV does strictly more hash work per put than lazy caching."""
        def put_hashes(eager):
            COUNTERS.reset()
            db, client = merkle_store(eager_propagation=eager)
            db.get(client, 5)      # warm the chain
            db.flush()
            before = COUNTERS.merkle_hashes
            db.put(client, 5, b"x")
            db.flush()
            return COUNTERS.merkle_hashes - before

        assert put_hashes(True) > put_hashes(False)

    def test_sequential_beats_random_hashing(self):
        """§8.5: sequential access gives chain locality (M1K seq). Same
        key set both ways — only the order differs — under a cache too
        small to hold the whole tree."""
        import random
        items = [(k, b"v%d" % k) for k in range(256)]

        def run(keys):
            COUNTERS.reset()
            db = CachedMerkleStore(items, key_width=16, cache_capacity=24)
            client = new_client(1)
            db.register_client(client)
            for k in keys:
                db.get(client, k)
            db.flush()
            return COUNTERS.merkle_hashes

        ordered = list(range(256))
        shuffled = list(range(256))
        random.Random(5).shuffle(shuffled)
        seq = run(ordered)
        rand = run(shuffled)
        assert seq < 0.7 * rand

    def test_forged_put_rejected(self):
        db, client = merkle_store()
        nonce = client.next_nonce()
        db.log.append("validate_put_update", client.client_id,
                      db.data_key(5), b"EVIL", nonce, b"\x00" * 32)
        with pytest.raises(SignatureError):
            db.flush()


class TestDeferredStore:
    def _store(self, n_workers=2):
        db = DeferredStore(ITEMS, key_width=16, n_workers=n_workers,
                           cache_capacity=16)
        client = new_client(1)
        db.register_client(client)
        return db, client

    def test_get_put_verify(self):
        db, client = self._store()
        assert db.get(client, 5, worker=0) == b"v5"
        db.put(client, 5, b"new", worker=1)
        assert db.get(client, 5, worker=0) == b"new"
        db.verify()
        db.flush()
        assert client.settled_epoch == 0

    def test_verification_scans_whole_database(self):
        """§5.4: verification cost is linear in DB size, touched or not."""
        db, client = self._store()
        db.get(client, 1)
        before = COUNTERS.scan_records
        db.verify()
        assert COUNTERS.scan_records - before >= len(ITEMS)

    def test_multiple_epochs(self):
        db, client = self._store()
        for e in range(3):
            db.put(client, e, b"e%d" % e, worker=e % 2)
            db.verify()
        db.flush()
        assert client.settled_epoch == 2

    def test_tampered_value_fails_epoch(self):
        db, client = self._store()
        db.put(client, 5, b"secret")
        bk = db.data_key(5)
        payload, ts, epoch = db.records[bk]
        db.records[bk] = (b"EVIL", ts, epoch)
        with pytest.raises(IntegrityError):
            db.get(client, 5)
            db.verify()
        db.flush()
        assert client.settled_epoch < 0

    def test_tampered_timestamp_fails_epoch(self):
        db, client = self._store()
        db.put(client, 5, b"secret")
        bk = db.data_key(5)
        payload, ts, epoch = db.records[bk]
        db.records[bk] = (payload, ts + 3, epoch)
        with pytest.raises(IntegrityError):
            db.get(client, 5)
            db.verify()

    def test_rollback_fails_epoch(self):
        db, client = self._store()
        bk = db.data_key(5)
        old = db.records[bk]
        db.put(client, 5, b"new")
        db.records[bk] = old
        with pytest.raises(IntegrityError):
            db.get(client, 5)
            db.verify()

    def test_no_merkle_hashing_at_all(self):
        db, client = self._store()
        before = COUNTERS.merkle_hashes
        for i in range(20):
            db.get(client, i)
        db.verify()
        db.flush()
        assert COUNTERS.merkle_hashes == before


class TestTrustedDb:
    def test_ops(self):
        db = TrustedDbStore(ITEMS, key_width=16)
        client = new_client(1)
        db.register_client(client)
        assert db.get(client, 5) == b"v5"
        db.put(client, 5, b"new")
        assert db.get(client, 5) == b"new"
        assert db.get(client, 999) is None

    def test_memory_bound_p1_failure(self):
        """§3: the trusted DB fails performance goal P1 — a database that
        outgrows enclave memory simply cannot load."""
        with pytest.raises(CapacityError):
            TrustedDbStore([(k, b"x") for k in range(2_000_000)],
                           key_width=32)

    def test_every_op_crosses_the_enclave(self):
        db = TrustedDbStore(ITEMS, key_width=16)
        client = new_client(1)
        db.register_client(client)
        before = COUNTERS.enclave_entries
        for i in range(10):
            db.get(client, i)
        assert COUNTERS.enclave_entries - before == 10

    def test_forged_put_rejected(self):
        db = TrustedDbStore(ITEMS, key_width=16)
        client = new_client(1)
        db.register_client(client)
        with pytest.raises(SignatureError):
            db.enclave.ecall("put", client.client_id, db.data_key(5),
                             b"EVIL", client.next_nonce(), b"\x00" * 32)

"""Counters algebra: add/diff/scoped round-trips and the max-merge rule.

The cost model, ``RunMetrics``, and the per-subsystem attribution all
consume counter bags produced by ``add`` (per-worker merges), ``diff``
(scoped measurement), and ``scoped`` (their composition) — so the
algebra has to be exact, including for gauge-style fields that merge as
a running maximum rather than a sum.
"""

from __future__ import annotations

from dataclasses import fields

from repro.instrument import Counters


def test_add_sums_ordinary_fields():
    a = Counters(merkle_hashes=3, store_reads=5)
    b = Counters(merkle_hashes=4, store_reads=1, mac_ops=2)
    a.add(b)
    assert a.merkle_hashes == 7
    assert a.store_reads == 6
    assert a.mac_ops == 2


def test_add_maxes_gauge_fields():
    a = Counters(replication_lag_max=9, failovers=1)
    b = Counters(replication_lag_max=4, failovers=2)
    a.add(b)
    # The peak of a merged bag is the max of the per-worker peaks; the
    # summing counter next to it still sums.
    assert a.replication_lag_max == 9
    assert a.failovers == 3
    b.add(Counters(replication_lag_max=30))
    assert b.replication_lag_max == 30


def test_diff_subtracts_ordinary_fields():
    base = Counters(ops=10, enclave_entries=2)
    now = Counters(ops=25, enclave_entries=7)
    d = now.diff(base)
    assert d.ops == 15
    assert d.enclave_entries == 5


def test_diff_carries_moved_gauge_and_zeroes_unmoved():
    base = Counters(replication_lag_max=6)
    moved = Counters(replication_lag_max=9)
    still = Counters(replication_lag_max=6)
    # A peak minus a baseline peak is meaningless; the diff carries the
    # observed max when the gauge moved during the scope...
    assert moved.diff(base).replication_lag_max == 9
    # ...and 0 when it did not (not -0 from subtraction, and never the
    # stale baseline value).
    assert still.diff(base).replication_lag_max == 0


def test_scoped_round_trips_gauges_through_add():
    """diff mirrors the max-merge rule, so scope deltas re-merged with
    add() reconstruct the true peak instead of summing peaks."""
    global_bag = Counters(replication_lag_max=5, ops=100)
    snap = global_bag.snapshot()
    global_bag.replication_lag_max = 12   # the gauge moves in the scope
    global_bag.ops += 7
    delta = global_bag.diff(snap)
    merged = snap.snapshot()
    merged.add(delta)
    assert merged.replication_lag_max == 12
    assert merged.ops == 107


def test_scoped_measures_only_the_block(counters=None):
    c = Counters()
    c.ops = 50
    with c.scoped() as scope:
        c.ops += 3
        c.merkle_hashes += 2
    assert scope.ops == 3
    assert scope.merkle_hashes == 2
    assert c.ops == 53  # the global bag is untouched by scoping


def test_max_merge_set_derived_from_metadata():
    """No hand-maintained list: the gauge set falls out of field
    metadata, so a new gauge_max() field can't silently sum."""
    from_metadata = {f.name for f in fields(Counters)
                     if f.metadata.get("merge") == "max"}
    assert Counters._MAX_MERGE == from_metadata
    assert "replication_lag_max" in Counters._MAX_MERGE
    assert Counters.merge_mode("replication_lag_max") == "max"
    assert Counters.merge_mode("ops") == "sum"


def test_group_dict_matches_metadata():
    repl = Counters(failovers=2, shipped_batches=5,
                    replication_lag_max=3, recovery_ticks=40,
                    delta_resyncs=4, snapshot_resyncs=1, lease_expiries=1,
                    epoch_markers=6, replica_reads=12,
                    replica_staleness_max=2, replication_retain_depth=80)
    d = repl.group_dict("replication")
    assert d == {"failovers": 2, "shipped_batches": 5,
                 "replication_lag_max": 3, "recovery_ticks": 40,
                 "delta_resyncs": 4, "snapshot_resyncs": 1,
                 "lease_expiries": 1, "epoch_markers": 6,
                 "replica_reads": 12, "replica_staleness_max": 2,
                 "replication_retain_depth": 80}
    # Every grouped field really carries the metadata tag.
    for name in d:
        (f,) = [f for f in fields(Counters) if f.name == name]
        assert f.metadata.get("group") == "replication"


def test_batch_fill_avg_stable_under_per_worker_merge():
    """The average is derived from summable parts, so merging worker
    bags gives the true global average — not an average of averages."""
    w1 = Counters(batches=2, batch_ops_total=20)    # fill 10.0
    w2 = Counters(batches=8, batch_ops_total=16)    # fill 2.0
    merged = Counters()
    merged.add(w1)
    merged.add(w2)
    assert merged.batch_fill_avg == 36 / 10  # true global mean, not 6.0
    assert Counters().batch_fill_avg == 0.0


def test_snapshot_is_independent():
    c = Counters(ops=1)
    snap = c.snapshot()
    c.ops = 99
    assert snap.ops == 1

"""Tests for the extension features: latency tuning (P3), log-scan
recovery, partition rebalancing, and the host-side auditor."""

from __future__ import annotations

import random

import pytest

from repro.core.audit import audit
from repro.core.keys import BitKey
from repro.core.records import DataValue
from repro.errors import ProtocolError, RecoveryError
from repro.instrument import COUNTERS
from repro.sim.tuning import LatencyTuner, run_with_budget
from repro.store.faster import FasterKV
from repro.store.recovery import rebuild_index_from_log
from repro.workloads.ycsb import YCSB_A, YcsbGenerator
from tests.conftest import small_fastver


class TestLatencyTuner:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyTuner(0, 1, 100)
        with pytest.raises(ValueError):
            LatencyTuner(1.0, 1, 100, damping=0)

    def test_observe_shrinks_batch_when_over_budget(self):
        from repro.instrument import Counters
        tuner = LatencyTuner(1e-9, 1, 1_000_000, initial_batch=10_000)
        heavy = Counters(multiset_updates=10_000, multiset_hash_bytes=900_000,
                         merkle_hashes=5_000, merkle_hash_bytes=500_000)
        before = tuner.batch
        tuner.observe(heavy)
        assert tuner.batch < before

    def test_observe_grows_batch_when_under_budget(self):
        from repro.instrument import Counters
        tuner = LatencyTuner(10.0, 1, 1_000_000, initial_batch=1_000)
        light = Counters(multiset_updates=10, multiset_hash_bytes=900)
        before = tuner.batch
        tuner.observe(light)
        assert tuner.batch > before

    def test_budget_convergence_end_to_end(self):
        """P3: a client-specified budget is met within a small factor."""
        COUNTERS.reset()
        db, client = small_fastver(n_records=400, n_workers=2,
                                   cache_capacity=64)
        generator = YcsbGenerator(YCSB_A, 400, seed=3)
        target = 2e-4  # 200µs of simulated verification latency
        tuner, metrics = run_with_budget(
            db, client, generator, total_ops=3_000,
            target_latency_s=target, n_workers=2, modeled_db_records=400,
            initial_batch=100)
        # The last few *full* epochs are within 3x of the budget on either
        # side (the final epoch is a partial remainder batch and small).
        tail = [s.latency_s for s in tuner.history[:-1][-3:]]
        assert all(target / 3 <= lat <= target * 3 for lat in tail), tail
        assert metrics.key_ops == 3_000
        db.flush()
        assert client.settled_epoch >= 1


class TestLogScanRecovery:
    def _store(self):
        store = FasterKV(ordered_width=16)
        for i in range(30):
            store.upsert(BitKey.data_key(i, 16), DataValue(b"v%d" % i), aux=i)
        for i in range(10):
            store.upsert(BitKey.data_key(i, 16), DataValue(b"new%d" % i))
        store.delete(BitKey.data_key(5, 16))
        return store

    def test_rebuild_matches_original(self):
        store = self._store()
        store.log.flush_all()
        rebuilt = rebuild_index_from_log(store.log.device,
                                         store.log.tail_address,
                                         ordered_width=16)
        for i in range(30):
            key = BitKey.data_key(i, 16)
            assert (rebuilt.read(key) is None) == (store.read(key) is None)
            if store.read(key) is not None:
                assert rebuilt.read(key)[0] == store.read(key)[0]

    def test_missing_pages_lose_data_quietly(self):
        store = self._store()
        store.log.flush_all()
        victim = store.index.lookup(BitKey.data_key(20, 16))
        del store.log.device._pages[victim]
        rebuilt = rebuild_index_from_log(store.log.device,
                                         store.log.tail_address,
                                         ordered_width=16)
        assert rebuilt.read(BitKey.data_key(20, 16)) is None
        assert rebuilt.read(BitKey.data_key(21, 16)) is not None

    def test_corrupt_page_raises(self):
        store = self._store()
        store.log.flush_all()
        victim = store.index.lookup(BitKey.data_key(20, 16))
        store.log.device._pages[victim] = b"garbage"
        with pytest.raises(RecoveryError):
            rebuild_index_from_log(store.log.device, store.log.tail_address)

    def test_negative_tail_rejected(self):
        with pytest.raises(RecoveryError):
            rebuild_index_from_log(FasterKV().log.device, -1)


class TestAudit:
    def test_fresh_store_is_clean(self):
        db, client = small_fastver()
        report = audit(db)
        assert report.ok, report.violations
        assert report.records > 100  # data + merkle records

    def test_clean_after_random_schedule(self):
        db, client = small_fastver(n_records=120, n_workers=3)
        rng = random.Random(11)
        for step in range(400):
            k = rng.randrange(160)
            if rng.random() < 0.5:
                db.put(client, k, b"s%d" % step, worker=step % 3)
            else:
                db.get(client, k, worker=step % 3)
            if step % 120 == 119:
                db.verify()
        db.flush()
        report = audit(db)
        assert report.ok, report.violations[:5]

    def test_detects_planted_inconsistency(self):
        from repro.core.records import Aux
        db, client = small_fastver()
        db.put(client, 7, b"x")
        db.flush()
        # Sabotage the host's own index (a driver bug, not an attack).
        key = db.data_key(7)
        ts, epoch = db.deferred_index[key]
        db.deferred_index[key] = (ts + 1, epoch)
        report = audit(db)
        assert not report.ok
        assert any("disagrees" in v for v in report.violations)


class TestRebalance:
    def grown_db(self):
        db, client = small_fastver(n_records=64, n_workers=2,
                                   partition_depth=3, cache_capacity=64)
        # Grow one region of the key space heavily.
        for k in range(30_000, 30_120):
            db.put(client, k, b"grown")
        db.verify()
        db.flush()
        return db, client

    def test_rebalance_moves_frontier(self):
        db, client = self.grown_db()
        old = set(db.anchors)
        demoted, promoted = db.rebalance_partitions()
        assert demoted + promoted > 0
        assert set(db.anchors) != old
        assert len(db.anchors) <= 1 << db.config.partition_depth

    def test_store_fully_functional_after_rebalance(self):
        db, client = self.grown_db()
        db.rebalance_partitions()
        report = audit(db)
        assert report.ok, report.violations[:5]
        for k in (0, 40, 30_050):
            assert db.get(client, k).payload is not None
        db.put(client, 30_200, b"post")
        assert db.get(client, 30_200).payload == b"post"
        db.verify()
        db.flush()
        assert client.settled_epoch >= 1

    def test_rebalance_requires_quiescence(self):
        db, client = small_fastver()
        db.put(client, 3, b"x")  # leaves a non-anchor deferred record
        with pytest.raises(ProtocolError):
            db.rebalance_partitions()

    def test_rebalance_noop_without_partitioning(self):
        db, client = small_fastver(partition_depth=None, n_workers=1)
        assert db.rebalance_partitions() == (0, 0)

    def test_flush_caches_empties_lru(self):
        db, client = self.grown_db()
        db.flush_caches()
        for vid, mirror in enumerate(db.mirrors):
            non_pinned = [k for k, e in mirror.entries.items()
                          if e.via != "pinned"]
            assert non_pinned == []
        # And everything still works.
        assert db.get(client, 40).payload is not None
        db.verify()
        db.flush()

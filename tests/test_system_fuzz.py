"""Whole-system fuzzing: the complete feature set under one random walk.

One hypothesis-driven walk mixes everything the library offers — gets,
puts, deletes, scans, epoch closes, cache flushes, partition rebalances,
checkpoints, crash recovery, and hot-record caching — against a dict
model. After every walk: the model matches, the host auditor is clean,
and a final epoch settles for the client.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FastVer, FastVerConfig, new_client
from repro.core.audit import audit
from repro.instrument import COUNTERS

actions = st.one_of(
    st.tuples(st.just("get"), st.integers(0, 79)),
    st.tuples(st.just("put"), st.integers(0, 79),
              st.binary(min_size=1, max_size=6)),
    st.tuples(st.just("delete"), st.integers(0, 79)),
    st.tuples(st.just("scan"), st.integers(0, 79), st.integers(1, 6)),
    st.tuples(st.just("verify")),
    st.tuples(st.just("flush_caches")),
    st.tuples(st.just("rebalance")),
    st.tuples(st.just("checkpoint_recover")),
)


class SystemWalk:
    def __init__(self, hot: bool):
        COUNTERS.reset()
        self.db = FastVer(
            FastVerConfig(key_width=16, n_workers=2, partition_depth=3,
                          cache_capacity=48, cache_hot_records=hot),
            items=[(k, b"v%d" % k) for k in range(50)],
        )
        self.client = new_client(1)
        self.db.register_client(self.client)
        self.model = {k: b"v%d" % k for k in range(50)}
        self.step_no = 0

    def quiesce(self) -> bool:
        """True if only anchors remain deferred (rebalance precondition)."""
        return all(k in self.db.anchors for k in self.db.deferred_index)

    def step(self, action: tuple) -> None:
        db, client, model = self.db, self.client, self.model
        self.step_no += 1
        worker = self.step_no % 2
        kind = action[0]
        if kind == "get":
            got = db.get(client, action[1], worker=worker)
            assert got.payload == model.get(action[1])
        elif kind == "put":
            db.put(client, action[1], action[2], worker=worker)
            model[action[1]] = action[2]
        elif kind == "delete":
            db.put(client, action[1], None, worker=worker)
            model.pop(action[1], None)
        elif kind == "scan":
            got = dict(db.scan(client, action[1], action[2], worker=worker))
            for k, v in got.items():
                assert model.get(k) == v
        elif kind == "verify":
            db.verify()
        elif kind == "flush_caches":
            db.flush_caches()
        elif kind == "rebalance":
            db.verify()
            db.flush()
            if self.quiesce():
                db.rebalance_partitions()
        elif kind == "checkpoint_recover":
            db.verify()
            db.flush()
            ckpt = db.checkpoint()
            db.recover(ckpt)

    def finish(self) -> None:
        self.db.verify()
        self.db.flush()
        report = audit(self.db)
        assert report.ok, report.violations[:5]
        for k, v in self.model.items():
            assert self.db.get(self.client, k).payload == v
        self.db.verify()
        self.db.flush()
        assert self.client.settled_epoch >= 0


class TestSystemFuzz:
    @given(st.lists(actions, max_size=40), st.booleans())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_system_walks(self, walk, hot):
        runner = SystemWalk(hot)
        for action in walk:
            runner.step(action)
        runner.finish()

    def test_directed_kitchen_sink(self):
        """One deterministic walk through every feature in sequence."""
        runner = SystemWalk(hot=True)
        for step in [("put", 1, b"a"), ("get", 1), ("delete", 1),
                     ("get", 1), ("put", 70, b"ins"), ("scan", 0, 5),
                     ("verify",), ("flush_caches",), ("rebalance",),
                     ("put", 70, b"upd"), ("checkpoint_recover",),
                     ("get", 70), ("verify",)]:
            runner.step(step)
        runner.finish()

"""Tests for the sparse Merkle encoding, bulk build, proofs, and the
classic dense baseline (§4.1–4.2, Example 4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.keys import BitKey
from repro.core.records import DataValue, MerkleValue, value_hash
from repro.errors import HashMismatchError, StoreError, StructuralError
from repro.merkle.plain import PlainMerkleStore, PlainMerkleVerifier
from repro.merkle.proofs import generate_proof, verify_proof
from repro.merkle.sparse import (
    ABSENT_NULL,
    ABSENT_SPLIT,
    FOUND,
    build_tree,
    check_invariants,
    lookup,
    merkle_parent_of,
    path_to_root,
)


def dk(i, width=8):
    return BitKey.data_key(i, width)


def build_db(keys, width=8):
    """Build a tree and return (source function, root value, records)."""
    items = sorted((dk(k, width), DataValue(b"v%d" % k)) for k in keys)
    merkle, root = build_tree(items)
    records = dict(items)
    records.update(merkle)

    def source(key):
        return records.get(key)

    return source, root, records


# ---------------------------------------------------------------------------
# Bulk build
# ---------------------------------------------------------------------------
class TestBuildTree:
    def test_empty(self):
        merkle, root = build_tree([])
        assert merkle == {}
        assert root.is_empty

    def test_single_key(self):
        items = [(dk(5), DataValue(b"v"))]
        merkle, root = build_tree(items)
        assert merkle == {}
        ptr = root.pointer(0)  # 5 = 00000101, starts with 0
        assert ptr.key == dk(5)
        assert ptr.hash == value_hash(DataValue(b"v"))

    def test_invariants_hold(self):
        source, root, records = build_db(range(50))
        n = check_invariants(source, root, data_width=8)
        assert n >= 50

    def test_patricia_minimality(self):
        """Internal nodes (non-root) always branch: the record count is at
        most 2*keys - 1 plus the root."""
        source, root, records = build_db(range(64))
        merkle_count = sum(1 for k in records if k.length < 8)
        assert merkle_count <= 63

    def test_requires_sorted_input(self):
        items = [(dk(5), DataValue(b"a")), (dk(1), DataValue(b"b"))]
        with pytest.raises(ValueError):
            build_tree(items)

    def test_requires_distinct_keys(self):
        items = [(dk(1), DataValue(b"a")), (dk(1), DataValue(b"b"))]
        with pytest.raises(ValueError):
            build_tree(items)

    @given(st.sets(st.integers(0, 255), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_invariants_property(self, keys):
        source, root, records = build_db(keys)
        check_invariants(source, root, data_width=8)


# ---------------------------------------------------------------------------
# Navigation
# ---------------------------------------------------------------------------
class TestLookup:
    def test_found(self):
        source, root_value, records = build_db([1, 2, 3, 200])

        def src(key):
            return root_value if key.is_root else source(key)

        result = lookup(src, dk(2))
        assert result.kind == FOUND
        assert result.path[0].is_root
        assert result.terminal == result.path[-1]

    def test_absent_null_side(self):
        source, root_value, records = build_db([1, 2])  # all start with 0

        def src(key):
            return root_value if key.is_root else source(key)

        result = lookup(src, dk(200))  # 11001000: right of root is empty
        assert result.kind == ABSENT_NULL
        assert result.terminal.is_root

    def test_absent_split(self):
        source, root_value, records = build_db([0b00000001, 0b00000010])

        def src(key):
            return root_value if key.is_root else source(key)

        # 0b01000000 shares only the top bit: pointer bypasses it.
        result = lookup(src, dk(0b01000000))
        assert result.kind == ABSENT_SPLIT
        assert result.bypass is not None
        assert not result.bypass.is_ancestor_of(dk(0b01000000))

    def test_missing_record_raises(self):
        def src(key):
            return None

        with pytest.raises(StoreError):
            lookup(src, dk(1))

    def test_parent_and_path(self):
        source, root_value, records = build_db(range(16))

        def src(key):
            return root_value if key.is_root else source(key)

        parent = merkle_parent_of(src, dk(5))
        assert parent.is_proper_ancestor_of(dk(5))
        path = path_to_root(src, dk(5))
        assert path[0].is_root
        assert path[-1] == parent

    def test_path_to_root_of_root(self):
        assert path_to_root(lambda k: None, BitKey.root()) == []


# ---------------------------------------------------------------------------
# Path proofs (Example 4.1)
# ---------------------------------------------------------------------------
class TestPathProofs:
    def _db(self, keys=range(32)):
        source, root_value, records = build_db(keys)

        def src(key):
            return root_value if key.is_root else source(key)

        return src, root_value, records

    def test_present_proof_verifies(self):
        src, root_value, records = self._db()
        proof = generate_proof(src, dk(7))
        assert verify_proof(root_value, proof) == DataValue(b"v7")

    def test_absent_proof_verifies(self):
        src, root_value, records = self._db([1, 2, 3])
        proof = generate_proof(src, dk(200))
        assert verify_proof(root_value, proof) is None

    def test_tampered_leaf_detected(self):
        src, root_value, records = self._db()
        proof = generate_proof(src, dk(7))
        proof.leaf_value = DataValue(b"EVIL")
        with pytest.raises(HashMismatchError):
            verify_proof(root_value, proof)

    def test_tampered_intermediate_detected(self):
        src, root_value, records = self._db()
        proof = generate_proof(src, dk(7))
        if proof.records:
            key, value = proof.records[0]
            # Perturb one pointer hash of an intermediate record.
            side = 0 if value.ptr0 is not None else 1
            ptr = value.pointer(side)
            proof.records[0] = (key, value.with_pointer(
                side, ptr.with_hash(b"\x00" * 32)))
            with pytest.raises((HashMismatchError, StructuralError)):
                verify_proof(root_value, proof)

    def test_wrong_kind_rejected(self):
        src, root_value, records = self._db()
        proof = generate_proof(src, dk(7))
        proof.kind = ABSENT_NULL
        with pytest.raises(StructuralError):
            verify_proof(root_value, proof)

    def test_fake_absence_of_present_key_rejected(self):
        """Host cannot prove a present key absent."""
        src, root_value, records = self._db([1, 2, 3])
        proof = generate_proof(src, dk(2))
        proof.kind = ABSENT_SPLIT
        proof.leaf_value = None
        with pytest.raises(StructuralError):
            verify_proof(root_value, proof)

    @given(st.sets(st.integers(0, 255), min_size=1, max_size=30),
           st.integers(0, 255))
    @settings(max_examples=50, deadline=None)
    def test_proofs_match_model(self, keys, probe):
        src, root_value, records = self._db(keys)
        proof = generate_proof(src, dk(probe))
        result = verify_proof(root_value, proof)
        if probe in keys:
            assert result == DataValue(b"v%d" % probe)
        else:
            assert result is None


# ---------------------------------------------------------------------------
# Dense Merkle baseline (§4.1's classic construction)
# ---------------------------------------------------------------------------
class TestPlainMerkle:
    def test_get_put_roundtrip(self):
        store = PlainMerkleStore(64)
        assert store.get(5) is None
        store.put(5, b"v5")
        assert store.get(5) == b"v5"

    def test_updates_change_root(self):
        store = PlainMerkleStore(16)
        root0 = store.verifier.root_hash
        store.put(3, b"x")
        assert store.verifier.root_hash != root0

    def test_tampered_value_detected(self):
        store = PlainMerkleStore(16)
        store.put(3, b"x")
        store.host._values[3] = b"EVIL"
        store.host.apply_update(3, b"EVIL")  # host recomputes its own hashes
        with pytest.raises(HashMismatchError):
            store.get(3)

    def test_tampered_proof_detected(self):
        store = PlainMerkleStore(16)
        store.put(3, b"x")
        proof = store.host.proof(3)
        proof[0] = b"\x00" * 32
        with pytest.raises(HashMismatchError):
            store.verifier.verify_read(3, b"x", proof)

    def test_stale_read_detected(self):
        store = PlainMerkleStore(16)
        store.put(3, b"old")
        proof_old = store.host.proof(3)
        store.put(3, b"new")
        with pytest.raises(HashMismatchError):
            store.verifier.verify_read(3, b"old", proof_old)

    def test_verifier_update_requires_valid_old(self):
        store = PlainMerkleStore(16)
        store.put(3, b"x")
        verifier = PlainMerkleVerifier(store.verifier.root_hash)
        with pytest.raises(HashMismatchError):
            verifier.apply_update(3, b"WRONG-OLD", b"new", store.host.proof(3))

    def test_bounds(self):
        store = PlainMerkleStore(10)
        with pytest.raises(IndexError):
            store.get(10)
        with pytest.raises(ValueError):
            PlainMerkleStore(0)

    def test_proof_length_is_tree_depth(self):
        store = PlainMerkleStore(64)
        assert len(store.host.proof(0)) == store.host.depth

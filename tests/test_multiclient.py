"""Multi-client integration tests: key isolation, receipts routing,
per-client settlement, and cross-client attack surfaces (§2.1)."""

from __future__ import annotations

import pytest

from repro import new_client
from repro.errors import SignatureError
from tests.conftest import small_fastver


def two_client_db():
    db, alice = small_fastver(n_records=80)
    bob = new_client(2)
    db.register_client(bob)
    return db, alice, bob


class TestMultiClient:
    def test_clients_share_the_database(self):
        db, alice, bob = two_client_db()
        db.put(alice, 7, b"from-alice")
        assert db.get(bob, 7).payload == b"from-alice"
        db.put(bob, 7, b"from-bob")
        assert db.get(alice, 7).payload == b"from-bob"
        db.verify()
        db.flush()

    def test_settlement_is_per_client(self):
        db, alice, bob = two_client_db()
        a = db.put(alice, 1, b"a")
        b = db.put(bob, 2, b"b")
        db.verify()
        db.flush()
        assert alice.settled(a.nonce)
        assert bob.settled(b.nonce)
        assert alice.settled_epoch == bob.settled_epoch == 0

    def test_nonce_spaces_are_independent(self):
        db, alice, bob = two_client_db()
        # Both clients use nonce 1..n independently without collisions.
        for i in range(10):
            db.put(alice, i, b"a%d" % i)
            db.put(bob, i + 40, b"b%d" % i)
        db.verify()
        db.flush()
        assert alice.settled_epoch == 0
        assert bob.settled_epoch == 0

    def test_interleaved_workers_and_clients(self):
        db, alice, bob = two_client_db()
        for i in range(60):
            client = alice if i % 2 == 0 else bob
            db.put(client, i % 30, b"x%d" % i, worker=i % 2)
        for i in range(30):
            assert db.get(alice, i, worker=i % 2).payload is not None
        db.verify()
        db.flush()
        assert alice.settled_epoch == bob.settled_epoch == 0

    def test_one_clients_key_cannot_sign_anothers_put(self):
        """Host swaps client ids on a captured request: the MAC is bound
        to the signing client's key, so validation fails."""
        db, alice, bob = two_client_db()
        bk = db.data_key(7)
        request = alice.make_put(bk, b"alice-authorized")
        with pytest.raises(SignatureError):
            # Host presents alice's tag under bob's identity.
            db._data_op(0, bob, bk, "put", nonce=request.nonce,
                        payload=b"alice-authorized", tag=request.tag)
            db.flush()

    def test_receipts_route_to_correct_client(self):
        db, alice, bob = two_client_db()
        ra = db.get(alice, 5)
        rb = db.get(bob, 6)
        db.verify()
        db.flush()
        assert alice.settled(ra.nonce)
        assert bob.settled(rb.nonce)
        # Cross-checking: bob never saw alice's nonce.
        assert not bob.settled(ra.nonce) or ra.nonce == rb.nonce

    def test_many_clients(self):
        db, alice = small_fastver(n_records=40)
        clients = [alice] + [new_client(i) for i in range(2, 8)]
        for c in clients[1:]:
            db.register_client(c)
        results = []
        for i, c in enumerate(clients):
            results.append((c, db.put(c, i, b"c%d" % i)))
        db.verify()
        db.flush()
        for c, r in results:
            assert c.settled(r.nonce)

"""Client-side hardening units: generation monotonicity, epoch-receipt
(epoch, chain) dedup, and receipt-binding of deduplicated answers.

The common thread: host-owned state (the idempotency table, the wire,
the receipt channel) is never evidence — only enclave-signed receipts
and the client's own monotonic counters are. Every new detector must
also stay silent on honest paths (the tri-state invariant forbids
spurious integrity alarms), so each attack test here has an honest twin.
"""

from __future__ import annotations

import pytest

from repro.backoff import BackoffPolicy
from repro.client import RetryingClient
from repro.errors import ReceiptBindingError, SplitBrainError
from repro.faults import FaultPlan
from repro.server import FastVerServer, ServerConfig
from repro.server.pipeline import ServerResult
from tests.conftest import small_fastver


def served_sdk(**server_kwargs):
    db, client = small_fastver(n_records=60)
    server = FastVerServer(db, ServerConfig(**server_kwargs))
    sdk = RetryingClient(server, client,
                         policy=BackoffPolicy(max_attempts=4,
                                              base_delay=2.0,
                                              max_delay=16.0, seed=3))
    return server, sdk, client


class TestGenerationMonotonicity:
    def test_result_vouching_for_lower_generation_is_split_brain(self):
        server, sdk, client = served_sdk()
        sdk.generation = 2  # adopted a fence from a promoted leader
        stale = ServerResult(b"x", 1, generation=1)
        with pytest.raises(SplitBrainError):
            sdk._vet(stale, "t-unit")

    def test_redirect_to_lower_generation_is_split_brain(self):
        """A deposed primary redirecting us 'forward' to its own, older
        generation must be refused, not adopted."""
        server, sdk, client = served_sdk()
        sdk.generation = 2  # the real leader is at generation 2
        with pytest.raises(SplitBrainError):
            sdk.get(1)  # server.generation == 0 -> fence -> redirect

    def test_equal_and_higher_generations_pass(self):
        server, sdk, client = served_sdk()
        result = sdk.put(5, b"v")
        assert result.generation == sdk.generation == 0
        assert sdk._vet(ServerResult(b"v", 9, generation=7), "t") is not None

    def test_honest_failover_redirect_still_works(self):
        """The regression check must not break the legitimate redirect:
        promotion bumps the generation, the SDK adopts it."""
        server, sdk, client = served_sdk()
        server.attach_standby()
        sdk.put(5, b"before")
        server.maintain()
        server.replication.promote()
        result = sdk.get(5)
        assert result.payload == b"before"
        assert sdk.generation == 1
        assert sdk.redirects == 1


class TestEpochChainDedup:
    def capture_epoch_receipts(self, db, client):
        captured = []
        original = client.accept_epoch

        def spy(receipt):
            captured.append(receipt)
            original(receipt)

        client.accept_epoch = spy
        try:
            db.put(client, 7, b"v")
            db.verify()
            db.flush()
        finally:
            client.accept_epoch = original
        return captured

    def test_replayed_epoch_receipt_is_counted_not_resettled(self):
        db, client = small_fastver(n_records=60)
        captured = self.capture_epoch_receipts(db, client)
        assert captured and client.settled_epoch >= 0
        settled = client.settled_epoch
        for receipt in captured:
            client.accept_epoch(receipt)  # byzantine replay: no raise
        assert client.replayed_epoch_receipts == len(captured)
        assert client.settled_epoch == settled

    def test_receipts_carry_distinct_chain_positions(self):
        db, client = small_fastver(n_records=60)
        first = self.capture_epoch_receipts(db, client)
        second = self.capture_epoch_receipts(db, client)
        chains = [r.chain for r in first + second]
        assert len(set(chains)) == len(chains)
        assert all(c > 0 for c in chains)

    def test_chain_is_mac_bound(self):
        """The host cannot relabel a receipt's chain position to slip it
        past the dedup: chain is inside the MAC."""
        from repro.errors import SignatureError
        db, client = small_fastver(n_records=60)
        [receipt] = self.capture_epoch_receipts(db, client)
        receipt.chain += 1
        with pytest.raises(SignatureError):
            client.accept_epoch(receipt)

    def test_honest_channel_duplicates_stay_silent(self):
        """The benign receipt.duplicate fault delivers identical receipts
        twice; the dedup must absorb them without an alarm and without
        blocking settlement (tri-state: no spurious IntegrityError)."""
        db, client = small_fastver(n_records=60)
        db.receipt_channel.faults = FaultPlan(0, {"receipt.duplicate": 1.0})
        db.put(client, 7, b"v")
        db.verify()
        db.flush()
        assert client.settled_epoch >= 0
        assert db.receipt_channel.duplicated > 0

    def test_recovery_replays_same_chain_and_ops_still_settle(self):
        """Honest crash recovery rolls the verifier's chain counter back
        with the checkpoint; the re-closed epoch's receipt is an exact
        (epoch, chain) duplicate of the pre-crash one. Dedup absorbs it
        and post-recovery operations still settle."""
        db, client = small_fastver(n_records=60)
        db.verify()
        db.flush()
        ckpt = db.checkpoint()
        settled = client.settled_epoch
        db.recover(ckpt)
        result = db.put(client, 7, b"after-recovery")
        db.verify()
        db.flush()
        assert client.settled(result.nonce)
        assert client.settled_epoch >= settled


class TestReceiptBinding:
    def settled_put(self, server, sdk, client, key, payload):
        result = sdk.put(key, payload)
        server.maintain()  # flush receipts + settle the epoch
        assert client.settled(result.nonce)
        return result

    def test_tampered_dedup_answer_is_rejected(self):
        server, sdk, client = served_sdk()
        result = self.settled_put(server, sdk, client, 5, b"the-truth")
        doctored = ServerResult(b"doctored", result.nonce, deduped=True,
                                generation=sdk.generation)
        with pytest.raises(ReceiptBindingError):
            sdk._vet(doctored, "t-unit")

    def test_faithful_dedup_answer_passes(self):
        server, sdk, client = served_sdk()
        result = self.settled_put(server, sdk, client, 5, b"the-truth")
        faithful = ServerResult(b"the-truth", result.nonce, deduped=True,
                                generation=sdk.generation)
        assert sdk._vet(faithful, "t-unit").payload == b"the-truth"

    def test_degraded_reads_are_exempt(self):
        """A degraded cached read is allowed to be stale by contract; the
        binding check must not fire on it."""
        server, sdk, client = served_sdk()
        result = self.settled_put(server, sdk, client, 5, b"the-truth")
        stale = ServerResult(b"older-but-honest", result.nonce,
                             deduped=True, degraded=True,
                             generation=sdk.generation)
        assert sdk._vet(stale, "t-unit").payload == b"older-but-honest"

    def test_unknown_nonce_is_exempt(self):
        """No receipt held (e.g. the receipt itself was dropped on the
        lossy channel) -> nothing to bind against; dedup answers must
        still flow or retries could never resolve."""
        server, sdk, client = served_sdk()
        anon = ServerResult(b"whatever", 999_999, deduped=True,
                            generation=sdk.generation)
        assert sdk._vet(anon, "t-unit").payload == b"whatever"

    def test_end_to_end_wire_loss_retry_is_honest(self):
        """The full honest path the detector sits on: response lost, SDK
        resolves through the idempotency table — no alarm, right value."""
        server, sdk, client = served_sdk()
        server.faults = FaultPlan(0, {"server.wire.response": [0]})
        result = sdk.put(5, b"v-through-retry")
        assert result.payload == b"v-through-retry"
        assert result.deduped
        server.faults = None

"""Unit tests for the verifier thread state machine (§4.3, §5, §6).

Every test here is either an honest protocol exchange that must succeed,
or a byzantine move that must raise — these are the checks the paper's
F* proof certifies, exercised one by one.
"""

from __future__ import annotations

import pytest

from repro.core.epochs import EpochController
from repro.core.keys import BitKey
from repro.core.records import DataValue, MerkleValue, Pointer, value_hash
from repro.core.verifier import VerifierThread
from repro.crypto.multiset import aggregate
from repro.crypto.prf import Prf
from repro.errors import (
    CacheStateError,
    CapacityError,
    EpochError,
    HashMismatchError,
    ParentNotInCacheError,
    StructuralError,
)


def bk(s):
    return BitKey.from_bits_string(s)


def dk(i, width=8):
    return BitKey.data_key(i, width)


@pytest.fixture
def thread():
    """A verifier whose cache holds a root pointing at one data record.

    Tree: root --0--> (key 00000101, value "v5")
    """
    epochs = EpochController()
    t = VerifierThread(0, Prf(b"k" * 32), epochs, cache_capacity=16)
    leaf = dk(5)
    root_value = MerkleValue(Pointer(leaf, value_hash(DataValue(b"v5"))), None)
    t.pin_root(root_value)
    return t


ROOT = BitKey.root()


class TestMerkleAdd:
    def test_honest_add(self, thread):
        slot = thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        assert isinstance(slot, int)
        assert thread.read(dk(5)) == DataValue(b"v5")

    def test_wrong_value_rejected(self, thread):
        with pytest.raises(HashMismatchError):
            thread.add_merkle(dk(5), DataValue(b"EVIL"), ROOT)

    def test_parent_not_cached_rejected(self, thread):
        with pytest.raises(ParentNotInCacheError):
            thread.add_merkle(dk(5), DataValue(b"v5"), bk("0"))

    def test_non_ancestor_parent_rejected(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        # dk(5) = 00000101 is cached; it is no ancestor of dk(6).
        with pytest.raises(StructuralError):
            thread.add_merkle(dk(6), DataValue(b"x"), dk(5))

    def test_phantom_record_rejected(self, thread):
        """Parent's pointer targets dk(5); claiming dk(4) under it lies."""
        with pytest.raises(StructuralError):
            thread.add_merkle(dk(4), DataValue(b"v4"), ROOT)

    def test_duplicate_add_rejected(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        with pytest.raises(CacheStateError):
            thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)

    def test_null_side_rejected(self, thread):
        # Root's 1-side is null: nothing can be *added* there.
        with pytest.raises(StructuralError):
            thread.add_merkle(dk(200), DataValue(b"x"), ROOT)


class TestMerkleEvict:
    def test_evict_updates_parent_hash(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        thread.update(dk(5), DataValue(b"new"))
        thread.evict_merkle(dk(5), ROOT)
        root_value = thread.read(ROOT)
        assert root_value.pointer(0).hash == value_hash(DataValue(b"new"))
        # And the new value is re-addable, the old one is not.
        with pytest.raises(HashMismatchError):
            thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        thread.add_merkle(dk(5), DataValue(b"new"), ROOT)

    def test_evict_requires_cached_record(self, thread):
        with pytest.raises(CacheStateError):
            thread.evict_merkle(dk(5), ROOT)

    def test_evict_requires_cached_parent(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        with pytest.raises(ParentNotInCacheError):
            thread.evict_merkle(dk(5), bk("0"))

    def test_root_cannot_be_evicted(self, thread):
        epochs = EpochController()
        with pytest.raises(CacheStateError):
            thread.evict_deferred(ROOT)

    def test_lazy_updates_do_not_touch_grandparents(self):
        """§4.3.1: evicting a record updates only its immediate parent."""
        epochs = EpochController()
        t = VerifierThread(0, Prf(b"k" * 32), epochs, cache_capacity=16)
        leaf = dk(0b00000101)
        mid = bk("000")
        mid_value = MerkleValue(Pointer(leaf, value_hash(DataValue(b"v"))),
                                Pointer(dk(0b00001000), b"\x01" * 32))
        root_value = MerkleValue(Pointer(mid, value_hash(mid_value)), None)
        t.pin_root(root_value)
        t.add_merkle(mid, mid_value, ROOT)
        t.add_merkle(leaf, DataValue(b"v"), mid)
        t.update(leaf, DataValue(b"w"))
        root_hash_before = t.read(ROOT).pointer(0).hash
        t.evict_merkle(leaf, mid)
        # mid's stored hash for leaf changed; root's hash for mid did NOT.
        assert t.read(mid).pointer(0).hash == value_hash(DataValue(b"w"))
        assert t.read(ROOT).pointer(0).hash == root_hash_before
        # Evicting mid now propagates one more level, restoring coherence.
        t.evict_merkle(mid, ROOT)
        assert t.read(ROOT).pointer(0).hash == value_hash(
            t_read_back := MerkleValue(
                Pointer(leaf, value_hash(DataValue(b"w"))),
                Pointer(dk(0b00001000), b"\x01" * 32)))


class TestDeferred:
    def test_add_evict_roundtrip_balances_sets(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        ts, epoch = thread.evict_deferred(dk(5))
        assert epoch == 0
        thread.add_deferred(dk(5), DataValue(b"v5"), ts, epoch)
        thread.epochs.advance()
        ts2, epoch2 = thread.evict_deferred(dk(5))
        assert ts2 > ts
        thread.add_deferred(dk(5), DataValue(b"v5"), ts2, epoch2)
        thread.epochs.advance()
        thread.evict_deferred(dk(5))
        r0, w0 = thread.take_epoch_hashes(0)
        assert r0 == w0  # epoch 0 perfectly balanced

    def test_lamport_rule_advances_clock(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        thread.evict_deferred(dk(5))
        thread.add_deferred(dk(5), DataValue(b"v5"), 1000, 0)
        assert thread.clock >= 1000
        ts, _ = thread.evict_deferred(dk(5))
        assert ts > 1000

    def test_evict_timestamps_strictly_increase(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        ts1, e = thread.evict_deferred(dk(5))
        thread.add_deferred(dk(5), DataValue(b"v5"), ts1, e)
        ts2, _ = thread.evict_deferred(dk(5))
        assert ts2 > ts1

    def test_add_to_verified_epoch_rejected(self, thread):
        """Record resurrection: presenting an epoch already settled."""
        thread.epochs.advance()
        thread.epochs.mark_verified(0)
        with pytest.raises(EpochError):
            thread.add_deferred(dk(5), DataValue(b"v5"), 1, 0)

    def test_add_to_future_epoch_rejected(self, thread):
        with pytest.raises(EpochError):
            thread.add_deferred(dk(5), DataValue(b"v5"), 1, 99)

    def test_tampered_value_unbalances_sets(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        ts, e = thread.evict_deferred(dk(5))
        # Host presents a forged value at re-add.
        thread.add_deferred(dk(5), DataValue(b"EVIL"), ts, e)
        thread.epochs.advance()
        thread.evict_deferred(dk(5))
        r0, w0 = thread.take_epoch_hashes(0)
        assert r0 != w0

    def test_tampered_timestamp_unbalances_sets(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        ts, e = thread.evict_deferred(dk(5))
        thread.add_deferred(dk(5), DataValue(b"v5"), ts + 7, e)
        thread.epochs.advance()
        thread.evict_deferred(dk(5))
        r0, w0 = thread.take_epoch_hashes(0)
        assert r0 != w0

    def test_cross_thread_migration_balances(self):
        """A record can visit different verifier caches over its lifetime
        (§5.3); aggregation across threads balances the sets."""
        epochs = EpochController()
        prf = Prf(b"k" * 32)
        a = VerifierThread(0, prf, epochs, cache_capacity=8)
        b = VerifierThread(1, prf, epochs, cache_capacity=8)
        leaf = dk(5)
        root_value = MerkleValue(Pointer(leaf, value_hash(DataValue(b"v"))), None)
        a.pin_root(root_value)
        a.add_merkle(leaf, DataValue(b"v"), ROOT)
        ts, e = a.evict_deferred(leaf)
        b.add_deferred(leaf, DataValue(b"v"), ts, e)
        epochs.advance()
        b.evict_deferred(leaf)
        ra, wa = a.take_epoch_hashes(0)
        rb, wb = b.take_epoch_hashes(0)
        assert aggregate([ra, rb]) == aggregate([wa, wb])
        # but individually unbalanced: the record moved between threads
        assert ra != wa

    def test_double_add_detected_by_multiset(self):
        """§5.3 subtlety: presenting one evicted record to two caches must
        unbalance the aggregated sets (this is why the combiner must be
        multiset-secure, not plain XOR)."""
        epochs = EpochController()
        prf = Prf(b"k" * 32)
        a = VerifierThread(0, prf, epochs, cache_capacity=8)
        b = VerifierThread(1, prf, epochs, cache_capacity=8)
        leaf = dk(5)
        root_value = MerkleValue(Pointer(leaf, value_hash(DataValue(b"v"))), None)
        a.pin_root(root_value)
        a.add_merkle(leaf, DataValue(b"v"), ROOT)
        ts, e = a.evict_deferred(leaf)
        # Byzantine host double-spends the single write entry.
        a.add_deferred(leaf, DataValue(b"v"), ts, e)
        b.add_deferred(leaf, DataValue(b"v"), ts, e)
        epochs.advance()
        a.evict_deferred(leaf)
        b.evict_deferred(leaf)
        ra, wa = a.take_epoch_hashes(0)
        rb, wb = b.take_epoch_hashes(0)
        assert aggregate([ra, rb]) != aggregate([wa, wb])


class TestInserts:
    def test_insert_extend(self, thread):
        key = dk(0b10000001)
        thread.insert_extend(key, DataValue(b"new"), ROOT)
        assert thread.read(key) == DataValue(b"new")
        ptr = thread.read(ROOT).pointer(1)
        assert ptr.key == key
        assert ptr.hash == value_hash(DataValue(b"new"))

    def test_insert_extend_nonnull_side_rejected(self, thread):
        with pytest.raises(StructuralError):
            thread.insert_extend(dk(9), DataValue(b"x"), ROOT)

    def test_insert_split(self, thread):
        # dk(5)=00000101 is pointed from root; insert dk(6)=00000110.
        mid, mid_slot, leaf_slot = thread.insert_split(
            dk(6), DataValue(b"v6"), ROOT)
        assert mid == dk(5).lca(dk(6))
        mid_value = thread.read(mid)
        assert mid_value.pointer(dk(5).direction_from(mid)).key == dk(5)
        assert mid_value.pointer(dk(6).direction_from(mid)).key == dk(6)
        assert thread.read(ROOT).pointer(0).key == mid
        assert thread.read(dk(6)) == DataValue(b"v6")

    def test_split_of_existing_key_rejected(self, thread):
        with pytest.raises(StructuralError):
            thread.insert_split(dk(5), DataValue(b"x"), ROOT)

    def test_split_that_hides_subtree_rejected(self):
        """The §6.4 subtlety: if the pointer target is an *ancestor* of the
        new key, splitting would bypass an existing subtree — the verifier
        must force a descent instead."""
        epochs = EpochController()
        t = VerifierThread(0, Prf(b"k" * 32), epochs, cache_capacity=16)
        mid = bk("0000")
        mid_value = MerkleValue(Pointer(dk(1), b"\x01" * 32),
                                Pointer(dk(12), b"\x02" * 32))
        root_value = MerkleValue(Pointer(mid, value_hash(mid_value)), None)
        t.pin_root(root_value)
        # dk(3) = 00000011 lies *under* mid: lca(dk(3), mid) == mid.
        with pytest.raises(StructuralError):
            t.insert_split(dk(3), DataValue(b"x"), ROOT)

    def test_split_null_pointer_rejected(self, thread):
        with pytest.raises(StructuralError):
            thread.insert_split(dk(200), DataValue(b"x"), ROOT)

    def test_inserted_leaf_must_be_data(self, thread):
        with pytest.raises(StructuralError):
            thread.insert_extend(bk("10"), MerkleValue(), ROOT)


class TestAbsence:
    def test_null_side_proves_absence(self, thread):
        thread.check_absent(dk(200), ROOT)  # root 1-side is null

    def test_bypass_proves_absence(self, thread):
        thread.check_absent(dk(9), ROOT)  # pointer targets dk(5), not 9

    def test_present_key_cannot_be_absent(self, thread):
        with pytest.raises(StructuralError):
            thread.check_absent(dk(5), ROOT)

    def test_undecided_absence_rejected(self):
        """If the pointer targets an ancestor of the probed key, the host
        must descend — claiming absence here is premature."""
        epochs = EpochController()
        t = VerifierThread(0, Prf(b"k" * 32), epochs, cache_capacity=16)
        mid = bk("0000")
        root_value = MerkleValue(Pointer(mid, b"\x01" * 32), None)
        t.pin_root(root_value)
        with pytest.raises(StructuralError):
            t.check_absent(dk(3), ROOT)  # dk(3) is under mid


class TestCachedOps:
    def test_update_data_record(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        thread.update(dk(5), DataValue(b"new"))
        assert thread.read(dk(5)) == DataValue(b"new")

    def test_update_merkle_record_rejected(self, thread):
        with pytest.raises(StructuralError):
            thread.update(ROOT, DataValue(b"x"))

    def test_update_with_merkle_value_rejected(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        with pytest.raises(StructuralError):
            thread.update(dk(5), MerkleValue())

    def test_read_uncached_rejected(self, thread):
        with pytest.raises(CacheStateError):
            thread.read(dk(5))

    def test_cache_capacity_enforced(self):
        epochs = EpochController()
        t = VerifierThread(0, Prf(b"k" * 32), epochs, cache_capacity=2)
        t.pin_root(MerkleValue(None, None))
        t.insert_extend(dk(1), DataValue(b"a"), ROOT)
        with pytest.raises(CapacityError):
            t.insert_extend(dk(200), DataValue(b"b"), ROOT)

    def test_refresh_hash(self, thread):
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        thread.update(dk(5), DataValue(b"w"))
        thread.refresh_hash(dk(5), ROOT)
        assert thread.read(ROOT).pointer(0).hash == value_hash(DataValue(b"w"))
        assert thread.read(dk(5)) == DataValue(b"w")  # still cached

    def test_memory_accounting(self, thread):
        before = thread.trusted_memory_bytes()
        thread.add_merkle(dk(5), DataValue(b"v5"), ROOT)
        assert thread.trusted_memory_bytes() > before


class TestEpochController:
    def test_in_order_verification(self):
        ec = EpochController()
        ec.advance()
        ec.mark_verified(0)
        ec.advance()
        ec.mark_verified(1)
        assert ec.verified == 1

    def test_out_of_order_rejected(self):
        ec = EpochController()
        ec.advance()
        ec.advance()
        with pytest.raises(EpochError):
            ec.mark_verified(1)

    def test_cannot_verify_open_epoch(self):
        ec = EpochController()
        with pytest.raises(EpochError):
            ec.mark_verified(0)

    def test_stamp_is_current(self):
        ec = EpochController()
        assert ec.stamp() == 0
        ec.advance()
        assert ec.stamp() == 1

"""Pipelined group commit: streamed settlement across pumps, fence
interaction mid-flight, settlement-queue backpressure and overflow
accounting, the AIMD latency-budget controller, and the pipelined chaos
topology — including the pinned legacy digests proving the synchronous
paths stayed byte-identical.
"""

from __future__ import annotations

import pytest

from repro.errors import NotLeaderError, OverloadError
from repro.instrument import COUNTERS
from repro.obs import TRACER
from repro.server import ServerRequest
from tests.test_batching import batched_setup, envelope

#: Legacy (non-pipelined) chaos digests, pinned: the pipelined refactor
#: must not move a single byte of the synchronous paths' behaviour.
LEGACY_DIGESTS = {
    ("batched", 7, 600, 200):
        "a577d0567dcac45e29a933854bf4766b030c996470a671326f21a3a13cecdcce",
    ("batched_failover", 7, 600, 200):
        "46d5dbbd1320577966e9614a6ed3d0124f533c6d7faed2be306e80594279197c",
    ("batched", 11, 400, 120):
        "f5f91227fbf8a4bbf056ab255c6eac3eb737c6737ba170fd13eb434131d626e3",
}


def pipelined_setup(specs=None, seed=3, n_records=50, standby=False,
                    **cfg_kwargs):
    cfg_kwargs.setdefault("pipeline", True)
    cfg_kwargs.setdefault("max_batch_ops", 4)
    return batched_setup(specs, seed, n_records, standby, **cfg_kwargs)


class TestStreamedSettlement:
    def test_receipts_settle_on_a_later_pump(self):
        db, client, server = pipelined_setup()
        # Even keys share shard 0 (worker % n_workers): one full batch.
        tickets = [server.submit(envelope(server, client, "put", 2 * k,
                                          b"p%d" % k))
                   for k in range(4)]
        server.pump()
        # Dispatched, not settled: the ecall ran (completions recorded)
        # but the receipts stream back on a later pump.
        assert all(not t.done for t in tickets)
        surface = server.health()["batching"]
        assert surface["pipeline"] is True
        assert surface["inflight_batches"] == 1
        assert surface["batches_pipelined"] == 1
        server.pump()  # idle pump delivers the streamed receipts
        assert all(t.done and t.error is None for t in tickets)
        for k, t in enumerate(tickets):
            assert t.result.payload == b"p%d" % k
        settles = TRACER.events(kind="settle")
        assert len(settles) == 4
        assert all(e.detail["pumps"] >= 1 for e in settles)
        db.verify()

    def test_effects_are_truth_at_dispatch(self):
        # The pipelined ecall's effects are durable state the moment it
        # returns — only the *receipt* is deferred. A read through the
        # synchronous handle() path sees the new value even while the
        # put's own ticket is still in flight.
        db, client, server = pipelined_setup()
        inflight = [server.submit(envelope(server, client, "put", 2 * k,
                                           b"w%d" % k))
                    for k in range(4)]
        server.pump()
        assert all(not t.done for t in inflight)
        out = server.handle(envelope(server, client, "get", 0))
        assert out.payload == b"w0"

    def test_handle_drains_the_pipeline(self):
        db, client, server = pipelined_setup()
        out = server.handle(envelope(server, client, "put", 3, b"one-shot"))
        assert out.payload == b"one-shot"

    def test_pipelined_answers_match_synchronous_batched(self):
        db1, client1, server1 = batched_setup(n_records=30)
        db2, client2, server2 = pipelined_setup(n_records=30,
                                                max_batch_ops=8)
        for k in range(20):
            a = server1.handle(envelope(server1, client1, "put", k,
                                        b"m%d" % k))
            b = server2.handle(envelope(server2, client2, "put", k,
                                        b"m%d" % k))
            assert (a.payload, a.degraded, a.deduped) == \
                (b.payload, b.degraded, b.deduped)
        for k in range(20):
            a = server1.handle(envelope(server1, client1, "get", k))
            b = server2.handle(envelope(server2, client2, "get", k))
            assert a.payload == b.payload == b"m%d" % k
        db1.verify()
        db2.verify()

    def test_maintain_never_straddles_inflight(self):
        db, client, server = pipelined_setup()
        tickets = [server.submit(envelope(server, client, "put", 2 * k,
                                          b"s%d" % k))
                   for k in range(4)]
        server.pump()
        assert all(not t.done for t in tickets)
        server.maintain()  # force-settles before the epoch closes
        assert all(t.done and t.error is None for t in tickets)


class TestFenceMidFlight:
    def test_streamed_receipt_for_deposed_generation_is_rejected(self):
        db, client, server = pipelined_setup(standby=True)
        tickets = [server.submit(envelope(server, client, "put", 2 * k,
                                          b"f%d" % k))
                   for k in range(4)]
        server.pump()
        assert all(not t.done for t in tickets)
        # The primary is deposed while the receipts are still streaming:
        # a promotion fences the old generation.
        repl = server.replication
        assert repl.can_promote()
        repl.promote()
        assert server.generation == 1
        server.pump()
        # An honest server refuses to vouch for receipts minted under
        # the fenced generation, even though the ops DID apply.
        for t in tickets:
            assert t.done
            assert isinstance(t.error, NotLeaderError)
            assert "deposed" in str(t.error)
        fences = [e for e in TRACER.events(kind="fence")
                  if e.detail.get("streamed")]
        assert len(fences) == 4

    def test_retry_after_fence_resolves_exactly_once(self):
        db, client, server = pipelined_setup(standby=True)
        first = envelope(server, client, "put", 2, b"exactly-once")
        ticket = server.submit(first)
        # Fill the rest of the shard batch so the flush dispatches.
        for k in range(3):
            server.submit(envelope(server, client, "put", 4 + 2 * k,
                                   b"fill%d" % k))
        server.pump()
        server.replication.promote()
        server.pump()
        assert isinstance(ticket.error, NotLeaderError)
        # The client adopts the fence and retries the same operation
        # (same nonce): the idempotency table survived the promotion, so
        # the retry answers from it instead of re-applying.
        retry = ServerRequest("put", first.op, server.now + 10_000.0,
                              worker=first.worker,
                              generation=server.generation)
        out = server.handle(retry)
        assert out.deduped
        assert out.payload == b"exactly-once"
        assert out.generation == server.generation
        readback = server.handle(envelope(server, client, "get", 2))
        assert readback.payload == b"exactly-once"
        server.db.verify()  # the adopted (promoted) database is live now


class TestSettlementBackpressure:
    def test_overflow_drops_are_counted_never_silent(self):
        db, client, server = pipelined_setup(settlement_capacity=4)
        # All eight admitted while the backlog was empty; the dispatch
        # then pushes the backlog past its bound and the oldest pending
        # receipt observations are dropped with a counter and a trace.
        tickets = [server.submit(envelope(server, client, "put", 2 * k,
                                          b"o%d" % k))
                   for k in range(8)]
        server.pump()
        assert COUNTERS.settlement_overflow == 4
        sheds = [e for e in TRACER.events(kind="shed")
                 if e.detail.get("reason") == "settlement_overflow"]
        assert len(sheds) == 4
        # The requests themselves were unaffected — only their latency
        # observations were lost.
        server.pump()
        assert all(t.done and t.error is None for t in tickets)

    def test_submit_sheds_at_the_settlement_bound(self):
        db, client, server = pipelined_setup(settlement_capacity=4)
        for k in range(8):
            server.submit(envelope(server, client, "put", 2 * k,
                                   b"b%d" % k))
        server.pump()
        with pytest.raises(OverloadError, match="settlement backlog"):
            server.submit(envelope(server, client, "put", 1, b"nope"))
        assert COUNTERS.shed >= 1
        # Closing an epoch settles the backlog and reopens admission.
        server.maintain()
        out = server.handle(envelope(server, client, "put", 1, b"yes"))
        assert out.payload == b"yes"


class TestLatencyBudgetController:
    def test_no_budget_means_no_controller(self):
        db, client, server = pipelined_setup()
        assert server.health()["controller"] is None

    def test_linger_tracks_ops_bound(self):
        db, client, server = pipelined_setup(latency_budget_p99=100.0)
        controller = server._controller
        assert controller is not None
        for shard in range(db.config.n_workers):
            assert controller.linger_limit(shard) == \
                controller.ticks_per_op * controller.batch_limit(shard)

    def test_convergence_under_step_change_in_offered_load(self):
        db, client, server = pipelined_setup(latency_budget_p99=100.0,
                                             max_batch_ops=8,
                                             queue_capacity=256)
        controller = server._controller
        start = controller.batch_limit(0)

        def drive(rounds, wave, maintain_every):
            n = 0
            for r in range(rounds):
                for _ in range(wave):
                    server.submit(envelope(server, client, "put", n % 50,
                                           b"l%d" % n))
                    n += 1
                server.pump()
                if (r + 1) % maintain_every == 0:
                    server.maintain()
            server.maintain()

        # Light offered load: epochs close quickly, the windowed p99
        # sits far under budget, and the controller grows the bounds.
        drive(rounds=10, wave=8, maintain_every=2)
        peak = controller.batch_limit(0)
        assert peak > start
        assert COUNTERS.controller_grows > 0
        assert controller.last_action == "grow"
        # Step change: heavier waves with rarer epoch closes push the
        # windowed p99 over budget and the controller backs off
        # multiplicatively.
        drive(rounds=8, wave=40, maintain_every=4)
        assert COUNTERS.controller_shrinks > 0
        assert controller.batch_limit(0) < peak
        assert controller.last_p99 is not None
        # The control surface is exported for operators.
        snap = server.health()["controller"]
        assert snap["budget_p99"] == 100.0
        assert snap["evaluations"] == controller.evaluations
        assert set(snap["batch_limits"]) == set(range(db.config.n_workers))
        events = TRACER.events(kind="controller")
        assert {e.detail["action"] for e in events} >= {"grow", "shrink"}


class TestPipelinedChaos:
    def test_pipelined_soak_is_deterministic_with_zero_escapes(self):
        from repro.faults.chaos import run_chaos
        a = run_chaos(seed=13, ops=300, records=60, pipelined=True)
        b = run_chaos(seed=13, ops=300, records=60, pipelined=True)
        assert a.ok  # zero tri-state violations (no escapes)
        assert a.pipelined and a.pipelined_batches > 0
        assert a.digest() == b.digest()

    def test_pipelined_failover_soak_holds_the_oracle(self):
        from repro.faults.chaos import run_chaos
        report = run_chaos(seed=7, ops=300, records=60, pipelined=True,
                           failover=True)
        assert report.ok
        assert report.failovers >= 1

    def test_pipelined_mode_changes_the_digest(self):
        from repro.faults.chaos import run_chaos
        sync = run_chaos(seed=13, ops=300, records=60, batched=True)
        piped = run_chaos(seed=13, ops=300, records=60, pipelined=True)
        assert sync.digest() != piped.digest()

    @pytest.mark.parametrize("scenario,digest", sorted(
        LEGACY_DIGESTS.items()), ids=lambda v: str(v))
    def test_legacy_synchronous_digests_are_byte_identical(self, scenario,
                                                           digest):
        from repro.faults.chaos import run_chaos
        mode, seed, ops, records = scenario
        report = run_chaos(seed=seed, ops=ops, records=records,
                           batched=True,
                           failover=(mode == "batched_failover"))
        assert report.digest() == digest


class TestPipelinedBenchShape:
    def test_tiny_pipelined_run_settles_everything(self):
        from repro.bench.batching import _run_one

        sync, _ = _run_one(8, records=60, ops=120, seed=5)
        piped, server = _run_one(8, records=60, ops=120, seed=5,
                                 pipeline=True)
        assert piped["mode"] == "pipelined"
        assert piped["batches_pipelined"] > 0
        assert server.health()["batching"]["inflight_batches"] == 0
        # Same work counted, overlapped wall model: pipelined modeled
        # throughput beats the synchronous row at the same batch bound.
        assert piped["throughput_mops"] > sync["throughput_mops"]

    def test_tiny_adaptive_frontier_point(self):
        from repro.bench.batching import _run_frontier_point

        static = _run_frontier_point(60, 160, 5, batch=4)
        adaptive = _run_frontier_point(60, 160, 5, budget=80.0)
        assert static["mode"] == "static"
        assert adaptive["mode"] == "adaptive"
        assert adaptive["controller"]["evaluations"] > 0
        assert static["epoch_closes"] > 0
        assert static["p99_verified_ticks"] > 0

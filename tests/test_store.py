"""Tests for the FASTER-style store substrate: log, index, epochs, CAS."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.keys import BitKey
from repro.core.records import DataValue, MerkleValue, Pointer
from repro.errors import ProtocolError, StoreError
from repro.store.atomic import ContentionInjector, compare_and_swap_pair
from repro.store.epoch_protection import UNPROTECTED, LightEpoch
from repro.store.faster import FasterKV, KeyDirectory
from repro.store.hashindex import HashIndex
from repro.store.hybridlog import NULL_ADDRESS, HybridLog, LogDevice, LogRecord


def dk(i, width=16):
    return BitKey.data_key(i, width)


# ---------------------------------------------------------------------------
# Epoch protection (FASTER's LightEpoch)
# ---------------------------------------------------------------------------
class TestLightEpoch:
    def test_register_protect(self):
        ep = LightEpoch()
        ep.register(1)
        assert ep.protect(1) == ep.current

    def test_unregistered_thread_rejected(self):
        ep = LightEpoch()
        with pytest.raises(ProtocolError):
            ep.protect(9)

    def test_drain_waits_for_protected_threads(self):
        ep = LightEpoch()
        ep.register(1)
        ep.register(2)
        ep.protect(1)
        ep.protect(2)
        fired = []
        ep.bump(lambda: fired.append("a"))
        assert fired == []          # thread 1 and 2 still in old epoch
        ep.protect(1)               # refresh to new epoch
        assert fired == []          # thread 2 still pinning
        ep.protect(2)
        assert fired == ["a"]

    def test_drain_fires_immediately_when_unprotected(self):
        ep = LightEpoch()
        ep.register(1)
        fired = []
        ep.bump(lambda: fired.append("a"))
        assert fired == ["a"]

    def test_unprotect_releases(self):
        ep = LightEpoch()
        ep.register(1)
        ep.protect(1)
        fired = []
        ep.bump(lambda: fired.append("a"))
        assert fired == []
        ep.unprotect(1)
        assert fired == ["a"]

    def test_unregister_while_protected_rejected(self):
        ep = LightEpoch()
        ep.register(1)
        ep.protect(1)
        with pytest.raises(ProtocolError):
            ep.unregister(1)
        ep.unprotect(1)
        ep.unregister(1)
        assert ep.pending_drains == 0

    def test_safe_epoch_tracks_minimum(self):
        ep = LightEpoch()
        ep.register(1)
        ep.register(2)
        ep.protect(1)
        ep.bump()
        ep.protect(2)
        assert ep.safe_epoch == ep._thread_epochs[1] - 1

    def test_multiple_drains_in_order(self):
        ep = LightEpoch()
        fired = []
        ep.bump(lambda: fired.append(1))
        ep.bump(lambda: fired.append(2))
        assert fired == [1, 2]


# ---------------------------------------------------------------------------
# Hybrid log
# ---------------------------------------------------------------------------
class TestHybridLog:
    def test_append_and_get(self):
        log = HybridLog()
        addr = log.append(LogRecord(dk(1), DataValue(b"v"), 7))
        record = log.get(addr)
        assert record.key == dk(1)
        assert record.value == DataValue(b"v")
        assert record.aux == 7

    def test_addresses_monotone(self):
        log = HybridLog()
        a = log.append(LogRecord(dk(1), DataValue(b"a"), 0))
        b = log.append(LogRecord(dk(2), DataValue(b"b"), 0))
        assert b == a + 1
        assert log.tail_address == b + 1

    def test_unallocated_address_rejected(self):
        log = HybridLog()
        with pytest.raises(StoreError):
            log.get(0)
        with pytest.raises(StoreError):
            log.get(-5)

    def test_in_place_update_in_mutable_region(self):
        log = HybridLog()
        addr = log.append(LogRecord(dk(1), DataValue(b"a"), 0))
        assert log.is_mutable(addr)
        log.update_in_place(addr, DataValue(b"b"), 9)
        assert log.get(addr).value == DataValue(b"b")
        assert log.get(addr).aux == 9

    def test_update_below_read_only_rejected(self):
        log = HybridLog()
        addr = log.append(LogRecord(dk(1), DataValue(b"a"), 0))
        log.read_only_address = addr + 1
        with pytest.raises(StoreError):
            log.update_in_place(addr, DataValue(b"b"), 0)

    def test_flush_and_reread_from_device(self):
        log = HybridLog()
        addr = log.append(LogRecord(dk(5), DataValue(b"payload"), 3,
                                    prev_address=NULL_ADDRESS))
        flushed = log.flush_until(addr + 1)
        assert flushed == 1
        assert not log.in_memory(addr)
        record = log.get(addr)  # re-read through the device
        assert record.value == DataValue(b"payload")
        assert record.aux == 3
        assert log.device.reads >= 1

    def test_memory_budget_spills(self):
        log = HybridLog(memory_budget_records=10)
        for i in range(25):
            log.append(LogRecord(dk(i), DataValue(b"x"), 0))
        assert log.in_memory_count <= 11
        assert len(log.device) >= 14
        # Every record still readable.
        for addr in range(25):
            assert log.get(addr).key == dk(addr)

    def test_serialize_roundtrip_data(self):
        rec = LogRecord(dk(9), DataValue(b"xyz"), 0xDEADBEEF,
                        prev_address=42, tombstone=True)
        got = LogRecord.deserialize(rec.serialize())
        assert (got.key, got.value, got.aux, got.prev_address, got.tombstone) \
            == (rec.key, rec.value, rec.aux, rec.prev_address, rec.tombstone)

    def test_serialize_roundtrip_merkle(self):
        value = MerkleValue(Pointer(dk(3), b"\x11" * 32), None)
        rec = LogRecord(BitKey.from_bits_string("0101"), value, 5)
        got = LogRecord.deserialize(rec.serialize())
        assert got.value == value

    def test_deserialize_rejects_truncation(self):
        rec = LogRecord(dk(1), DataValue(b"v"), 0)
        with pytest.raises(StoreError):
            LogRecord.deserialize(rec.serialize()[:10])

    def test_device_missing_address(self):
        device = LogDevice()
        with pytest.raises(StoreError):
            device.read(7)


# ---------------------------------------------------------------------------
# Hash index
# ---------------------------------------------------------------------------
class TestHashIndex:
    def test_lookup_absent(self):
        assert HashIndex().lookup(dk(1)) == NULL_ADDRESS

    def test_cas_install(self):
        idx = HashIndex()
        assert idx.try_update(dk(1), NULL_ADDRESS, 5)
        assert idx.lookup(dk(1)) == 5

    def test_cas_fails_on_stale_expectation(self):
        idx = HashIndex()
        idx.try_update(dk(1), NULL_ADDRESS, 5)
        assert not idx.try_update(dk(1), NULL_ADDRESS, 9)
        assert idx.lookup(dk(1)) == 5

    def test_snapshot_restore(self):
        idx = HashIndex()
        idx.try_update(dk(1), NULL_ADDRESS, 5)
        snap = idx.snapshot()
        idx.try_update(dk(1), 5, 7)
        idx.restore(snap)
        assert idx.lookup(dk(1)) == 5

    def test_remove(self):
        idx = HashIndex()
        idx.try_update(dk(1), NULL_ADDRESS, 5)
        idx.remove(dk(1))
        assert dk(1) not in idx
        assert len(idx) == 0


# ---------------------------------------------------------------------------
# Atomic pair CAS
# ---------------------------------------------------------------------------
class TestAtomicPair:
    def test_success(self):
        rec = LogRecord(dk(1), DataValue(b"a"), 7)
        assert compare_and_swap_pair(rec, DataValue(b"a"), 7, DataValue(b"b"), 9)
        assert rec.value == DataValue(b"b")
        assert rec.aux == 9

    def test_fails_on_value_mismatch(self):
        rec = LogRecord(dk(1), DataValue(b"a"), 7)
        assert not compare_and_swap_pair(rec, DataValue(b"z"), 7,
                                         DataValue(b"b"), 9)
        assert rec.value == DataValue(b"a")

    def test_fails_on_aux_mismatch(self):
        rec = LogRecord(dk(1), DataValue(b"a"), 7)
        assert not compare_and_swap_pair(rec, DataValue(b"a"), 8,
                                         DataValue(b"b"), 9)

    def test_injected_contention(self):
        rec = LogRecord(dk(1), DataValue(b"a"), 0)
        injector = ContentionInjector(0.999999, seed=1)
        failures = sum(
            not compare_and_swap_pair(rec, DataValue(b"a"), 0,
                                      DataValue(b"a"), 0, injector)
            for _ in range(20)
        )
        assert failures >= 19

    def test_injector_validation(self):
        with pytest.raises(ValueError):
            ContentionInjector(1.5)


# ---------------------------------------------------------------------------
# FasterKV
# ---------------------------------------------------------------------------
class TestFasterKV:
    def test_upsert_read(self):
        store = FasterKV()
        store.upsert(dk(1), DataValue(b"v"), 42)
        assert store.read(dk(1)) == (DataValue(b"v"), 42)

    def test_read_absent(self):
        assert FasterKV().read(dk(1)) is None

    def test_upsert_overwrites_in_place(self):
        store = FasterKV()
        store.upsert(dk(1), DataValue(b"a"))
        tail = store.log.tail_address
        store.upsert(dk(1), DataValue(b"b"), 9)
        assert store.log.tail_address == tail  # in-place, no new version
        assert store.read(dk(1)) == (DataValue(b"b"), 9)

    def test_upsert_below_read_only_copies(self):
        store = FasterKV()
        store.upsert(dk(1), DataValue(b"a"))
        store.log.read_only_address = store.log.tail_address
        store.upsert(dk(1), DataValue(b"b"))
        assert store.read(dk(1))[0] == DataValue(b"b")
        chain = store.validate_chain(dk(1))
        assert len(chain) == 2

    def test_rmw(self):
        store = FasterKV()
        store.upsert(dk(1), DataValue(b"a"), 1)
        value, aux = store.rmw(
            dk(1), lambda v, a: (DataValue(v.payload + b"!"), a + 1))
        assert value == DataValue(b"a!")
        assert aux == 2
        assert store.read(dk(1)) == (DataValue(b"a!"), 2)

    def test_rmw_creates_absent(self):
        store = FasterKV()
        value, aux = store.rmw(dk(1), lambda v, a: (DataValue(b"init"), 5))
        assert value == DataValue(b"init")
        assert store.read(dk(1)) == (DataValue(b"init"), 5)

    def test_delete_tombstones(self):
        store = FasterKV(ordered_width=16)
        store.upsert(dk(1), DataValue(b"a"))
        assert store.delete(dk(1))
        assert store.read(dk(1)) is None
        assert store.read_record(dk(1)).tombstone
        assert not store.delete(dk(2))

    def test_try_cas_pair(self):
        store = FasterKV()
        store.upsert(dk(1), DataValue(b"a"), 7)
        assert store.try_cas(dk(1), DataValue(b"a"), 7, DataValue(b"b"), 8)
        assert not store.try_cas(dk(1), DataValue(b"a"), 7, DataValue(b"c"), 9)
        assert store.read(dk(1)) == (DataValue(b"b"), 8)

    def test_try_cas_absent_key(self):
        assert not FasterKV().try_cas(dk(1), DataValue(b"a"), 0,
                                      DataValue(b"b"), 0)

    def test_try_cas_below_read_only_uses_rcu(self):
        store = FasterKV()
        store.upsert(dk(1), DataValue(b"a"), 7)
        store.log.read_only_address = store.log.tail_address
        assert store.try_cas(dk(1), DataValue(b"a"), 7, DataValue(b"b"), 8)
        assert store.read(dk(1)) == (DataValue(b"b"), 8)

    def test_scan_ordered(self):
        store = FasterKV(ordered_width=16)
        for i in (5, 1, 9, 3):
            store.upsert(dk(i), DataValue(b"v%d" % i))
        got = store.scan_from(dk(2), 2)
        assert [k.bits for k, _, _ in got] == [3, 5]

    def test_scan_skips_merkle_keys(self):
        store = FasterKV(ordered_width=16)
        store.upsert(dk(1), DataValue(b"v"))
        store.upsert(BitKey.from_bits_string("01"), MerkleValue())
        got = store.scan_from(dk(0), 10)
        assert len(got) == 1

    def test_items_enumeration(self):
        store = FasterKV(ordered_width=16)
        for i in range(5):
            store.upsert(dk(i), DataValue(b"v"))
        store.delete(dk(2))
        assert len(list(store.items())) == 4

    def test_len(self):
        store = FasterKV()
        store.upsert(dk(1), DataValue(b"v"))
        assert len(store) == 1


class TestKeyDirectory:
    def test_ordered_range(self):
        d = KeyDirectory()
        for i in (9, 2, 7, 4):
            d.add(dk(i))
        assert [k.bits for k in d.range_from(dk(3), 2)] == [4, 7]

    def test_duplicate_add_idempotent(self):
        d = KeyDirectory()
        d.add(dk(1))
        d.add(dk(1))
        assert len(d) == 1

    def test_remove(self):
        d = KeyDirectory()
        d.add(dk(1))
        d.remove(dk(1))
        d.remove(dk(1))  # idempotent
        assert len(d) == 0
        assert dk(1) not in d

    @given(st.sets(st.integers(0, 1000), max_size=50),
           st.integers(0, 1000), st.integers(0, 10))
    def test_range_matches_sorted_model(self, keys, start, count):
        d = KeyDirectory()
        for k in keys:
            d.add(dk(k))
        expected = [k for k in sorted(keys) if dk(k) >= dk(start)][:count]
        assert [k.bits for k in d.range_from(dk(start), count)] == expected

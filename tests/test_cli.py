"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_demo_detects_tampering(self, capsys):
        assert main(["demo", "--records", "200"]) == 0
        out = capsys.readouterr().out
        assert "detected:" in out
        assert "epoch 0 verified" in out

    def test_ycsb_prints_metrics(self, capsys):
        code = main(["ycsb", "--records", "500", "--ops", "800",
                     "--workers", "2", "--verify-every", "400"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "verification latency" in out
        assert "YCSB-A" in out

    def test_ycsb_workload_selection(self, capsys):
        code = main(["ycsb", "--workload", "C", "--records", "300",
                     "--ops", "300", "--theta", "0"])
        assert code == 0
        assert "YCSB-C" in capsys.readouterr().out

    def test_audit_clean(self, capsys):
        assert main(["audit", "--records", "200", "--ops", "400"]) == 0
        assert "all host invariants hold" in capsys.readouterr().out

    def test_metrics_json_checked(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "METRICS.json"
        code = main(["metrics", "--records", "120", "--ops", "300",
                     "--maintain-every", "100", "--format", "json",
                     "--check", "--out", str(out_path)])
        assert code == 0
        assert "payload check: ok" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro.metrics.v2"
        assert payload["latency"]["verified_latency"]["count"] == 300
        assert payload["attribution"]["consistent"]
        # v2 fields: spool stats, window metadata, exemplars, SLO.
        assert payload["trace"]["spool"]["appended"] > 0
        assert payload["windows"]["verified_latency"]["resets"] > 0
        assert payload["exemplar_digest"]
        assert payload["slo"]["epochs"] > 0
        assert set(payload["slo"]["objectives"]) == {
            "verified_latency_p99", "shed_rate",
            "settlement_overflow", "scrub_quarantine"}

    def test_obs_replay_and_slo_report(self, capsys, tmp_path):
        spool_dir = str(tmp_path / "spool")
        code = main(["chaos", "--seed", "7", "--ops", "400",
                     "--records", "120", "--server", "--obs",
                     "--spool-dir", spool_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace spool" in out and "replay ok" in out
        code = main(["obs", "replay", "--dir", spool_dir, "--existing",
                     "--find-lifecycle", "admit,receipt"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed" in out and "lifecycle trace" in out
        code = main(["obs", "slo-report", "--server", "--seed", "7",
                     "--ops", "400", "--records", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "slo report" in out and "exemplars retained" in out

    def test_metrics_text_report(self, capsys):
        code = main(["metrics", "--records", "120", "--ops", "200",
                     "--maintain-every", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified_latency" in out
        assert "cost attribution" in out
        assert "crossings" in out

    def test_trace_find_lifecycle(self, capsys):
        code = main(["trace", "--batched", "--failover", "--seed", "7",
                     "--ops", "600", "--records", "200",
                     "--find-lifecycle",
                     "admit,stage,flush,fence,retry,receipt"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lifecycle trace" in out
        assert "fence" in out and "retry" in out and "receipt" in out

    def test_trace_filter_no_match_fails(self, capsys):
        code = main(["trace", "--ops", "50", "--records", "50",
                     "--kind", "promote"])
        assert code == 1
        assert "no events matched" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_demo_detects_tampering(self, capsys):
        assert main(["demo", "--records", "200"]) == 0
        out = capsys.readouterr().out
        assert "detected:" in out
        assert "epoch 0 verified" in out

    def test_ycsb_prints_metrics(self, capsys):
        code = main(["ycsb", "--records", "500", "--ops", "800",
                     "--workers", "2", "--verify-every", "400"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "verification latency" in out
        assert "YCSB-A" in out

    def test_ycsb_workload_selection(self, capsys):
        code = main(["ycsb", "--workload", "C", "--records", "300",
                     "--ops", "300", "--theta", "0"])
        assert code == 0
        assert "YCSB-C" in capsys.readouterr().out

    def test_audit_clean(self, capsys):
        assert main(["audit", "--records", "200", "--ops", "400"]) == 0
        assert "all host invariants hold" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

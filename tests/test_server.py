"""Serving-layer tests: backoff, admission, deadlines, idempotent retry,
circuit breaker, watchdog, degraded mode, heal/replay, and salvage.

The server runs on a simulated tick clock, so every scenario here —
including breaker cooldowns and supervisor pacing — is deterministic.
"""

from __future__ import annotations

import pytest

from repro.backoff import BackoffPolicy
from repro.client import RetryingClient
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    DegradedModeError,
    EnclaveUnavailableError,
    IntegrityError,
    OverloadError,
    RetriesExhaustedError,
    WireDropError,
)
from repro.faults import FaultPlan, install_faults
from repro.instrument import COUNTERS
from repro.server import CircuitBreaker, FastVerServer, ServerConfig, ServerRequest
from tests.conftest import small_fastver


def server_setup(specs=None, seed=0, n_records=100, **cfg_kwargs):
    """A checkpointed FastVer fronted by a warm server (+ optional plan)."""
    db, client = small_fastver(n_records=n_records)
    db.verify()
    db.flush()
    db.checkpoint()
    warm = [(k, b"v%d" % k) for k in range(n_records)]
    server = FastVerServer(db, ServerConfig(**cfg_kwargs), warm=warm)
    if specs is not None:
        install_faults(db, FaultPlan(seed, specs))
    return db, client, server


def envelope(server, client, kind, key, payload=None, deadline=None):
    bk = server.bitkey(key)
    op = client.make_get(bk) if kind == "get" else client.make_put(bk, payload)
    if deadline is None:
        deadline = server.now + 1000.0
    return ServerRequest(kind, op, deadline)


class TestBackoffPolicy:
    def test_same_seed_same_schedule(self):
        a = list(BackoffPolicy(max_attempts=6, seed=5).delays())
        b = list(BackoffPolicy(max_attempts=6, seed=5).delays())
        assert a == b
        assert a[0] == 0.0

    def test_different_seeds_diverge(self):
        a = list(BackoffPolicy(max_attempts=6, seed=1).delays())
        b = list(BackoffPolicy(max_attempts=6, seed=2).delays())
        assert a != b

    def test_delays_respect_cap_and_budget(self):
        policy = BackoffPolicy(max_attempts=10, base_delay=1.0,
                               max_delay=5.0, seed=0)
        delays = list(policy.delays())
        assert len(delays) == 10
        assert all(0.0 <= d <= 5.0 for d in delays)

    def test_no_jitter_is_exact_exponential(self):
        policy = BackoffPolicy(max_attempts=5, base_delay=1.0,
                               max_delay=64.0, jitter="none")
        assert list(policy.delays()) == [0.0, 1.0, 2.0, 4.0, 8.0]

    def test_run_retries_then_reraises_last(self):
        calls = []

        def flaky():
            calls.append(1)
            raise ValueError(f"attempt {len(calls)}")

        policy = BackoffPolicy(max_attempts=3, seed=0)
        with pytest.raises(ValueError, match="attempt 3"):
            policy.run(flaky, retry_on=(ValueError,))
        assert len(calls) == 3

    def test_run_no_retry_short_circuits(self):
        calls = []

        def fatal():
            calls.append(1)
            raise KeyError("fatal")

        policy = BackoffPolicy(max_attempts=5, seed=0)
        with pytest.raises(KeyError):
            policy.run(fatal, retry_on=(LookupError,), no_retry=(KeyError,))
        assert len(calls) == 1

    def test_sleep_couples_to_clock(self):
        ticks = []
        policy = BackoffPolicy(max_attempts=4, jitter="none",
                               sleep_fn=ticks.append)
        for d in policy.delays():
            policy.sleep(d)
        assert ticks == [1.0, 2.0, 4.0]
        assert policy.total_delay == 7.0

    def test_configurable_ecall_budget(self):
        """Satellite: the bounded ecall retry takes its budget from the
        config's BackoffPolicy — two transient faults beat a 2-attempt
        budget but not the default 4-attempt one."""
        db, client = small_fastver(
            ecall_backoff=BackoffPolicy(max_attempts=2, base_delay=0.1))
        install_faults(db, FaultPlan(0, {"ecall.transient": [0, 1]}))
        with pytest.raises(EnclaveUnavailableError):
            db.verify()

        db2, client2 = small_fastver()  # default: 4 attempts
        install_faults(db2, FaultPlan(0, {"ecall.transient": [0, 1]}))
        db2.verify()
        assert COUNTERS.ecall_retries >= 2


class TestCircuitBreaker:
    def test_threshold_trips_and_cooldown_probes(self):
        b = CircuitBreaker(threshold=2, cooldown=10.0)
        assert b.allow(0.0)
        b.record_failure(0.0)
        assert b.state == "closed"
        b.record_failure(1.0)
        assert b.state == "open" and b.trips == 1
        assert not b.allow(5.0)          # cooling down
        assert b.allow(11.0)             # half-open probe admitted
        assert b.probes == 1
        assert not b.allow(11.5)         # only one probe in flight

    def test_probe_failure_reopens_probe_success_closes(self):
        b = CircuitBreaker(threshold=1, cooldown=5.0)
        b.record_failure(0.0)
        assert b.allow(6.0)              # probe
        b.record_failure(6.0)            # probe failed
        assert b.state == "open" and b.trips == 2
        assert b.allow(12.0)             # second probe
        b.record_success()
        assert b.state == "closed"
        assert b.allow(12.0)

    def test_denied_requests_counted(self):
        b = CircuitBreaker(threshold=1, cooldown=100.0)
        b.record_failure(0.0)
        before = COUNTERS.broken
        assert not b.allow(1.0)
        assert not b.allow(2.0)
        assert COUNTERS.broken == before + 2


class TestAdmissionAndDeadlines:
    def test_queue_bound_sheds_typed(self):
        db, client, server = server_setup(queue_capacity=2)
        server.submit(envelope(server, client, "get", 1))
        server.submit(envelope(server, client, "get", 2))
        with pytest.raises(OverloadError):
            server.submit(envelope(server, client, "get", 3))
        assert COUNTERS.shed == 1
        assert COUNTERS.admitted == 2
        assert server.pump() == 2

    def test_shed_fault_point(self):
        db, client, server = server_setup({"server.queue.shed": [0]})
        with pytest.raises(OverloadError):
            server.handle(envelope(server, client, "get", 1))
        # Not admitted, not applied; the next attempt sails through.
        result = server.handle(envelope(server, client, "get", 1))
        assert result.payload == b"v1"

    def test_expired_deadline_is_typed_and_not_applied(self):
        db, client, server = server_setup()
        request = envelope(server, client, "put", 5, b"late",
                           deadline=server.now)  # expires as the pump ticks
        with pytest.raises(DeadlineExceededError):
            server.handle(request)
        assert COUNTERS.deadline_expired == 1
        assert server.handle(envelope(server, client, "get", 5)).payload == b"v5"
        # Provably not applied: the idempotency table never saw it.
        assert server.query(client.client_id, request.nonce)[0] == "unknown"

    def test_health_and_ready_probes(self):
        db, client, server = server_setup()
        assert server.ready()
        health = server.health()
        assert health["mode"] == "normal"
        assert health["enclave"]["alive"] and health["enclave"]["loaded"]
        db.enclave.teardown()
        assert not server.ready()


class TestIdempotentRetry:
    def test_request_wire_drop_never_admitted(self):
        db, client, server = server_setup({"server.wire.request": [0]})
        request = envelope(server, client, "put", 3, b"once")
        with pytest.raises(WireDropError):
            server.handle(request)
        assert COUNTERS.wire_drops == 1
        assert server.query(client.client_id, request.nonce)[0] == "unknown"

    def test_response_wire_drop_deduped_not_reapplied(self):
        db, client, server = server_setup({"server.wire.response": [0]})
        request = envelope(server, client, "put", 3, b"once")
        with pytest.raises(WireDropError):
            server.handle(request)  # applied; the response was lost
        status, recorded = server.query(client.client_id, request.nonce)
        assert status == "done" and recorded.payload == b"once"
        retry = server.handle(request)
        assert retry.deduped and retry.payload == b"once"
        assert server.handle(envelope(server, client, "get", 3)).payload == b"once"

    def test_sdk_retries_through_response_drop(self):
        db, client, server = server_setup({"server.wire.response": [0]})
        sdk = RetryingClient(server, client)
        result = sdk.put(3, b"exactly-once")
        assert result.payload == b"exactly-once"
        assert result.deduped  # answered from the idempotency table
        assert COUNTERS.wire_drops == 1
        assert server.handle(envelope(server, client, "get", 3)).payload \
            == b"exactly-once"

    def test_sdk_retries_through_request_drops(self):
        db, client, server = server_setup(
            {"server.wire.request": [0, 1]})  # first two sends vanish
        sdk = RetryingClient(server, client)
        result = sdk.put(3, b"third-time")
        assert result.payload == b"third-time"
        assert COUNTERS.retried >= 2
        assert COUNTERS.admitted == 1  # only the surviving send was admitted

    def test_sdk_gives_up_definitively_under_total_overload(self):
        db, client, server = server_setup({"server.queue.shed": 1.0})
        sdk = RetryingClient(server, client)
        with pytest.raises(RetriesExhaustedError):
            sdk.put(3, b"never")
        assert sdk.gave_up == 1
        install_faults(db, None)
        assert server.handle(envelope(server, client, "get", 3)).payload == b"v3"

    def test_sdk_never_retries_integrity_errors(self):
        from repro.adversary.host import tamper_value

        db, client, server = server_setup()
        sdk = RetryingClient(server, client)
        sdk.put(7, b"target")
        tamper_value(db, 7)
        with pytest.raises(IntegrityError):
            sdk.get(7)
            server.maintain()  # detection settles at epoch close
        assert COUNTERS.retried == 0


class TestBreakerInPipeline:
    def test_forced_open_serves_cached_reads_fails_writes(self):
        """Acceptance criterion: breaker forced open -> reads still served
        from the verified cache (marked degraded), writes fail fast."""
        db, client, server = server_setup({"server.breaker.trip": [0]})
        result = server.handle(envelope(server, client, "get", 4))
        assert result.degraded and result.payload == b"v4"
        assert server.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            server.handle(envelope(server, client, "put", 4, b"x"))
        with pytest.raises(CircuitOpenError):
            # A key outside the cache cannot be served while open.
            server.handle(envelope(server, client, "get", 10_000))
        assert not server.ready()

    def test_cooldown_probe_closes_breaker(self):
        db, client, server = server_setup({"server.breaker.trip": [0]},
                                          breaker_cooldown=10.0)
        assert server.handle(envelope(server, client, "get", 4)).degraded
        server.advance(10.0)
        probe = server.handle(envelope(server, client, "put", 4, b"probe"))
        assert not probe.degraded
        assert server.breaker.state == "closed"
        fresh = server.handle(envelope(server, client, "get", 4))
        assert not fresh.degraded and fresh.payload == b"probe"


class TestWatchdogAndDegradedMode:
    def test_watchdog_heals_out_of_band_reboot(self):
        db, client, server = server_setup()
        server.handle(envelope(server, client, "put", 2, b"provisional"))
        db.enclave.reboot()  # out of band: no operation observed it
        result = server.handle(envelope(server, client, "get", 2))
        # Healed, and the un-checkpointed put correctly rolled back.
        assert server.supervisor.heals == 1
        assert not result.degraded
        assert result.payload == b"v2"
        assert COUNTERS.recovered == 1

    def test_degraded_writes_queue_then_replay(self):
        db, client, server = server_setup(
            {"server.supervisor.stall": [0, 1, 2, 3]})  # first session dies
        db.enclave.reboot()
        request = envelope(server, client, "put", 9, b"queued")
        with pytest.raises(DegradedModeError):
            server.handle(request)
        assert server.degraded
        assert server.query(client.client_id, request.nonce)[0] == "pending"
        # Next touch starts a new heal session; the stall budget is spent,
        # so it recovers and replays the queued write idempotently.
        result = server.handle(request)
        assert result.deduped and result.payload == b"queued"
        assert not server.degraded
        assert server.replayed_writes == 1
        assert server.handle(envelope(server, client, "get", 9)).payload == b"queued"

    def test_degraded_reads_serve_committed_tier(self):
        db, client, server = server_setup(
            {"server.supervisor.stall": [0, 1, 2, 3]})
        server.handle(envelope(server, client, "put", 6, b"provisional"))
        db.enclave.reboot()
        result = server.handle(envelope(server, client, "get", 6))
        # Still degraded (heal stalled), so the read comes from the durable
        # tier: the checkpointed v6, not the rolled-back provisional write.
        assert server.degraded
        assert result.degraded and result.payload == b"v6"
        assert COUNTERS.degraded >= 1

    def test_cancel_unqueues_a_degraded_write_for_good(self):
        db, client, server = server_setup(
            {"server.supervisor.stall": [0, 1, 2, 3]})
        db.enclave.reboot()
        request = envelope(server, client, "put", 9, b"abandoned")
        with pytest.raises(DegradedModeError):
            server.handle(request)
        assert server.cancel(client.client_id, request.nonce) is None
        # Heal succeeds on the next touch; the cancelled write must NOT
        # have been replayed.
        assert server.handle(envelope(server, client, "get", 9)).payload == b"v9"
        assert server.replayed_writes == 0

    def test_maintain_refuses_while_degraded_heals_first(self):
        db, client, server = server_setup(
            {"server.supervisor.stall": [0, 1, 2, 3, 4, 5, 6, 7]})
        db.enclave.reboot()
        with pytest.raises(DegradedModeError):
            server.handle(envelope(server, client, "get", 10_000))  # uncached
        assert server.degraded
        with pytest.raises(DegradedModeError):
            server.maintain()  # stalled heal: refuses to checkpoint
        server.maintain()  # stall budget spent: heals, then checkpoints
        assert not server.degraded


class TestDurabilityAcrossHeals:
    def test_maintain_promotes_completions_and_reads(self):
        db, client, server = server_setup()
        request = envelope(server, client, "put", 11, b"durable")
        server.handle(request)
        server.maintain()
        db.enclave.reboot()
        result = server.handle(envelope(server, client, "get", 11))
        assert server.supervisor.heals == 1
        assert result.payload == b"durable"  # checkpointed, so it survived
        # The idempotency entry was durable too: a very late retry still
        # gets the recorded answer instead of a re-execution.
        status, recorded = server.query(client.client_id, request.nonce)
        assert status == "done" and recorded.payload == b"durable"

    def test_rollback_drops_non_durable_completions(self):
        db, client, server = server_setup()
        request = envelope(server, client, "put", 11, b"provisional")
        server.handle(request)
        db.enclave.reboot()
        server.handle(envelope(server, client, "get", 1))  # triggers heal
        assert server.query(client.client_id, request.nonce)[0] == "unknown"


class TestSalvageFallback:
    def _damaged_checkpoint_server(self):
        db, client = small_fastver()
        db.verify()
        db.flush()
        install_faults(db, FaultPlan(0, {"checkpoint.blob.truncate": [0]}))
        db.checkpoint()  # the recovery point is silently damaged
        hook_calls = []

        def hook(items):
            hook_calls.append(len(items))
            return items

        server = FastVerServer(db, ServerConfig(), salvage_hook=hook,
                               warm=[(k, b"v%d" % k) for k in range(100)])
        return db, client, server, hook_calls

    def test_heal_falls_back_to_lenient_salvage(self):
        db, client, server, hook_calls = self._damaged_checkpoint_server()
        db.enclave.reboot()
        result = server.handle(envelope(server, client, "get", 12))
        assert result.payload == b"v12"
        assert server.supervisor.salvages == 1
        assert server.supervisor.heals == 1
        assert hook_calls and hook_calls[0] > 0
        assert server.db is not db  # re-provisioned over the survivors
        # Satellite regression: the post-salvage checkpoint cleared the
        # quarantine list — recovery now goes through the fresh token.
        assert server.db.store.quarantined_addresses == []
        # Full service is back: writes verify end to end.
        server.handle(envelope(server, client, "put", 12, b"post-salvage"))
        server.maintain()
        assert server.handle(
            envelope(server, client, "get", 12)).payload == b"post-salvage"

"""Replication tests: authenticated log shipping, warm-standby sync,
verified failover, epoch fencing, client redirects, the recovery-ladder
escalation, and the failover RTO benchmark.

Everything runs on the simulated tick clock and seeded fault plans, so
every scenario — including the kill-primary-mid-epoch ones — is
deterministic.
"""

from __future__ import annotations

import pytest

from repro.backoff import BackoffPolicy
from repro.client import RetryingClient
from repro.core.protocol import OpReceipt
from repro.errors import (
    AvailabilityError,
    IntegrityError,
    NotLeaderError,
    ProtocolError,
    RecoveryError,
    UnrecoverableError,
)
from repro.faults import FaultPlan, install_faults
from repro.faults.plan import FaultSpec
from repro.instrument import COUNTERS, Counters
from repro.replication import ReplicationManager
from repro.replication.manager import ReplicationConfig
from repro.server import FastVerServer, ServerConfig, ServerRequest
from tests.conftest import small_fastver


def repl_setup(n_records=60, specs=None, seed=0, repl_config=None,
               **cfg_kwargs):
    """A checkpointed FastVer fronted by a server with a warm standby.

    The standby bootstraps clean; the fault plan (if any) is armed after,
    mirroring the chaos harness's provisioning order."""
    db, client = small_fastver(n_records=n_records)
    db.verify()
    db.flush()
    db.checkpoint()
    warm = [(k, b"v%d" % k) for k in range(n_records)]
    server = FastVerServer(db, ServerConfig(**cfg_kwargs), warm=warm)
    repl = server.attach_standby(config=repl_config)
    if specs is not None:
        install_faults(db, FaultPlan(seed, specs))
    return db, client, server, repl


def envelope(server, client, kind, key, payload=None, generation=None):
    bk = server.bitkey(key)
    op = client.make_get(bk) if kind == "get" else client.make_put(bk, payload)
    gen = server.generation if generation is None else generation
    return ServerRequest(kind, op, server.now + 1000.0, worker=bk.bits,
                         generation=gen)


def sdk_for(server, client, seed=0):
    return RetryingClient(server, client,
                          policy=BackoffPolicy(max_attempts=5, base_delay=2.0,
                                               max_delay=16.0, seed=seed))


# ======================================================================
# Log shipping
# ======================================================================
class TestLogShipping:
    def test_puts_reach_standby(self):
        db, client, server, repl = repl_setup()
        for k in range(5):
            server.handle(envelope(server, client, "put", k, b"ship%d" % k))
        assert repl.lag() == 0
        assert repl.standby.applied_entries >= 5
        snapshot = dict(repl.standby.db.items_snapshot())
        for k in range(5):
            assert snapshot[k] == b"ship%d" % k

    def test_epoch_marker_advances_standby_floor(self):
        db, client, server, repl = repl_setup()
        server.handle(envelope(server, client, "put", 1, b"x"))
        before = repl.standby.db.current_epoch
        server.maintain()
        assert repl.standby.applied_epochs >= 1
        assert repl.standby.db.current_epoch > before
        # The standby checkpoints at each epoch marker: its sealed
        # anti-replay floor advances in step with the primary's.
        assert repl.standby.db.last_checkpoint is not None

    def test_corrupt_shipment_rejected_then_retransmitted(self):
        db, client, server, repl = repl_setup(
            specs={"repl.ship.corrupt": FaultSpec(at_counts=(0,))})
        server.handle(envelope(server, client, "put", 3, b"precious"))
        # First delivery was corrupted in transit: the standby's enclave
        # rejected it (MAC over the body digest) without state change.
        assert repl.rejects == 1
        # The canonical copy retransmits on a later pump.
        server.pump()
        assert repl.lag() == 0
        assert dict(repl.standby.db.items_snapshot())[3] == b"precious"

    def test_dropped_shipment_retransmitted(self):
        db, client, server, repl = repl_setup(
            specs={"repl.ship.drop": FaultSpec(at_counts=(0,))})
        server.handle(envelope(server, client, "put", 4, b"lossy"))
        assert repl.lag() > 0  # still in the unacked buffer
        server.pump()
        assert repl.lag() == 0
        assert dict(repl.standby.db.items_snapshot())[4] == b"lossy"

    def test_lag_fault_grows_backlog_and_counter(self):
        COUNTERS.reset()
        db, client, server, repl = repl_setup(
            specs={"repl.standby.lag": 1.0})
        for k in range(4):
            server.handle(envelope(server, client, "put", k, b"l%d" % k))
        assert repl.lag() > 0
        assert repl.lag_max > 0
        assert COUNTERS.replication_lag_max >= repl.lag_max


class TestChannelAuthentication:
    """The enclave-side shipment checks: the host can delay, never forge."""

    def _pair(self):
        db, _ = small_fastver(n_records=4)
        other, _ = small_fastver(n_records=4)
        key = b"k" * 32
        db._ecall("repl_set_key", key)
        other._ecall("repl_set_key", key)
        return db, other

    def test_in_order_chain_is_admitted(self):
        primary, standby = self._pair()
        chain = b"\x00" * 32
        for seq, digest in enumerate([b"a" * 32, b"b" * 32]):
            tag = primary._ecall("repl_sign", seq, chain, digest)
            standby._ecall("repl_admit", seq, chain, digest, tag)
            chain = digest

    def test_reordered_sequence_rejected(self):
        primary, standby = self._pair()
        tag = primary._ecall("repl_sign", 1, b"\x01" * 32, b"b" * 32)
        with pytest.raises(IntegrityError):
            standby._ecall("repl_admit", 1, b"\x01" * 32, b"b" * 32, tag)

    def test_replayed_shipment_rejected(self):
        primary, standby = self._pair()
        digest = b"a" * 32
        tag = primary._ecall("repl_sign", 0, b"\x00" * 32, digest)
        standby._ecall("repl_admit", 0, b"\x00" * 32, digest, tag)
        with pytest.raises(IntegrityError):
            standby._ecall("repl_admit", 0, b"\x00" * 32, digest, tag)

    def test_spliced_chain_rejected(self):
        primary, standby = self._pair()
        tag = primary._ecall("repl_sign", 0, b"\x00" * 32, b"a" * 32)
        standby._ecall("repl_admit", 0, b"\x00" * 32, b"a" * 32, tag)
        # Sequence 1 naming the wrong predecessor digest: truncation/splice.
        tag = primary._ecall("repl_sign", 1, b"\x07" * 32, b"b" * 32)
        with pytest.raises(IntegrityError):
            standby._ecall("repl_admit", 1, b"\x07" * 32, b"b" * 32, tag)

    def test_forged_tag_rejected(self):
        _, standby = self._pair()
        with pytest.raises(IntegrityError):
            standby._ecall("repl_admit", 0, b"\x00" * 32, b"a" * 32,
                           b"\x00" * 32)


# ======================================================================
# Failover
# ======================================================================
class TestFailover:
    def test_promotion_preserves_acked_writes_including_unshipped_tail(self):
        # A permanent lag spike keeps shipments from being admitted, so
        # acknowledged writes pile up in the shipper — the exact tail the
        # supervisor must drain through the authenticated handoff.
        db, client, server, repl = repl_setup(
            specs={"repl.standby.lag": 1.0})
        for k in range(6):
            server.handle(envelope(server, client, "put", k, b"acked%d" % k))
        assert repl.lag() > 0
        db.enclave.teardown()
        assert server.force_heal()
        assert server.generation == 1
        assert server.supervisor.failovers == 1
        for k in range(6):
            result = server.handle(envelope(server, client, "get", k))
            assert result.payload == b"acked%d" % k

    def test_fence_rejects_stale_receipts_from_deposed_verifier(self):
        db, client, server, repl = repl_setup()
        result = server.handle(envelope(server, client, "put", 2, b"old"))
        stale_nonce = result.nonce
        db.enclave.teardown()
        assert server.force_heal()
        _, fence = server.leader_info(client.client_id)
        client.accept_fence(fence)
        assert client.fence_epoch > 0
        # The deposed enclave held the client's MAC key, so a stale or
        # split-brain primary *can* sign receipts — but only for epochs
        # below the fence. Forge the strongest one it could produce.
        stale = OpReceipt(client.client_id, b"PUT", server.bitkey(2),
                          b"split-brain", stale_nonce,
                          client.fence_epoch - 1, b"")
        stale.tag = client.key.sign(*stale.mac_fields())
        before = client.fenced_receipts
        client.accept(stale)  # dropped, not raised: counted as evidence
        assert client.fenced_receipts == before + 1
        assert not client.settled(stale_nonce) or True  # never pended
        assert stale_nonce not in client._pending

    def test_stale_generation_gets_typed_redirect(self):
        db, client, server, repl = repl_setup()
        db.enclave.teardown()
        assert server.force_heal()
        with pytest.raises(NotLeaderError):
            server.handle(envelope(server, client, "get", 1, generation=0))
        generation, fence = server.leader_info(client.client_id)
        assert generation == 1
        assert fence is not None and fence.generation == 1

    def test_stale_generation_still_dedups_recorded_completion(self):
        db, client, server, repl = repl_setup()
        request = envelope(server, client, "put", 9, b"landed")
        server.handle(request)
        db.enclave.teardown()
        assert server.force_heal()
        # The retry of an op that DID land answers from the idempotency
        # table even though its generation is stale — that is what makes
        # the straddling retry exactly-once instead of NotLeader-looping.
        result = server.handle(request)
        assert result.deduped and result.payload == b"landed"

    def test_sdk_follows_redirect_and_adopts_fence(self):
        db, client, server, repl = repl_setup()
        sdk = sdk_for(server, client)
        sdk.put(5, b"before")
        db.enclave.teardown()
        assert server.force_heal()  # detection + promotion
        # The SDK still believes generation 0: its next op earns the
        # typed redirect, adopts the fence, and retries transparently.
        assert sdk.put(6, b"after").payload == b"after"
        assert sdk.redirects >= 1
        assert sdk.generation == server.generation == 1
        assert client.fence_epoch > 0
        assert sdk.get(5).payload == b"before"
        assert sdk.get(6).payload == b"after"

    def test_retry_straddling_failover_resolves_exactly_once(self):
        # The ambiguous case the ISSUE names: a put is applied and
        # recorded, its response is lost, and the primary dies before the
        # client learns the outcome. The promoted standby must answer the
        # retry from the idempotency table — once, not twice.
        db, client, server, repl = repl_setup(
            specs={"server.wire.response": FaultSpec(at_counts=(0,))})
        sdk = sdk_for(server, client)
        result = sdk.put(7, b"ambiguous")  # SDK resolves the lost response
        assert result.deduped and result.payload == b"ambiguous"
        db.enclave.teardown()
        # The in-flight nonce resolves "done" against the promoted server.
        status, recorded = server.query(client.client_id, result.nonce)
        assert server.force_heal()
        status, recorded = server.query(client.client_id, result.nonce)
        assert status == "done" and recorded.payload == b"ambiguous"
        # And the promoted state holds the value exactly once (the value,
        # not a double-applied anti-replay alarm, which a re-apply of the
        # same nonce would have raised inside the standby's enclave).
        assert sdk.get(7).payload == b"ambiguous"

    def test_unapplied_op_resolves_unknown_after_failover(self):
        db, client, server, repl = repl_setup()
        sdk = sdk_for(server, client)
        request = envelope(server, client, "put", 8, b"never")
        db.enclave.teardown()
        assert server.force_heal()
        # Killed before the op was ever submitted: after failover the
        # nonce is provably unknown, so a fresh reissue is safe.
        new = sdk.put(8, b"reissued")
        assert new.payload == b"reissued"
        status, _ = server.query(request.client_id, request.nonce)
        assert status == "unknown"

    def test_post_promotion_receipts_settle_pre_failover_ops(self):
        db, client, server, repl = repl_setup()
        result = server.handle(envelope(server, client, "put", 3, b"pre"))
        db.flush()  # drain the log: the provisional op receipt arrives
        assert result.nonce in client._pending
        assert not client.settled(result.nonce)
        db.enclave.teardown()
        assert server.force_heal()
        _, fence = server.leader_info(client.client_id)
        client.accept_fence(fence)
        server.handle(envelope(server, client, "put", 4, b"post"))
        server.maintain()  # the new verifier's epoch receipt
        # The promoted verifier re-verified everything replicated (the
        # fence closes run full set-hash checks), so its epoch receipt
        # legitimately settles receipts the old primary issued.
        assert client.settled_epoch >= client.fence_epoch
        assert client.settled(result.nonce)

    def test_double_failover_through_reattached_standby(self):
        db, client, server, repl = repl_setup()
        server.handle(envelope(server, client, "put", 1, b"one"))
        db.enclave.teardown()
        assert server.force_heal()
        assert server.generation == 1
        server.handle(envelope(server, client, "put", 2, b"two",
                               generation=1))
        assert repl.can_promote()  # auto-reattached a fresh standby
        server.db.enclave.teardown()
        assert server.force_heal()
        assert server.generation == 2
        assert server.supervisor.failovers == 2
        for k, v in [(1, b"one"), (2, b"two")]:
            assert server.handle(
                envelope(server, client, "get", k)).payload == v

    def test_no_standby_falls_back_to_salvage_rung(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(auto_reattach=False))
        server.handle(envelope(server, client, "put", 1, b"keep"))
        db.enclave.teardown()
        assert server.force_heal()  # failover consumes the only standby
        assert not repl.can_promote()
        server.db.enclave.teardown()
        # A destroyed enclave makes restore-in-place impossible
        # (RecoveryError), so the ladder reaches the salvage rung.
        assert server.force_heal()
        assert server.supervisor.salvages == 1
        assert server.generation == 1  # salvage is not a leadership change
        assert server.handle(
            envelope(server, client, "get", 1)).payload == b"keep"

    def test_post_salvage_resync_reconciles_chain_position(self):
        """After a salvage heal, ``resync()`` re-anchors the replication
        session at the shipper's *current* (seq, chain) position rather
        than assuming a fresh chain at zero: seq stays monotone across
        the heal, the rebuilt members join exactly at the stream head,
        and shipping resumes without a single channel reject."""
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(auto_reattach=False))
        server.handle(envelope(server, client, "put", 1, b"keep"))
        db.enclave.teardown()
        assert server.force_heal()  # failover consumes the only standby
        seq_at_promotion = repl.shipper.next_seq
        server.db.enclave.teardown()
        assert server.force_heal()  # salvage rung; supervisor resync()s
        assert server.supervisor.salvages == 1
        # Monotone position: the re-keyed session continues the stream.
        assert repl.shipper.next_seq >= seq_at_promotion
        assert repl.standby is not None
        assert repl.standby.last_admitted_seq == repl.shipper.next_seq - 1
        # And the channel still works end to end after the re-anchor.
        server.handle(envelope(server, client, "put", 2, b"after-salvage"))
        assert repl.lag() == 0
        assert repl.rejects == 0
        snapshot = dict(repl.standby.db.items_snapshot())
        assert snapshot[2] == b"after-salvage"

    def test_exactly_one_live_verifier_after_promotion(self):
        db, client, server, repl = repl_setup()
        db.enclave.teardown()
        assert server.force_heal()
        assert not db.enclave.probe()["alive"]      # deposed: down
        assert server.db.enclave.probe()["alive"]   # promoted: up
        assert server.db is not db


# ======================================================================
# Recovery-ladder escalation (satellite: UnrecoverableError)
# ======================================================================
class TestEscalation:
    def test_ladder_exhaustion_raises_typed_unrecoverable(self):
        db, client = small_fastver(n_records=20)
        db.verify()
        db.flush()
        db.checkpoint()
        server = FastVerServer(db, ServerConfig())
        install_faults(db, FaultPlan(seed=42, specs={}))
        db.last_checkpoint = None  # restore rung cannot run

        def doomed_salvage():
            raise RecoveryError("log unreadable end to end")

        server._salvage = doomed_salvage
        with pytest.raises(UnrecoverableError) as excinfo:
            server.force_heal()
        message = str(excinfo.value)
        assert "seed=42" in message
        assert "trace=" in message
        assert "salvage failed" in message
        # Typed as an AvailabilityError so the tri-state invariant holds,
        # but the SDK and chaos harness treat it as final, not retryable.
        assert isinstance(excinfo.value, AvailabilityError)

    def test_sdk_does_not_retry_unrecoverable(self):
        db, client = small_fastver(n_records=20)
        db.verify()
        db.flush()
        db.checkpoint()
        server = FastVerServer(db, ServerConfig())
        sdk = sdk_for(server, client)
        attempts = []

        def hopeless(request):
            attempts.append(1)
            raise UnrecoverableError("recovery ladder exhausted")

        server.handle = hopeless
        with pytest.raises(UnrecoverableError):
            sdk.put(1, b"x")
        assert len(attempts) == 1  # no retry budget burned on a lost cause


# ======================================================================
# Counters and metrics (satellite)
# ======================================================================
class TestCountersAndMetrics:
    def test_failover_counters_recorded(self):
        COUNTERS.reset()
        db, client, server, repl = repl_setup()
        server.handle(envelope(server, client, "put", 1, b"x"))
        db.enclave.teardown()
        assert server.force_heal()
        assert COUNTERS.failovers == 1
        assert COUNTERS.shipped_batches > 0
        assert COUNTERS.recovery_ticks >= 1
        assert server.supervisor.last_recovery_ticks > 0

    def test_counters_merge_sums_and_maxes(self):
        a, b = Counters(), Counters()
        a.failovers, b.failovers = 1, 2
        a.replication_lag_max, b.replication_lag_max = 7, 3
        a.recovery_ticks, b.recovery_ticks = 10, 5
        a.add(b)
        assert a.failovers == 3            # additive
        assert a.replication_lag_max == 7  # high-water mark: max-merged
        assert a.recovery_ticks == 15

    def test_run_metrics_report_replication_summary(self):
        from repro.sim.metrics import MetricsBuilder

        builder = MetricsBuilder(n_workers=2, modeled_db_records=100)
        ops = Counters()
        ops.failovers = 2
        ops.shipped_batches = 40
        ops.replication_lag_max = 9
        ops.recovery_ticks = 33
        ops.delta_resyncs = 4
        ops.snapshot_resyncs = 1
        ops.lease_expiries = 1
        ops.epoch_markers = 6
        ops.replica_reads = 12
        ops.replica_staleness_max = 2
        ops.replication_retain_depth = 80
        builder.add_ops(ops, key_ops=100)
        metrics = builder.build()
        assert metrics.replication == {
            "failovers": 2,
            "shipped_batches": 40,
            "replication_lag_max": 9,
            "recovery_ticks": 33,
            "delta_resyncs": 4,
            "snapshot_resyncs": 1,
            "lease_expiries": 1,
            "epoch_markers": 6,
            "replica_reads": 12,
            "replica_staleness_max": 2,
            "replication_retain_depth": 80,
        }


# ======================================================================
# Chaos + benchmark acceptance
# ======================================================================
class TestFailoverChaos:
    def test_kill_primary_soak_holds_invariants(self):
        from repro.faults.chaos import run_chaos

        report = run_chaos(seed=5, ops=400, records=80, failover=True)
        assert report.ok, report.hard_failures
        assert report.failovers >= 2  # both scheduled kills promoted
        assert report.shipped_batches > 0

    def test_failover_soak_deterministic(self):
        from repro.faults.chaos import run_chaos

        first = run_chaos(seed=13, ops=300, records=60, failover=True)
        second = run_chaos(seed=13, ops=300, records=60, failover=True)
        assert first.ok and second.ok
        assert first.digest() == second.digest()


class TestFailoverBench:
    def test_failover_rto_beats_restore_rto(self):
        from repro.bench.failover import run_failover_bench

        result = run_failover_bench(records=300, ops=100, seed=3)
        assert result["ok"], result
        assert result["ratio"] < result["target_ratio"]
        assert result["failover_rto_ticks"] < result["restore_rto_ticks"]


# ======================================================================
# Guard rails
# ======================================================================
class TestGuards:
    def test_promote_without_standby_is_typed(self):
        db, client, server, repl = repl_setup(
            repl_config=ReplicationConfig(auto_reattach=False))
        db.enclave.teardown()
        assert server.force_heal()
        with pytest.raises(ProtocolError):
            repl.promote()

    def test_standby_receipts_stay_muted_until_promotion(self):
        db, client, server, repl = repl_setup()
        for k in range(3):
            server.handle(envelope(server, client, "put", k, b"m%d" % k))
        server.maintain()
        # The standby minted receipts while tailing; none reached clients.
        assert repl.standby.db.receipt_channel.muted > 0
"""Unit tests for the deterministic fault-injection engine: the plan
itself, the device/checkpoint/enclave/receipt injection hooks, and the
recovery hardening each hook exercises."""

from __future__ import annotations

import pytest

from repro import new_client
from repro.adversary import RECEIPT_ATTACKS
from repro.core.protocol import EpochReceipt, ReceiptChannel
from repro.errors import (
    EnclaveRebootError,
    EnclaveUnavailableError,
    RecoveryError,
    TornWriteError,
    TransientIOError,
)
from repro.faults import KNOWN_POINTS, FaultPlan, FaultSpec, install_faults
from repro.store.checkpoint import recover, take_checkpoint
from repro.store.faster import FasterKV
from repro.store.hybridlog import LogRecord
from repro.store.recovery import rebuild_index_from_log
from tests.conftest import small_fastver


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        def run(seed):
            plan = FaultPlan(seed, {"device.read.transient": 0.3})
            return [plan.fire("device.read.transient") for _ in range(200)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_points_are_independent(self):
        """One point's consultations never perturb another's decisions."""
        solo = FaultPlan(3, {"device.read.transient": 0.3})
        a = [solo.fire("device.read.transient") for _ in range(100)]
        mixed = FaultPlan(3, {"device.read.transient": 0.3,
                              "ecall.transient": 0.3})
        b = []
        for _ in range(100):
            mixed.fire("ecall.transient")
            b.append(mixed.fire("device.read.transient"))
        assert a == b

    def test_explicit_schedule(self):
        plan = FaultPlan(0, {"ecall.reboot": [2, 5]})
        fired = [plan.fire("ecall.reboot") for _ in range(8)]
        assert fired == [False, False, True, False, False, True, False, False]
        assert plan.trace == [("ecall.reboot", 2), ("ecall.reboot", 5)]

    def test_max_fires_heals(self):
        plan = FaultPlan(0, {"device.write.torn": FaultSpec(
            probability=1.0, max_fires=2)})
        fired = [plan.fire("device.write.torn") for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan(0, {"device.write.tron": 1.0})
        plan = FaultPlan(0)
        with pytest.raises(ValueError, match="unknown fault point"):
            plan.fire("nope")

    def test_trace_digest_reproducible(self):
        def digest(seed):
            plan = FaultPlan(seed, {p: 0.2 for p in sorted(KNOWN_POINTS)})
            for p in sorted(KNOWN_POINTS):
                for _ in range(50):
                    plan.fire(p)
            return plan.trace_digest()

        assert digest(11) == digest(11)
        assert digest(11) != digest(12)


def loaded_store(n=30):
    store = FasterKV(ordered_width=16)
    from repro.core.keys import BitKey
    from repro.core.records import DataValue
    for k in range(n):
        store.upsert(BitKey.data_key(k, 16), DataValue(b"v%d" % k), 0)
    return store


class TestDeviceFaults:
    def test_torn_write_repaired_by_read_back(self):
        """A single tear is healed by the flush path's rewrite."""
        store = loaded_store()
        store.log.device.faults = FaultPlan(0, {"device.write.torn": [0]})
        flushed = store.log.flush_until(store.log.tail_address)
        assert flushed == 30
        # Every page decodes after the verified flush.
        for addr in range(store.log.tail_address):
            LogRecord.deserialize(store.log.device.read(addr))

    def test_persistent_tear_is_typed(self):
        store = loaded_store()
        store.log.device.faults = FaultPlan(0, {"device.write.torn": 1.0})
        with pytest.raises(TornWriteError):
            store.log.flush_until(store.log.tail_address)

    def test_partial_flush_commits_prefix(self):
        store = loaded_store()
        store.log.device.faults = FaultPlan(0, {"device.flush.partial": [10]})
        with pytest.raises(TransientIOError):
            store.log.flush_until(store.log.tail_address)
        assert store.log.head_address == 10      # the verified prefix
        assert len(store.log.device) == 10
        store.log.device.faults = None
        assert store.log.flush_until(store.log.tail_address) == 20  # resumes

    def test_transient_read_absorbed_by_retry(self):
        store = loaded_store()
        store.log.flush_until(store.log.tail_address)
        store.log.device.faults = FaultPlan(0, {"device.read.transient": [0]})
        from repro.core.keys import BitKey
        pair = store.read(BitKey.data_key(3, 16))
        assert pair is not None and pair[0].payload == b"v3"

    def test_persistent_read_failure_is_typed(self):
        store = loaded_store()
        store.log.flush_until(store.log.tail_address)
        store.log.device.faults = FaultPlan(0, {"device.read.transient": 1.0})
        with pytest.raises(TransientIOError):
            store.log.device.read_with_retry(0)


class TestCheckpointFaults:
    def test_corrupt_blob_detected_at_recover(self):
        store = loaded_store()
        plan = FaultPlan(0, {"checkpoint.blob.corrupt": [0]})
        token = take_checkpoint(store, 1, faults=plan)
        with pytest.raises(RecoveryError):
            recover(token, store.log.device)

    def test_truncated_blob_detected_at_recover(self):
        store = loaded_store()
        plan = FaultPlan(0, {"checkpoint.blob.truncate": [0]})
        token = take_checkpoint(store, 1, faults=plan)
        with pytest.raises(RecoveryError):
            recover(token, store.log.device)

    def test_failed_flush_issues_no_token_and_old_token_survives(self):
        """Write-once pages: a newer checkpoint's dying flush cannot
        damage recovery from the older token."""
        store = loaded_store()
        token1 = take_checkpoint(store, 1)
        from repro.core.keys import BitKey
        from repro.core.records import DataValue
        for k in range(5):
            store.upsert(BitKey.data_key(k, 16), DataValue(b"new%d" % k), 0)
        store.log.device.faults = FaultPlan(0, {"device.flush.partial": [2]})
        with pytest.raises(TransientIOError):
            take_checkpoint(store, 2)
        store.log.device.faults = None
        recovered = recover(token1, store.log.device)
        pair = recovered.read(BitKey.data_key(0, 16))
        assert pair[0].payload == b"v0"  # pre-update value, intact


class TestLenientRebuild:
    def _damaged_device(self):
        store = loaded_store()
        tail = store.log.tail_address
        store.log.flush_until(tail)
        device = store.log.device
        device._pages[7] = b"\x01rot"
        return device, tail

    def test_strict_default_raises(self):
        device, tail = self._damaged_device()
        with pytest.raises(RecoveryError, match="undecodable"):
            rebuild_index_from_log(device, tail, ordered_width=16)

    def test_lenient_quarantines_and_salvages_the_rest(self):
        device, tail = self._damaged_device()
        store = rebuild_index_from_log(device, tail, ordered_width=16,
                                       strict=False)
        assert store.quarantined_addresses == [7]
        from repro.core.keys import BitKey
        assert store.read(BitKey.data_key(7, 16)) is None  # lost, not lied
        # Records behind the bad page are fully recovered.
        for k in (0, 6, 8, 29):
            assert store.read(BitKey.data_key(k, 16))[0].payload == b"v%d" % k

    def test_clean_rebuild_has_empty_quarantine(self):
        store = loaded_store()
        tail = store.log.tail_address
        store.log.flush_until(tail)
        rebuilt = rebuild_index_from_log(store.log.device, tail,
                                         ordered_width=16, strict=False)
        assert rebuilt.quarantined_addresses == []

    def test_checkpoint_after_salvage_clears_quarantine(self):
        """Regression: a successful checkpoint marks the salvage complete —
        the quarantined addresses are resolved losses, not live damage, and
        must not haunt the next recovery cycle."""
        device, tail = self._damaged_device()
        store = rebuild_index_from_log(device, tail, ordered_width=16,
                                       strict=False)
        assert store.quarantined_addresses == [7]
        token = take_checkpoint(store, version=1)
        assert store.quarantined_addresses == []
        # The token round-trips into a store with a clean slate too.
        recovered = recover(token, device)
        assert recovered.quarantined_addresses == []


class TestEnclaveFaults:
    def test_transient_ecall_retried_transparently(self):
        db, client = small_fastver()
        db.enclave.faults = FaultPlan(0, {"ecall.transient": [0]})
        db.put(client, 3, b"through-the-flake")
        db.flush()
        assert db.get(client, 3).payload == b"through-the-flake"

    def test_exhausted_transient_is_typed_and_recoverable(self):
        db, client = small_fastver()
        db.verify()
        ckpt = db.checkpoint()
        db.enclave.faults = FaultPlan(0, {"ecall.transient": 1.0})
        with pytest.raises(EnclaveUnavailableError):
            db.put(client, 3, b"x")
            db.flush()
        db.enclave.faults = None
        db.recover(ckpt)
        db.put(client, 3, b"retry-after-recovery")
        db.verify()
        assert db.get(client, 3).payload == b"retry-after-recovery"

    def test_fresh_verifier_refuses_work(self):
        """After a reboot, every integrity-bearing ecall fails typed until
        restore_state runs — never silent service from empty state."""
        db, client = small_fastver()
        db.verify()
        ckpt = db.checkpoint()
        db.enclave.reboot()
        with pytest.raises(EnclaveUnavailableError):
            db.enclave.ecall("process_batch", 0, [])
        with pytest.raises(EnclaveUnavailableError):
            db.enclave.ecall("start_epoch_close")
        with pytest.raises(EnclaveUnavailableError):
            db.enclave.ecall("checkpoint_state")
        db.recover(ckpt)
        assert db.get(client, 1).payload == b"v1"

    def test_reboot_fault_is_never_retried_inline(self):
        db, client = small_fastver()
        db.verify()
        db.checkpoint()
        install_faults(db, FaultPlan(0, {"ecall.reboot": [0]}))
        with pytest.raises(EnclaveRebootError):
            db.put(client, 3, b"x")
            db.flush()
        assert db.enclave.reboots == 1  # exactly one: no blind retry
        install_faults(db, None)
        db.recover(db.last_checkpoint)
        db.put(client, 3, b"ok")
        db.verify()
        assert db.get(client, 3).payload == b"ok"


class TestReceiptChannel:
    def _delivered(self, specs, n=6):
        client = new_client(1)
        channel = ReceiptChannel()
        channel.faults = FaultPlan(0, specs)
        for epoch in range(1, n + 1):
            receipt = EpochReceipt(epoch, b"")
            receipt.tag = client.key.sign(*receipt.mac_fields())
            channel.deliver(receipt, client)
        return client, channel

    def test_drop_means_unsettled_never_wrong(self):
        client, channel = self._delivered({"receipt.drop": 1.0})
        assert channel.dropped == 6
        assert client.settled_epoch == -1

    def test_duplicates_are_idempotent(self):
        client, channel = self._delivered({"receipt.duplicate": 1.0})
        assert channel.duplicated == 6
        assert client.settled_epoch == 6

    def test_reorder_held_then_flushed(self):
        client, channel = self._delivered({"receipt.reorder": 1.0})
        assert channel.reordered == 6
        assert client.settled_epoch == -1  # all withheld
        assert channel.flush_held() == 6   # delivered late, reversed
        assert client.settled_epoch == 6


class TestReceiptAttacks:
    """Satellite: the adversary owns the receipt wire; no attack settles a
    wrong answer (drop merely leaves operations unsettled)."""

    @pytest.mark.parametrize("name", sorted(RECEIPT_ATTACKS))
    def test_no_attack_breaks_correctness(self, name):
        db, client = small_fastver()
        RECEIPT_ATTACKS[name](db, client)
        result = db.put(client, 7, b"precious")
        db.flush()
        db.verify()
        db.flush()
        assert db.get(client, 7).payload == b"precious"
        if name == "drop_receipts":
            assert not client.settled(result.nonce)
            assert client.settled_epoch == -1
        else:
            assert client.settled(result.nonce)
            assert client.settled_epoch >= 0

    def test_dropped_receipts_settle_after_channel_heals(self):
        db, client = small_fastver()
        RECEIPT_ATTACKS["drop_receipts"](db, client)
        result = db.put(client, 7, b"precious")
        db.flush()
        assert not client.settled(result.nonce)
        db.receipt_channel.faults = None  # the wire heals
        # Re-running the op and closing the epoch settles the new op.
        again = db.put(client, 7, b"precious")
        db.flush()
        db.verify()
        db.flush()
        assert client.settled(again.nonce)

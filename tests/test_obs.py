"""The observability layer: histograms, tracing, attribution, exposition.

Covers the pure data structures (log-bucketed histograms, the trace
ring), the cost attribution's consistency with the cost model, the
measured-run exposition pipeline behind ``python -m repro metrics``,
the tracing-overhead bound, and the acceptance lifecycle: a batched
chaos run with a primary kill yields one trace that reconstructs
admit → fence → retry → stage → flush → receipt across the failover.
"""

from __future__ import annotations

import math

import pytest

from repro.enclave.costmodel import SGX, SIMULATED
from repro.instrument import Counters
from repro.obs import TRACER, LatencyRecorder, Tracer, attribute_costs
from repro.obs.histogram import SUBBUCKETS, LogHistogram
from repro.sim.costs import DEFAULT_COSTS


class TestLogHistogram:
    def test_bucket_round_trip(self):
        """Every value lands in a bucket whose upper edge is within one
        relative sub-bucket of the value (the 1/SUBBUCKETS error bound)."""
        for value in (0.0, 0.5, 1.0, 1.01, 3.0, 7.99, 8.0, 100.0,
                      1023.0, 1024.0, 123456.789):
            idx = LogHistogram._bucket_index(value)
            upper = LogHistogram._bucket_upper(idx)
            assert value < upper or value == 0.0
            if value >= 1.0:
                assert upper <= value * (1.0 + 1.0 / SUBBUCKETS) + 1e-9

    def test_percentile_error_bound(self):
        hist = LogHistogram("t")
        values = [float(v) for v in range(1, 2000, 7)]
        for v in values:
            hist.observe(v)
        values.sort()
        for p in (50.0, 95.0, 99.0):
            exact = values[max(0, math.ceil(len(values) * p / 100.0) - 1)]
            got = hist.percentile(p)
            assert got >= exact  # upper bucket edge never understates
            assert got <= exact * (1.0 + 1.0 / SUBBUCKETS) + 1e-9

    def test_percentile_clamped_to_observed_max(self):
        hist = LogHistogram("t")
        hist.observe(100.0)
        assert hist.percentile(99.9) == 100.0

    def test_empty_summary(self):
        s = LogHistogram("t").summary()
        assert s["count"] == 0
        assert s["p99"] == 0.0
        assert s["min"] == 0.0

    def test_merge_accumulates(self):
        a, b = LogHistogram("t"), LogHistogram("t")
        for v in (1.0, 5.0, 9.0):
            a.observe(v)
        for v in (2.0, 700.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.max_value == 700.0
        assert a.min_value == 1.0
        assert a.total == 717.0

    def test_merge_unit_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram("a", "ticks").merge(LogHistogram("b", "modeled_ns"))

    def test_cumulative_buckets_monotone(self):
        hist = LogHistogram("t")
        for v in (1.0, 2.0, 4.0, 4.0, 900.0):
            hist.observe(v)
        series = hist.as_dict()["buckets"]
        les = [le for le, _ in series]
        cums = [c for _, c in series]
        assert les == sorted(les)
        assert cums == sorted(cums)
        assert cums[-1] == hist.count

    def test_recorder_respects_enabled(self):
        rec = LatencyRecorder()
        rec.observe("x", 3.0)
        rec.enabled = False
        rec.observe("x", 5.0)
        assert rec.get("x").count == 1


class TestWindowedViews:
    def test_take_window_is_reset_on_read(self):
        rec = LatencyRecorder()
        for v in (1.0, 2.0, 3.0):
            rec.observe("w", v)
        first = rec.take_window("w")
        assert first.count == 3
        # The window restarted; the cumulative view kept everything.
        assert rec.window("w").count == 0
        assert rec.get("w").count == 3
        rec.observe("w", 50.0)
        second = rec.take_window("w")
        assert second.count == 1
        assert second.min_value == second.max_value == 50.0
        assert rec.get("w").count == 4

    def test_window_peek_does_not_reset(self):
        rec = LatencyRecorder()
        rec.observe("w", 7.0)
        assert rec.window("w").count == 1
        assert rec.window("w").count == 1  # peeking twice is idempotent

    def test_window_quantiles_hold_the_subbucket_bound(self):
        """Interval views are full histograms, so their quantiles carry
        the same 1/SUBBUCKETS relative error bound as the cumulative
        view — undiluted by observations from earlier intervals."""
        rec = LatencyRecorder()
        # A noisy earlier interval that must not leak into the next.
        for v in range(10_000, 10_050):
            rec.observe("w", float(v))
        rec.take_window("w")
        values = sorted(float(v) for v in range(1, 500, 3))
        for v in values:
            rec.observe("w", v)
        window = rec.take_window("w")
        assert window.count == len(values)
        for p in (50.0, 95.0, 99.0):
            exact = values[max(0, math.ceil(len(values) * p / 100.0) - 1)]
            got = window.percentile(p)
            assert got >= exact
            assert got <= exact * (1.0 + 1.0 / SUBBUCKETS) + 1e-9
        # The cumulative view still spans both intervals.
        assert rec.get("w").max_value == 10_049.0

    def test_reset_clears_windows_too(self):
        rec = LatencyRecorder()
        rec.observe("w", 5.0)
        rec.reset()
        assert rec.get("w").count == 0
        assert rec.window("w").count == 0

    def test_disabled_recorder_skips_windows(self):
        rec = LatencyRecorder()
        rec.enabled = False
        rec.observe("w", 5.0)
        assert rec.window("w").count == 0


class TestTracer:
    def test_ring_bounded_and_drop_counted(self):
        tracer = Tracer(capacity=4)
        for i in range(7):
            tracer.record("admit", float(i), f"t{i}")
        assert len(tracer) == 4
        assert tracer.dropped == 3
        assert [e.trace for e in tracer.last(2)] == ["t5", "t6"]

    def test_filtering(self):
        tracer = Tracer()
        tracer.record("admit", 1.0, "a")
        tracer.record("flush", 2.0, "a", shard=0)
        tracer.record("admit", 3.0, "b")
        assert [e.kind for e in tracer.lifecycle("a")] == ["admit", "flush"]
        assert len(tracer.events(kind="admit")) == 2
        assert tracer.traces() == ["a", "b"]

    def test_find_lifecycle(self):
        tracer = Tracer()
        tracer.record("admit", 1.0, "a")
        tracer.record("admit", 1.0, "b")
        tracer.record("receipt", 2.0, "b")
        assert tracer.find_lifecycle({"admit", "receipt"}) == "b"
        assert tracer.find_lifecycle({"admit", "fence"}) is None

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        tracer.enabled = False
        tracer.record("admit", 1.0, "a")
        assert len(tracer) == 0

    def test_event_export_flattens_detail(self):
        tracer = Tracer()
        tracer.record("flush", 2.5, "a", shard=3, ops=8)
        d = tracer.last(1)[0].as_dict()
        assert d["kind"] == "flush" and d["shard"] == 3 and d["ops"] == 8


class TestAttribution:
    def _bag(self):
        return Counters(
            merkle_hashes=100, merkle_hash_bytes=6400, multiset_updates=50,
            multiset_hash_bytes=2000, mac_ops=30, enclave_entries=12,
            store_reads=200, store_writes=80, cas_attempts=280,
            cas_failures=3, log_entries=90, host_merkle_hashes=10,
            host_merkle_hash_bytes=640)

    @pytest.mark.parametrize("profile", [SIMULATED, SGX])
    def test_parts_sum_to_model_total(self, profile):
        c = self._bag()
        att = attribute_costs(c, profile, modeled_db_records=1000)
        assert att.consistent
        model = DEFAULT_COSTS.total_ns(c, profile, 1000)
        assert att.total_ns == pytest.approx(model, rel=1e-9)

    def test_fractions_sum_to_one(self):
        att = attribute_costs(self._bag(), modeled_db_records=500)
        assert sum(att.fractions().values()) == pytest.approx(1.0)

    def test_flame_report_lists_every_subsystem(self):
        from repro.obs import SUBSYSTEMS
        report = attribute_costs(self._bag()).flame_report()
        for name in SUBSYSTEMS:
            assert name in report
        assert "consistent" in report

    def test_empty_bag_is_consistent(self):
        att = attribute_costs(Counters())
        assert att.total_ns == 0.0
        assert att.consistent


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.obs.runner import run_instrumented
        return run_instrumented(records=120, ops=300, seed=11, batch=8,
                                maintain_every=100)

    def test_payload_checks_clean(self, run):
        from repro.obs.export import check_payload
        assert check_payload(run.payload()) == []

    def test_every_op_settles_a_verified_latency(self, run):
        payload = run.payload()
        assert payload["latency"]["verified_latency"]["count"] == 300
        assert payload["latency"]["admission_wait"]["count"] == 300

    def test_attribution_sums_to_run_total(self, run):
        att = run.payload()["attribution"]
        assert att["consistent"]
        assert att["total_ns"] == pytest.approx(att["model_total_ns"])
        assert att["parts_ns"]["crossings"] > 0

    def test_prometheus_rendering(self, run):
        from repro.obs.export import to_prometheus
        text = to_prometheus(run.payload())
        assert 'repro_counter_total{name="admitted"} 300' in text
        assert 'repro_latency_bucket{hist="verified_latency"' in text
        assert 'le="+Inf"} 300' in text
        assert 'repro_cost_ns{subsystem="crossings"}' in text
        assert 'repro_run{name="throughput_mops"}' in text


class TestTracingOverhead:
    def test_tracing_inside_documented_bound(self):
        """Modeled time derives purely from work counters and tracing
        never bumps one, so the on/off throughput delta is 0 — pinned
        here so it can't silently grow past the documented 10% bound."""
        from repro.bench.batching import TRACING_OVERHEAD_BOUND, \
            tracing_overhead
        result = tracing_overhead(records=120, ops=400, seed=5, batch=16)
        assert result["ok"]
        assert result["relative_delta"] <= TRACING_OVERHEAD_BOUND
        assert result["throughput_mops_tracing_on"] == pytest.approx(
            result["throughput_mops_tracing_off"])


class TestChaosLifecycle:
    def test_failover_run_reconstructs_full_lifecycle(self):
        """The acceptance bar: after a batched chaos run that kills the
        primary, some request's span covers the whole journey across the
        fence — admit, fence rejection, retry, staging, flush, receipt."""
        from repro.faults.chaos import run_chaos
        report = run_chaos(seed=7, ops=600, records=200, server=True,
                           failover=True, batched=True)
        assert not report.hard_failures
        kinds = {"admit", "stage", "flush", "fence", "retry", "receipt"}
        trace = TRACER.find_lifecycle(kinds)
        assert trace is not None
        span = TRACER.lifecycle(trace)
        assert {e.kind for e in span} >= kinds
        ts = [e.ts for e in span]
        assert ts == sorted(ts)
        order = [e.kind for e in span]
        # The fence rejection precedes the retry, which precedes the
        # receipt — the span tells the failover story in order.
        assert order.index("fence") < order.index("retry") \
            < order.index("receipt")

"""Tests for record values and the 64-bit aux word (§4.2, §7)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.keys import BitKey
from repro.core.records import (
    MAX_EPOCH,
    MAX_SLOT,
    MAX_TIMESTAMP,
    MAX_VERIFIER,
    Aux,
    DataValue,
    MerkleValue,
    Pointer,
    Protection,
    decode_value,
    encode_value,
    entry_fields,
    value_hash,
)


def bk(s):
    return BitKey.from_bits_string(s)


class TestDataValue:
    def test_payload(self):
        assert DataValue(b"x").payload == b"x"
        assert not DataValue(b"x").is_tombstone

    def test_tombstone(self):
        assert DataValue(None).is_tombstone

    def test_type_check(self):
        with pytest.raises(TypeError):
            DataValue("not bytes")

    def test_equality(self):
        assert DataValue(b"x") == DataValue(b"x")
        assert DataValue(b"x") != DataValue(b"y")
        assert DataValue(None) != DataValue(b"")

    def test_encoding_distinguishes_tombstone_from_empty(self):
        assert encode_value(DataValue(None)) != encode_value(DataValue(b""))


class TestMerkleValue:
    def test_empty(self):
        assert MerkleValue().is_empty
        assert MerkleValue().pointer(0) is None

    def test_with_pointer_immutability(self):
        ptr = Pointer(bk("01"), b"\x01" * 32)
        original = MerkleValue()
        updated = original.with_pointer(0, ptr)
        assert original.pointer(0) is None
        assert updated.pointer(0) == ptr

    def test_pointer_side_validation(self):
        with pytest.raises(ValueError):
            MerkleValue().pointer(2)
        with pytest.raises(ValueError):
            MerkleValue().with_pointer(7, None)

    def test_equality(self):
        ptr = Pointer(bk("01"), b"\x01" * 32)
        assert MerkleValue(ptr, None) == MerkleValue(ptr, None)
        assert MerkleValue(ptr, None) != MerkleValue(None, ptr)

    def test_value_hash_depends_on_sides(self):
        ptr = Pointer(bk("01"), b"\x01" * 32)
        assert value_hash(MerkleValue(ptr, None)) != value_hash(MerkleValue(None, ptr))


class TestValueCodec:
    def test_data_roundtrip(self):
        for v in (DataValue(b"hello"), DataValue(b""), DataValue(None)):
            assert decode_value(encode_value(v)) == v

    def test_merkle_roundtrip(self):
        ptr0 = Pointer(bk("0101"), b"\xab" * 32)
        ptr1 = Pointer(bk("11"), b"\xcd" * 32)
        for v in (MerkleValue(ptr0, ptr1), MerkleValue(None, ptr1),
                  MerkleValue(ptr0, None), MerkleValue(None, None)):
            assert decode_value(encode_value(v)) == v

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_value(b"ZZgarbage")

    @given(st.binary(max_size=64))
    def test_data_roundtrip_property(self, payload):
        assert decode_value(encode_value(DataValue(payload))) == DataValue(payload)

    def test_kind_domain_separation(self):
        """A data value can never encode identically to a merkle value."""
        data = encode_value(DataValue(b"MV"))
        assert decode_value(data) == DataValue(b"MV")


class TestAux:
    def test_merkle_roundtrip(self):
        assert Aux.unpack(Aux.merkle().pack()).state is Protection.MERKLE

    def test_deferred_roundtrip(self):
        aux = Aux.unpack(Aux.deferred(12345, 678).pack())
        assert aux.state is Protection.DEFERRED
        assert aux.timestamp == 12345
        assert aux.epoch == 678

    def test_cached_roundtrip(self):
        aux = Aux.unpack(Aux.cached(31, 999).pack())
        assert aux.state is Protection.CACHED
        assert aux.verifier_id == 31
        assert aux.slot == 999

    def test_is_64_bits(self):
        for aux in (Aux.merkle(), Aux.deferred(MAX_TIMESTAMP, MAX_EPOCH),
                    Aux.cached(MAX_VERIFIER, MAX_SLOT)):
            assert 0 <= aux.pack() < (1 << 64)

    def test_range_checks(self):
        with pytest.raises(ValueError):
            Aux.deferred(MAX_TIMESTAMP + 1, 0)
        with pytest.raises(ValueError):
            Aux.deferred(0, MAX_EPOCH + 1)
        with pytest.raises(ValueError):
            Aux.cached(MAX_VERIFIER + 1, 0)
        with pytest.raises(ValueError):
            Aux.cached(0, MAX_SLOT + 1)
        with pytest.raises(ValueError):
            Aux.unpack(1 << 64)

    def test_equality_via_pack(self):
        assert Aux.deferred(1, 2) == Aux.deferred(1, 2)
        assert Aux.deferred(1, 2) != Aux.deferred(2, 1)
        assert Aux.merkle() != Aux.deferred(0, 0)

    @given(st.integers(0, MAX_TIMESTAMP), st.integers(0, MAX_EPOCH))
    def test_deferred_roundtrip_property(self, ts, epoch):
        aux = Aux.unpack(Aux.deferred(ts, epoch).pack())
        assert (aux.timestamp, aux.epoch) == (ts, epoch)

    @given(st.integers(0, MAX_VERIFIER), st.integers(0, MAX_SLOT))
    def test_cached_roundtrip_property(self, vid, slot):
        aux = Aux.unpack(Aux.cached(vid, slot).pack())
        assert (aux.verifier_id, aux.slot) == (vid, slot)


class TestEntryFields:
    def test_identity_includes_all_components(self):
        base = entry_fields(bk("0101"), DataValue(b"v"), 7, 3)
        assert entry_fields(bk("0101"), DataValue(b"v"), 7, 3) == base
        assert entry_fields(bk("0111"), DataValue(b"v"), 7, 3) != base
        assert entry_fields(bk("0101"), DataValue(b"w"), 7, 3) != base
        assert entry_fields(bk("0101"), DataValue(b"v"), 8, 3) != base
        assert entry_fields(bk("0101"), DataValue(b"v"), 7, 4) != base

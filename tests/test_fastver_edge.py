"""Edge-case and deep-property tests for FastVer."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FastVer, FastVerConfig, new_client
from repro.core.keys import BitKey
from repro.core.records import DataValue
from repro.errors import CapacityError
from repro.instrument import COUNTERS
from repro.merkle.sparse import build_tree, check_invariants
from tests.conftest import small_fastver


class TestKeyWidths:
    def test_paper_width_256(self):
        """The paper's full 256-bit data keys work end to end."""
        db = FastVer(
            FastVerConfig(key_width=256, n_workers=2, partition_depth=3,
                          cache_capacity=300),
            items=[(k, b"v%d" % k) for k in range(50)],
        )
        client = new_client(1)
        db.register_client(client)
        db.put(client, 2 ** 200, b"huge-key")
        assert db.get(client, 2 ** 200).payload == b"huge-key"
        assert db.get(client, 7).payload == b"v7"
        db.verify()
        db.flush()
        assert client.settled_epoch == 0

    def test_bytes_keys_map_into_width(self):
        db, client = small_fastver()
        db.put(client, b"alice", b"pw-hash")
        assert db.get(client, b"alice").payload == b"pw-hash"

    def test_minimum_width(self):
        db = FastVer(FastVerConfig(key_width=4, n_workers=1,
                                   partition_depth=1, cache_capacity=16),
                     items=[(k, b"%d" % k) for k in range(16)])
        client = new_client(1)
        db.register_client(client)
        for k in range(16):
            assert db.get(client, k).payload == b"%d" % k
        db.verify()
        db.flush()


class TestValueShapes:
    def test_empty_value(self, db_and_client):
        db, client = db_and_client
        db.put(client, 3, b"")
        assert db.get(client, 3).payload == b""
        db.verify()
        db.flush()

    def test_large_values(self, db_and_client):
        db, client = db_and_client
        blob = bytes(range(256)) * 64  # 16 KiB
        db.put(client, 3, blob)
        assert db.get(client, 3).payload == blob
        db.verify()
        db.flush()
        assert db.get(client, 3).payload == blob  # cold read after verify

    def test_value_with_encoding_like_bytes(self, db_and_client):
        """Values that look like our own encodings cannot confuse codecs."""
        db, client = db_and_client
        for payload in (b"DN", b"DV", b"MV", b"\x00\x00\x00\x02MV"):
            db.put(client, 3, payload)
            assert db.get(client, 3).payload == payload
        db.verify()
        db.flush()


class TestLogBuffering:
    def test_capacity_one_forces_flush_per_entry(self):
        db, client = small_fastver(log_capacity=1)
        before = COUNTERS.enclave_entries
        db.get(client, 3)
        entries = COUNTERS.enclave_entries - before
        assert entries >= 3  # every log append crossed immediately
        db.verify()
        db.flush()

    def test_large_capacity_batches(self):
        db, client = small_fastver(log_capacity=10_000)
        db.flush()
        before = COUNTERS.enclave_entries
        for i in range(40):
            db.get(client, i % 10)
        assert COUNTERS.enclave_entries == before  # still buffered
        db.flush()
        # One crossing per non-empty worker log (cold ops route to the
        # partition owner's log, so both workers' logs may hold entries).
        assert COUNTERS.enclave_entries <= before + 2


class TestEnclaveMemoryPressure:
    def test_giant_cache_exceeds_sgx(self):
        """Verifier caches sized beyond the EPC trip the memory bound at
        the first enclave call — the P1 pressure (enclave memory is slab-
        reserved up front) that motivates the whole design."""
        from repro.enclave.costmodel import SGX
        cfg = FastVerConfig(key_width=16, n_workers=4,
                            cache_capacity=1_000_000,
                            enclave_profile=SGX)
        with pytest.raises(CapacityError):
            FastVer(cfg, items=[(k, b"v") for k in range(50)])

    def test_reasonable_cache_fits_sgx(self):
        from repro.enclave.costmodel import SGX
        cfg = FastVerConfig(key_width=16, n_workers=4, cache_capacity=512,
                            enclave_profile=SGX)
        db = FastVer(cfg, items=[(k, b"v") for k in range(50)])
        client = new_client(1)
        db.register_client(client)
        assert db.get(client, 7).payload == b"v"
        db.verify()
        db.flush()


class TestWorkloadIntegration:
    @pytest.mark.parametrize("name", ["YCSB-A", "YCSB-B", "YCSB-C"])
    def test_point_workloads_run_clean(self, name):
        from repro.workloads.ycsb import WORKLOADS, YcsbGenerator, run_workload
        db, client = small_fastver(n_records=60, n_workers=2)
        generator = YcsbGenerator(WORKLOADS[name], 60, seed=4)
        executed = run_workload(db, client, generator, 200, n_workers=2)
        assert executed == 200
        db.verify()
        db.flush()
        assert client.settled_epoch >= 0

    def test_ycsb_e_with_inserts(self):
        from repro.workloads.ycsb import YCSB_E, YcsbGenerator, run_workload
        db, client = small_fastver(n_records=60, n_workers=2)
        generator = YcsbGenerator(YCSB_E, 60, seed=4)
        executed = run_workload(db, client, generator, 40, n_workers=2)
        assert executed > 40  # scans amplify
        db.verify()
        db.flush()

    def test_scan_sees_fresh_inserts(self, db_and_client):
        db, client = db_and_client
        db.put(client, 150, b"new150")
        db.put(client, 151, b"new151")
        result = db.scan(client, 149, 4)
        assert (150, b"new150") in result
        assert (151, b"new151") in result


class TestTreeProperties:
    def test_full_coherence_after_verify_and_flush(self):
        """With no partitioning, verify() + cache flush leaves a fully
        hash-coherent Merkle tree in the untrusted store."""
        db, client = small_fastver(n_records=80, n_workers=1,
                                   partition_depth=None)
        rng = random.Random(3)
        for i in range(200):
            k = rng.randrange(160)
            if rng.random() < 0.6:
                db.put(client, k, b"p%d" % i)
            else:
                db.get(client, k)
        db.verify()
        db.flush_caches()
        root_value = db.mirrors[0].entries[BitKey.root()].value

        def source(key):
            record = db.store.read_record(key)
            return record.value if record else None

        count = check_invariants(source, root_value,
                                 data_width=db.config.key_width)
        assert count >= 80

    @given(st.dictionaries(st.integers(0, 4000), st.binary(min_size=1,
                                                           max_size=6),
                           min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_history_independence(self, final_state):
        """Patricia trees are history-independent: inserting keys one by
        one through the full FastVer protocol must produce the *identical*
        root value as a trusted bulk build of the final state."""
        db = FastVer(FastVerConfig(key_width=16, n_workers=1,
                                   partition_depth=None, cache_capacity=64))
        client = new_client(1)
        db.register_client(client)
        items = list(final_state.items())
        random.Random(1).shuffle(items)
        for k, v in items:
            db.put(client, k, v)
        db.verify()
        db.flush_caches()
        db.flush()
        incremental_root = db.mirrors[0].entries[BitKey.root()].value

        data = sorted((BitKey.data_key(k, 16), DataValue(v))
                      for k, v in final_state.items())
        _, bulk_root = build_tree(data)
        assert incremental_root == bulk_root

"""Durability and recovery tests (§7): epoch-synchronized checkpoints,
crash recovery, and rollback attacks on checkpoints (§2.2)."""

from __future__ import annotations

import pytest

from repro.errors import IntegrityError, RollbackError
from tests.conftest import small_fastver


def checkpointed_db():
    db, client = small_fastver(n_records=60)
    for i in range(30):
        db.put(client, i % 20, b"x%d" % i)
    db.verify()
    db.flush()
    return db, client, db.checkpoint()


class TestCheckpointRecovery:
    def test_recover_preserves_data(self):
        db, client, ckpt = checkpointed_db()
        db.recover(ckpt)
        for k in range(20):
            got = db.get(client, k).payload
            assert got is not None and got.startswith(b"x")
        for k in range(20, 60):
            assert db.get(client, k).payload == b"v%d" % k

    def test_recovered_store_verifies(self):
        db, client, ckpt = checkpointed_db()
        settled = client.settled_epoch
        db.recover(ckpt)
        db.put(client, 5, b"post-recovery")
        report = db.verify()
        db.flush()
        assert client.settled_epoch > settled
        assert db.get(client, 5).payload == b"post-recovery"
        db.verify()
        db.flush()

    def test_recovery_with_pre_crash_warm_records(self):
        """Records left deferred at checkpoint time recover as deferred
        and remain fully usable."""
        db, client = small_fastver(n_records=60)
        db.put(client, 7, b"warm")
        db.flush()
        ckpt = db.checkpoint()
        db.recover(ckpt)
        assert db.get(client, 7).payload == b"warm"
        db.verify()
        db.flush()

    def test_work_after_checkpoint_is_lost_not_corrupted(self):
        """Updates past the checkpoint vanish at recovery (prefix
        semantics) but the recovered state is still verifiable."""
        db, client, ckpt = checkpointed_db()
        db.put(client, 3, b"lost-update")
        db.flush()
        db.recover(ckpt)
        got = db.get(client, 3).payload
        assert got != b"lost-update"
        db.verify()
        db.flush()

    def test_multiple_checkpoint_generations(self):
        db, client = small_fastver(n_records=40)
        db.put(client, 1, b"gen1")
        db.verify()
        db.checkpoint()
        db.put(client, 1, b"gen2")
        db.verify()
        ckpt2 = db.checkpoint()
        db.recover(ckpt2)
        assert db.get(client, 1).payload == b"gen2"
        db.verify()
        db.flush()


class TestRollbackAttacks:
    def test_old_checkpoint_rejected(self):
        """The §2.2 rollback attack: reboot the enclave and feed it a
        stale checkpoint. The sealed slot catches it."""
        db, client = small_fastver(n_records=40)
        db.put(client, 1, b"old")
        db.verify()
        old_ckpt = db.checkpoint()
        db.put(client, 1, b"new")
        db.verify()
        db.checkpoint()
        with pytest.raises(RollbackError):
            db.recover(old_ckpt)

    def test_forged_blob_rejected(self):
        db, client, ckpt = checkpointed_db()
        ckpt.verifier_blob = ckpt.verifier_blob[:-1] + bytes(
            [ckpt.verifier_blob[-1] ^ 0xFF])
        with pytest.raises(Exception):
            db.recover(ckpt)

    def test_tampering_survives_recovery_detection(self):
        """Tampering done *while the system is down* is still caught after
        recovery."""
        from repro.core.records import DataValue
        from repro.store.hybridlog import LogRecord
        db, client, ckpt = checkpointed_db()
        db.recover(ckpt)
        # Post-recovery records live on the device; tamper the page itself.
        key = db.data_key(25)
        address = db.store.index.lookup(key)
        original = db.store.log.get(address)
        evil = LogRecord(key, DataValue(b"__evil__"), original.aux,
                         original.prev_address)
        db.store.log.device.write(address, evil.serialize())
        with pytest.raises(IntegrityError):
            db.get(client, 25)
            db.flush()
            db.verify()
            db.flush()


class TestAntiReplayFloorAcrossCycles:
    """The verifier's anti-replay floor must survive (and not compound
    across) consecutive checkpoint/recover cycles: stale requests stay
    dead forever, fresh nonces keep working."""

    def test_floor_survives_two_recover_cycles(self):
        from repro.errors import ReplayError

        db, client, ckpt1 = checkpointed_db()
        stale = client.make_put(db.data_key(4), b"stale")  # nonce drawn now
        db.apply_put(client, stale)
        db.flush()

        # Cycle 1: the restore burns every nonce <= the checkpointed mark,
        # including `stale`'s even though it committed after the snapshot.
        db.recover(ckpt1)
        db.put(client, 4, b"fresh-1")  # fresh nonce: admitted
        db.verify()
        db.flush()

        # Cycle 2: checkpoint the healed state and recover again.
        ckpt2 = db.checkpoint()
        db.recover(ckpt2)
        db.put(client, 4, b"fresh-2")
        db.verify()
        db.flush()
        assert db.get(client, 4).payload == b"fresh-2"

        # The pre-cycle request is still a replay, two recoveries later.
        with pytest.raises(ReplayError):
            db.apply_put(client, stale)
            db.flush()

    def test_floor_does_not_compound(self):
        """Each restore burns up to the *checkpointed* high-water mark —
        repeated cycles with no intervening traffic must not creep the
        floor past nonces the client never issued."""
        db, client, ckpt = checkpointed_db()
        for _ in range(2):
            db.recover(ckpt)
            ckpt = db.checkpoint()
        db.put(client, 9, b"still-works")
        db.verify()
        db.flush()
        assert db.get(client, 9).payload == b"still-works"

"""Chaos-soak harness tests and crash-during-verify epoch atomicity.

The chaos runs here are smaller than the CI smoke (`python -m repro
chaos`) but assert the same contract: the tri-state invariant holds for
every operation, and a seeded run is bit-for-bit reproducible.
"""

from __future__ import annotations

import pytest

from repro.errors import EnclaveRebootError
from repro.faults import FaultPlan, install_faults
from repro.faults.chaos import run_chaos
from tests.conftest import small_fastver


class TestChaosSoak:
    def test_benign_soak_holds_tristate_invariant(self):
        report = run_chaos(seed=7, ops=600, records=100)
        assert report.ok, report.hard_failures
        assert report.ops_ok > 0
        assert report.ops_attempted == 600  # no op left the tri-state

    def test_seeded_run_is_bit_for_bit_reproducible(self):
        a = run_chaos(seed=13, ops=400, records=80)
        b = run_chaos(seed=13, ops=400, records=80)
        assert a.ok and b.ok
        assert a.digest() == b.digest()
        assert a.trace_digest == b.trace_digest

    def test_different_seeds_diverge(self):
        a = run_chaos(seed=1, ops=300, records=80)
        b = run_chaos(seed=2, ops=300, records=80)
        assert a.ok and b.ok
        assert a.digest() != b.digest()

    def test_tampering_always_detected_under_chaos(self):
        report = run_chaos(seed=5, ops=600, records=100, tamper_every=150)
        assert report.ok, report.hard_failures
        # 600 ops / tamper_every=150 -> four staged tampers; an undetected
        # one would be a hard failure, so ok + count means all were caught.
        assert report.integrity_detections == 4

    def test_quiet_plan_runs_clean(self):
        """With no faults scheduled, chaos degenerates to a plain YCSB run."""
        report = run_chaos(seed=9, ops=300, records=80, plan=FaultPlan(9))
        assert report.ok
        assert report.availability_errors == 0
        assert report.fault_fires == {}
        assert report.ops_ok == report.ops_attempted


class TestCrashDuringVerify:
    """Satellite: epochs never half-commit. A reboot at any point inside
    verify() leaves every client's settled epoch untouched, and recovery
    restores a store that closes epochs and serves reads/writes."""

    @pytest.mark.parametrize("offset", [0, 1, 2, 3])
    def test_reboot_mid_verify_never_half_commits(self, offset):
        db, client = small_fastver()
        db.verify()
        db.flush()
        ckpt = db.checkpoint()
        epoch_before = client.settled_epoch

        db.put(client, 42, b"mid-epoch")
        mid = db.put(client, 43, b"also-mid")
        install_faults(db, FaultPlan(0, {"ecall.reboot": [offset]}))
        with pytest.raises(EnclaveRebootError):
            db.verify()

        # The epoch did not settle for anyone, in whole or in part.
        assert client.settled_epoch == epoch_before
        assert not client.settled(mid.nonce)

        install_faults(db, None)
        db.recover(ckpt)

        # Recovered store: provisional work rolled back, full service back.
        db.put(client, 42, b"post-recovery")
        db.verify()
        db.flush()
        assert client.settled_epoch > epoch_before
        assert db.get(client, 42).payload == b"post-recovery"
        assert db.get(client, 1).payload == b"v1"

    def test_reboot_during_epoch_close_then_full_verify(self):
        """Acceptance criterion: reboot mid-epoch + recovery -> the store
        passes a full verify() and continues serving."""
        db, client = small_fastver()
        db.verify()
        db.flush()
        ckpt = db.checkpoint()

        for k in range(10, 20):
            db.put(client, k, b"epoch-payload-%d" % k)
        install_faults(db, FaultPlan(0, {"ecall.reboot": [2]}))
        with pytest.raises(EnclaveRebootError):
            db.verify()
        assert db.enclave.reboots == 1

        install_faults(db, None)
        db.recover(ckpt)
        before = client.settled_epoch
        for k in range(10, 20):
            db.put(client, k, b"replayed-%d" % k)
        db.verify()
        db.flush()
        for k in range(10, 20):
            assert db.get(client, k).payload == b"replayed-%d" % k
        db.verify()
        db.flush()
        assert client.settled_epoch > before


class TestServerChaosSoak:
    """The same tri-state soak, driven through the resilient serving
    pipeline: admission queue, deadlines, idempotent SDK retry, circuit
    breaker, and degraded-mode recovery all sit between the workload and
    the verifier, and none of them may manufacture a wrong answer."""

    def test_server_soak_holds_tristate_invariant(self):
        report = run_chaos(seed=7, ops=400, records=80, server=True)
        assert report.hard_failures == []
        assert report.ops_ok > 0

    def test_server_soak_is_bit_for_bit_reproducible(self):
        first = run_chaos(seed=11, ops=300, records=60, server=True)
        second = run_chaos(seed=11, ops=300, records=60, server=True)
        assert first.hard_failures == []
        assert first.digest() == second.digest()
        assert first.trace_digest == second.trace_digest

    def test_server_soak_differs_from_direct_mode(self):
        direct = run_chaos(seed=7, ops=300, records=60)
        served = run_chaos(seed=7, ops=300, records=60, server=True)
        assert direct.hard_failures == [] and served.hard_failures == []
        # Server mode arms its own fault points, so the trace diverges.
        assert direct.trace_digest != served.trace_digest

    def test_tampering_detected_through_the_pipeline(self):
        report = run_chaos(seed=23, ops=300, records=60, tamper_every=100,
                           server=True)
        assert report.hard_failures == []
        assert report.integrity_detections == 3

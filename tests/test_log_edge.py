"""Edge cases for the verification log and enclave interplay."""

from __future__ import annotations

import pytest

from repro.core.log import VerificationLog
from repro.enclave.enclave import SimulatedEnclave
from repro.enclave.sealed import SealedSlot


class EchoVerifier:
    """Trusted stub: records batches, echoes entry payloads."""

    def __init__(self, sealed: SealedSlot):
        self.batches: list = []

    def process_batch(self, verifier_id, entries):
        self.batches.append((verifier_id, list(entries)))
        return [args[0] for _, args in entries]


@pytest.fixture
def log():
    enclave = SimulatedEnclave(EchoVerifier)
    return VerificationLog(enclave, verifier_id=3, capacity=4), enclave


class TestVerificationLog:
    def test_append_buffers_until_capacity(self, log):
        vlog, enclave = log
        for i in range(3):
            vlog.append("op", i)
        assert vlog.pending == 3
        assert vlog.flushes == 0
        vlog.append("op", 3)  # hits capacity: auto-flush
        assert vlog.pending == 0
        assert vlog.flushes == 1

    def test_flush_empty_is_noop(self, log):
        vlog, enclave = log
        assert vlog.flush() == []
        assert vlog.flushes == 0

    def test_drain_returns_accumulated_results(self, log):
        vlog, enclave = log
        for i in range(6):
            vlog.append("op", i)
        results = vlog.drain()
        assert results == [0, 1, 2, 3, 4, 5]
        assert vlog.drain() == []  # drained

    def test_batches_carry_verifier_id(self, log):
        vlog, enclave = log
        vlog.append("op", 1)
        vlog.flush()
        assert enclave._program.batches[0][0] == 3

    def test_order_preserved_across_flushes(self, log):
        vlog, enclave = log
        for i in range(10):
            vlog.append("op", i)
        vlog.flush()
        seen = [args[0] for _, batch in enclave._program.batches
                for _, args in batch]
        assert seen == list(range(10))

    def test_capacity_validation(self, log):
        _, enclave = log
        with pytest.raises(ValueError):
            VerificationLog(enclave, 0, capacity=0)

    def test_log_entry_counter(self, log):
        from repro.instrument import COUNTERS
        vlog, _ = log
        before = COUNTERS.log_entries
        vlog.append("op", 1)
        vlog.append("op", 2)
        assert COUNTERS.log_entries == before + 2

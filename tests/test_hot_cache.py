"""Tests for the §6.1 hot-record caching tier (cache_hot_records mode)."""

from __future__ import annotations

import random

import pytest

from repro import FastVer, FastVerConfig, new_client
from repro.core.audit import audit
from repro.core.records import Aux, DataValue, Protection
from repro.errors import IntegrityError
from repro.instrument import COUNTERS


def hot_db(n_records=100, cache_capacity=64, n_workers=2):
    db = FastVer(
        FastVerConfig(key_width=16, n_workers=n_workers, partition_depth=3,
                      cache_capacity=cache_capacity, cache_hot_records=True),
        items=[(k, b"v%d" % k) for k in range(n_records)],
    )
    client = new_client(1)
    db.register_client(client)
    return db, client


class TestHotCaching:
    def test_repeat_access_is_crypto_free(self):
        db, client = hot_db()
        db.get(client, 5)
        db.flush()
        before = COUNTERS.snapshot()
        for _ in range(50):
            assert db.get(client, 5).payload == b"v5"
        db.flush()
        delta = COUNTERS.snapshot().diff(before)
        assert delta.merkle_hashes == 0
        assert delta.multiset_updates == 0
        assert delta.cache_hits == 50

    def test_puts_hit_the_cache_too(self):
        db, client = hot_db()
        db.put(client, 5, b"a")
        before = COUNTERS.snapshot()
        db.put(client, 5, b"b")
        assert db.get(client, 5).payload == b"b"
        delta = COUNTERS.snapshot().diff(before)
        assert delta.merkle_hashes == 0

    def test_record_is_marked_cached_in_store(self):
        db, client = hot_db()
        db.get(client, 5)
        aux = Aux.unpack(db.store.read_record(db.data_key(5)).aux)
        assert aux.state is Protection.CACHED

    def test_lru_cools_records_to_deferred(self):
        db, client = hot_db(n_records=200, cache_capacity=40)
        for k in range(120):
            db.get(client, k)
        db.flush()
        # Early keys were pushed out by later ones.
        early = Aux.unpack(db.store.read_record(db.data_key(0)).aux)
        assert early.state in (Protection.DEFERRED, Protection.MERKLE)
        db.verify()
        db.flush()

    def test_cached_records_survive_epoch_close(self):
        db, client = hot_db()
        db.put(client, 5, b"resident")
        db.verify()
        db.flush()
        # Still cached (ignored by verification, §5.2) and still correct.
        assert db.data_key(5) in db.cached_where
        assert db.get(client, 5).payload == b"resident"
        db.verify()
        db.flush()
        assert client.settled_epoch == 1

    def test_stale_store_copy_is_harmless(self):
        """While cached, the store's copy is stale by design; tampering
        with it changes nothing (the cache is authoritative), and the
        fresh value is written back at eviction."""
        db, client = hot_db()
        db.put(client, 5, b"fresh")
        record = db.store.read_record(db.data_key(5))
        record.value = DataValue(b"STALE-GARBAGE")
        assert db.get(client, 5).payload == b"fresh"
        db.verify()
        db.flush()
        assert client.settled_epoch == 0

    def test_tamper_after_cooling_detected(self):
        db, client = hot_db(n_records=200, cache_capacity=40)
        db.put(client, 0, b"precious")
        for k in range(100, 180):
            db.get(client, k)  # push key 0 out of the cache
        db.flush()
        key = db.data_key(0)
        assert key not in db.cached_where
        db.store.read_record(key).value = DataValue(b"EVIL")
        with pytest.raises(IntegrityError):
            db.get(client, 0)
            db.flush()
            db.verify()
            db.flush()

    def test_model_check_with_hot_caching(self):
        db, client = hot_db(n_records=120, cache_capacity=48, n_workers=3)
        model = {k: b"v%d" % k for k in range(120)}
        rng = random.Random(9)
        for step in range(700):
            k = rng.randrange(150)
            w = step % 3
            if rng.random() < 0.5:
                v = b"s%d" % step
                db.put(client, k, v, worker=w)
                model[k] = v
            else:
                assert db.get(client, k, worker=w).payload == model.get(k)
            if step % 200 == 199:
                db.verify()
        db.verify()
        db.flush()
        report = audit(db)
        assert report.ok, report.violations[:5]
        for k, v in model.items():
            assert db.get(client, k).payload == v

    def test_hit_rate_under_zipf(self):
        """Under a skewed workload most ops land in the cache — the §6.1
        rationale for the top tier."""
        from repro.workloads.distributions import ZipfianKeys
        db, client = hot_db(n_records=400, cache_capacity=80)
        dist = ZipfianKeys(400, theta=0.9, seed=2)
        COUNTERS.reset()
        for _ in range(1500):
            db.get(client, dist.sample())
        db.flush()
        hits = COUNTERS.cache_hits
        assert hits / 1500 > 0.5

"""Shared fixtures for the FastVer reproduction test suite."""

from __future__ import annotations

import pytest

from repro import FastVer, FastVerConfig, new_client
from repro.instrument import COUNTERS


@pytest.fixture(autouse=True)
def _reset_counters():
    """Each test starts from zeroed global work counters."""
    COUNTERS.reset()
    yield
    COUNTERS.reset()


def small_fastver(n_records: int = 100, n_workers: int = 2,
                  partition_depth: int | None = 3, cache_capacity: int = 64,
                  key_width: int = 16, batch_ops: int | None = None,
                  **kwargs):
    """A small loaded FastVer plus a registered client (test workhorse)."""
    db = FastVer(
        FastVerConfig(key_width=key_width, n_workers=n_workers,
                      cache_capacity=cache_capacity,
                      partition_depth=partition_depth, batch_ops=batch_ops,
                      **kwargs),
        items=[(k, b"v%d" % k) for k in range(n_records)],
    )
    client = new_client(1)
    db.register_client(client)
    return db, client


@pytest.fixture
def db_and_client():
    return small_fastver()

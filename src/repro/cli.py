"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``   — the quickstart flow (load, ops, tamper, detect)
* ``ycsb``   — run a YCSB workload against FastVer under the cost model
               and print throughput / verification latency
* ``audit``  — load a store, run a random workload, audit host invariants
* ``attacks``— run the byzantine attack gallery
* ``chaos``  — deterministic fault-injection soak asserting the tri-state
               invariant (verified / caught-tampering / recoverable)
* ``bench-failover`` — recovery-time objective: warm-standby failover vs
               cold checkpoint restore, recorded to BENCH_failover.json
* ``bench-batching`` — group-commit crossing amortization: modeled
               throughput across a batch-size sweep, recorded to
               BENCH_batching.json

These wrap the same public APIs the examples use; the CLI exists so a
downstream user can poke the system without writing code.
"""

from __future__ import annotations

import argparse
import sys

from repro import FastVer, FastVerConfig, new_client
from repro.instrument import COUNTERS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FastVer reproduction: a verified key-value store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="quickstart: ops, verify, tamper-detect")
    demo.add_argument("--records", type=int, default=1000)

    ycsb = sub.add_parser("ycsb", help="run a YCSB workload and print metrics")
    ycsb.add_argument("--workload", choices=["A", "B", "C", "E"], default="A")
    ycsb.add_argument("--records", type=int, default=10_000)
    ycsb.add_argument("--ops", type=int, default=20_000)
    ycsb.add_argument("--workers", type=int, default=4)
    ycsb.add_argument("--verify-every", type=int, default=None)
    ycsb.add_argument("--theta", type=float, default=0.9)
    ycsb.add_argument("--depth", type=int, default=4,
                      help="Merkle partition depth d")
    ycsb.add_argument("--modeled-records", type=int, default=None,
                      help="database size the cost model should assume")

    aud = sub.add_parser("audit", help="run ops then audit host invariants")
    aud.add_argument("--records", type=int, default=500)
    aud.add_argument("--ops", type=int, default=2_000)

    sub.add_parser("attacks", help="run the byzantine attack gallery")

    chaos = sub.add_parser(
        "chaos", help="deterministic fault-injection soak (tri-state check)")
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--ops", type=int, default=2000)
    chaos.add_argument("--records", type=int, default=200)
    chaos.add_argument("--tamper-every", type=int, default=None,
                       help="also tamper every N ops and demand detection")
    chaos.add_argument("--server", action="store_true",
                       help="drive ops through the resilient serving "
                            "pipeline (admission queue, deadlines, "
                            "idempotent retry, circuit breaker, "
                            "degraded mode) with its fault points armed")
    chaos.add_argument("--failover", action="store_true",
                       help="attach a warm standby (implies --server), arm "
                            "the replication fault points, and kill the "
                            "primary enclave twice mid-run so recovery "
                            "goes through verified failover")
    chaos.add_argument("--batched", action="store_true",
                       help="run the serving loop with group commit on "
                            "(implies --server): ops travel in bursts, "
                            "each settled by one multi-shard ecall, and "
                            "the oracle resolves put outcomes through "
                            "the idempotency table")
    chaos.add_argument("--check-deterministic", action="store_true",
                       help="run twice and require identical digests")

    bench_fo = sub.add_parser(
        "bench-failover",
        help="measure failover RTO vs cold checkpoint-restore RTO and "
             "write BENCH_failover.json")
    bench_fo.add_argument("--records", type=int, default=1200)
    bench_fo.add_argument("--ops", type=int, default=400)
    bench_fo.add_argument("--seed", type=int, default=7)
    bench_fo.add_argument("--out", default="BENCH_failover.json")

    bench_ba = sub.add_parser(
        "bench-batching",
        help="sweep group-commit batch sizes, assert the amortization "
             "curve, and write BENCH_batching.json")
    bench_ba.add_argument("--records", type=int, default=400)
    bench_ba.add_argument("--ops", type=int, default=2000)
    bench_ba.add_argument("--seed", type=int, default=7)
    bench_ba.add_argument("--out", default="BENCH_batching.json")
    return parser


def cmd_demo(args) -> int:
    from repro.core.records import DataValue
    from repro.errors import IntegrityError

    db = FastVer(FastVerConfig(key_width=32, n_workers=2, partition_depth=4),
                 items=[(k, b"value-%d" % k) for k in range(args.records)])
    client = new_client(1)
    db.register_client(client)
    db.put(client, 7, b"hello")
    print("get(7) ->", db.get(client, 7).payload)
    report = db.verify()
    db.flush()
    print(f"epoch {report.epoch} verified; client settled at epoch "
          f"{client.settled_epoch}")
    print("tampering with record 42 in the untrusted store...")
    record = db.store.read_record(db.data_key(42))
    record.value = DataValue(b"EVIL")
    try:
        db.get(client, 42)
        db.flush()
        db.verify()
        print("UNDETECTED (this should never print)")
        return 1
    except IntegrityError as exc:
        print("detected:", type(exc).__name__)
        return 0


def cmd_ycsb(args) -> int:
    from repro.sim.executor import SimulatedExecutor
    from repro.workloads.ycsb import WORKLOADS, YcsbGenerator

    spec = WORKLOADS[f"YCSB-{args.workload}"]
    COUNTERS.reset()
    db = FastVer(
        FastVerConfig(key_width=64, n_workers=args.workers,
                      partition_depth=args.depth),
        items=[(k, k.to_bytes(8, "big")) for k in range(args.records)],
    )
    client = new_client(1)
    db.register_client(client)
    generator = YcsbGenerator(
        spec, args.records,
        distribution="uniform" if args.theta == 0 else "zipfian",
        theta=args.theta)
    modeled = args.modeled_records or args.records
    executor = SimulatedExecutor(db, client, args.workers, modeled)
    result = executor.run(generator, args.ops,
                          verify_every=args.verify_every)
    m = result.metrics
    print(f"workload            YCSB-{args.workload} "
          f"(zipf θ={args.theta}) over {args.records} records")
    print(f"key operations      {m.key_ops}")
    print(f"throughput          {m.throughput_mops:.3f} Mops/s (simulated)")
    print(f"verifications       {m.n_verifications}")
    print(f"verification latency {m.verification_latency_s * 1e3:.3f} ms "
          f"(simulated)")
    print(f"verifier fraction   {m.verifier_fraction:.2f}")
    print(f"counters            {COUNTERS}")
    return 0


def cmd_audit(args) -> int:
    import random

    from repro.core.audit import audit

    db = FastVer(FastVerConfig(key_width=32, n_workers=2, partition_depth=4),
                 items=[(k, b"v%d" % k) for k in range(args.records)])
    client = new_client(1)
    db.register_client(client)
    rng = random.Random(0)
    for i in range(args.ops):
        k = rng.randrange(args.records * 2)
        if rng.random() < 0.5:
            db.put(client, k, b"x%d" % i, worker=i % 2)
        else:
            db.get(client, k, worker=i % 2)
        if i % 500 == 499:
            db.verify()
    db.flush()
    report = audit(db)
    print(f"records={report.records} cached={report.cached} "
          f"deferred={report.deferred} merkle={report.merkle}")
    if report.ok:
        print("audit: all host invariants hold")
        return 0
    for violation in report.violations[:20]:
        print("VIOLATION:", violation)
    return 1


def cmd_attacks(_args) -> int:
    import examples.attack_gallery as gallery  # pragma: no cover - thin
    gallery.main()
    return 0


def cmd_chaos(args) -> int:
    from repro.faults.chaos import run_chaos

    def once():
        return run_chaos(seed=args.seed, ops=args.ops, records=args.records,
                         tamper_every=args.tamper_every, server=args.server,
                         failover=args.failover, batched=args.batched)

    report = once()
    mode = ("failover" if args.failover
            else "batched server pipeline" if args.batched
            else "server pipeline" if args.server else "direct")
    print(f"chaos seed={report.seed} mode={mode} "
          f"ops={report.ops_attempted} ok={report.ops_ok}")
    print(f"availability errors  {report.availability_errors}")
    print(f"recoveries           {report.recoveries} "
          f"(salvages {report.salvages}, failovers {report.failovers})")
    print(f"integrity detections {report.integrity_detections}")
    print(f"receipts dropped     {report.receipts_dropped}")
    if args.failover:
        print(f"shipped batches      {report.shipped_batches} "
              f"(channel rejects {report.repl_rejects})")
    if report.unrecoverable:
        print("UNRECOVERABLE: the recovery ladder ran out of rungs; the "
              "error carries the fault seed and trace digest")
    print(f"fault fires          {report.fault_fires}")
    print(f"digest               {report.digest()}")
    if report.hard_failures:
        for failure in report.hard_failures:
            print("HARD FAILURE:", failure)
        print(f"FAILING SEED {report.seed}; injection trace digest "
              f"{report.trace_digest}")
        print(f"reproduce with: python -m repro chaos --seed {report.seed} "
              f"--ops {args.ops} --records {args.records}"
              + (f" --tamper-every {args.tamper_every}"
                 if args.tamper_every else "")
              + (" --server" if args.server else "")
              + (" --failover" if args.failover else "")
              + (" --batched" if args.batched else ""))
        return 1
    if args.check_deterministic:
        second = once()
        if second.digest() != report.digest():
            print("NON-DETERMINISTIC: second run digest",
                  second.digest())
            return 1
        print("deterministic: second run matched bit-for-bit")
    print("tri-state invariant held for every operation")
    return 0


def cmd_bench_failover(args) -> int:
    import json

    from repro.bench.failover import run_failover_bench

    result = run_failover_bench(records=args.records, ops=args.ops,
                                seed=args.seed)
    print(f"records               {result['records']} "
          f"(+{result['ops']} ops before failure)")
    print(f"restore RTO           {result['restore_rto_ticks']:.2f} ticks "
          f"(cold checkpoint restore)")
    print(f"failover RTO          {result['failover_rto_ticks']:.2f} ticks "
          f"(warm standby promotion)")
    print(f"ratio                 {result['ratio']:.4f} "
          f"(target < {result['target_ratio']})")
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if not result["ok"]:
        print("FAILED: failover RTO did not beat the restore RTO target")
        return 1
    return 0


def cmd_bench_batching(args) -> int:
    import json

    from repro.bench.batching import run_batching_bench

    result = run_batching_bench(records=args.records, ops=args.ops,
                                seed=args.seed)
    print(f"records               {result['records']} "
          f"({result['ops']} YCSB-A ops, {result['n_workers']} shards)")
    for row in result["rows"]:
        print(f"batch {row['batch']:>4}            "
              f"{row['crossings']:>5} crossings "
              f"(saved {row['crossings_saved']:>5}, "
              f"fill {row['batch_fill_avg']:>7.2f})  "
              f"{row['throughput_mops']:.3f} Mops/s modeled")
    print(f"throughput ratio      {result['ratio_64_over_1']:.2f}x "
          f"(batch 64 vs 1; target >= {result['target_ratio']})")
    print(f"crossings_saved       "
          f"{'monotone' if result['crossings_saved_monotone'] else 'NOT monotone'} "
          f"in batch size")
    cache = result["bitkey_cache"]
    print(f"bitkey memo           {cache['derive_ns_per_call']:.0f} ns/derive "
          f"-> {cache['memoized_ns_per_call']:.0f} ns memoized "
          f"({cache['hits']} hits / {cache['misses']} misses)")
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if not result["ok"]:
        print("FAILED: the amortization curve missed the acceptance bar")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "ycsb": cmd_ycsb,
        "audit": cmd_audit,
        "attacks": cmd_attacks,
        "chaos": cmd_chaos,
        "bench-failover": cmd_bench_failover,
        "bench-batching": cmd_bench_batching,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

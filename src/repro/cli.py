"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``   — the quickstart flow (load, ops, tamper, detect)
* ``ycsb``   — run a YCSB workload against FastVer under the cost model
               and print throughput / verification latency
* ``audit``  — load a store, run a random workload, audit host invariants
* ``attacks``— run the byzantine attack gallery
* ``chaos``  — deterministic fault-injection soak asserting the tri-state
               invariant (verified / caught-tampering / recoverable)
* ``bench-failover`` — recovery-time objective: warm-standby failover vs
               cold checkpoint restore, recorded to BENCH_failover.json
* ``bench-repair`` — mean-time-to-repair: single-page verified repair vs
               whole-store salvage/restore, plus the background scrub
               throughput tax, recorded to BENCH_repair.json
* ``bench-batching`` — group-commit crossing amortization: modeled
               throughput across a batch-size sweep, recorded to
               BENCH_batching.json
* ``metrics`` — one measured run with the observability layer armed:
               latency histograms (p50/p95/p99/p99.9), per-subsystem
               cost attribution, and run metrics, exported as JSON,
               Prometheus text, or a human-readable report
* ``trace``  — run a chaos scenario and query its span-based trace ring:
               filter by trace id / event kind, or reconstruct a full
               request lifecycle with ``--find-lifecycle``
* ``obs``    — the persistent observability pipeline: ``tail`` the
               trace spool of a scenario run, ``replay`` a persisted
               spool directory cold (asserting replay fidelity against
               the live ring), or print an ``slo-report`` of burn-rate
               alerts and exemplars from an SLO-armed run

These wrap the same public APIs the examples use; the CLI exists so a
downstream user can poke the system without writing code.
"""

from __future__ import annotations

import argparse
import sys

from repro import FastVer, FastVerConfig, new_client
from repro.instrument import COUNTERS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FastVer reproduction: a verified key-value store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="quickstart: ops, verify, tamper-detect")
    demo.add_argument("--records", type=int, default=1000)

    ycsb = sub.add_parser("ycsb", help="run a YCSB workload and print metrics")
    ycsb.add_argument("--workload", choices=["A", "B", "C", "E"], default="A")
    ycsb.add_argument("--records", type=int, default=10_000)
    ycsb.add_argument("--ops", type=int, default=20_000)
    ycsb.add_argument("--workers", type=int, default=4)
    ycsb.add_argument("--verify-every", type=int, default=None)
    ycsb.add_argument("--theta", type=float, default=0.9)
    ycsb.add_argument("--depth", type=int, default=4,
                      help="Merkle partition depth d")
    ycsb.add_argument("--modeled-records", type=int, default=None,
                      help="database size the cost model should assume")

    aud = sub.add_parser("audit", help="run ops then audit host invariants")
    aud.add_argument("--records", type=int, default=500)
    aud.add_argument("--ops", type=int, default=2_000)

    sub.add_parser("attacks", help="run the byzantine attack gallery")

    chaos = sub.add_parser(
        "chaos", help="deterministic fault-injection soak (tri-state check)")
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--ops", type=int, default=2000)
    chaos.add_argument("--records", type=int, default=200)
    chaos.add_argument("--tamper-every", type=int, default=None,
                       help="also tamper every N ops and demand detection")
    chaos.add_argument("--server", action="store_true",
                       help="drive ops through the resilient serving "
                            "pipeline (admission queue, deadlines, "
                            "idempotent retry, circuit breaker, "
                            "degraded mode) with its fault points armed")
    chaos.add_argument("--failover", action="store_true",
                       help="attach a warm standby (implies --server), arm "
                            "the replication fault points, and kill the "
                            "primary enclave twice mid-run so recovery "
                            "goes through verified failover")
    chaos.add_argument("--standbys", type=int, default=1,
                       help="replication-group size in --failover mode; "
                            "above 1 the soak arms the correlated "
                            "same-tick primary+standby double kill and "
                            "the lease-partition point, and demands "
                            "post-soak convergence to a single leased "
                            "leader")
    chaos.add_argument("--batched", action="store_true",
                       help="run the serving loop with group commit on "
                            "(implies --server): ops travel in bursts, "
                            "each settled by one multi-shard ecall, and "
                            "the oracle resolves put outcomes through "
                            "the idempotency table")
    chaos.add_argument("--pipelined", action="store_true",
                       help="pipeline the group commit (implies --batched): "
                            "per-shard flushes dispatch without resolving "
                            "tickets and their receipts stream back across "
                            "the following pumps; the burst loop drains "
                            "until every ticket settles")
    chaos.add_argument("--scrub", action="store_true",
                       help="arm the background integrity scrubber plus the "
                            "latent-rot fault points (device bitrot, "
                            "checkpoint-blob rot, repair failures); the "
                            "soak must end scrub-converged with zero "
                            "quarantined pages")
    chaos.add_argument("--obs", action="store_true",
                       help="arm the full observability pipeline: the SLO "
                            "burn-rate engine on the server (tight p99 "
                            "budget, so a stressed soak deterministically "
                            "fires) with the alert tallies and the "
                            "exemplar digest folded into the run digest")
    chaos.add_argument("--spool-dir", default=None, metavar="DIR",
                       help="persist the trace spool's JSONL segments to "
                            "DIR (query later with 'repro obs replay "
                            "--dir DIR --existing')")
    chaos.add_argument("--check-deterministic", action="store_true",
                       help="run twice and require identical digests")
    chaos.add_argument("--redteam", nargs="?", const="all", default=None,
                       metavar="TOPOLOGY",
                       help="run the distributed byzantine red-team matrix "
                            "instead of the random-fault soak: active "
                            "rollback/fork, receipt replay, split-brain, "
                            "double-lease courting, stale-replica replay, "
                            "shipping-fork, and dedup/batch tampering "
                            "campaigns, every one required to be detected. "
                            "TOPOLOGY is all (default), or a comma list of "
                            "direct, server, batched, failover, pipelined")
    chaos.add_argument("--json", action="store_true",
                       help="emit the report as machine-readable JSON "
                            "(CI-friendly; exit code still signals any "
                            "escape or hard failure)")

    bench_fo = sub.add_parser(
        "bench-failover",
        help="measure failover RTO vs cold checkpoint-restore RTO and "
             "write BENCH_failover.json")
    bench_fo.add_argument("--records", type=int, default=1200)
    bench_fo.add_argument("--ops", type=int, default=400)
    bench_fo.add_argument("--seed", type=int, default=7)
    bench_fo.add_argument("--out", default="BENCH_failover.json")

    bench_rp = sub.add_parser(
        "bench-repair",
        help="measure single-page repair MTTR vs salvage and cold-restore "
             "RTO plus the scrub throughput tax; write BENCH_repair.json")
    bench_rp.add_argument("--records", type=int, default=1200)
    bench_rp.add_argument("--ops", type=int, default=400)
    bench_rp.add_argument("--seed", type=int, default=7)
    bench_rp.add_argument("--out", default="BENCH_repair.json")

    bench_ba = sub.add_parser(
        "bench-batching",
        help="sweep group-commit batch sizes, assert the amortization "
             "curve, and write BENCH_batching.json")
    bench_ba.add_argument("--records", type=int, default=400)
    bench_ba.add_argument("--ops", type=int, default=2000)
    bench_ba.add_argument("--seed", type=int, default=7)
    bench_ba.add_argument("--out", default="BENCH_batching.json")

    met = sub.add_parser(
        "metrics",
        help="measured run with histograms + cost attribution; export "
             "JSON / Prometheus text / human-readable report")
    met.add_argument("--records", type=int, default=400)
    met.add_argument("--ops", type=int, default=2000)
    met.add_argument("--seed", type=int, default=7)
    met.add_argument("--workers", type=int, default=4)
    met.add_argument("--batch", type=int, default=8)
    met.add_argument("--maintain-every", type=int, default=250,
                     help="close an epoch (settling verified latencies) "
                          "every N ops")
    met.add_argument("--format", choices=["json", "prom", "text"],
                     default="text")
    met.add_argument("--out", default=None,
                     help="also write the export to this file")
    met.add_argument("--check", action="store_true",
                     help="validate the payload (schema, attribution "
                          "consistency, quantile monotonicity) and fail "
                          "on any problem")

    tr = sub.add_parser(
        "trace",
        help="run a chaos scenario and query the span-based trace ring")
    tr.add_argument("--seed", type=int, default=7)
    tr.add_argument("--ops", type=int, default=2000)
    tr.add_argument("--records", type=int, default=200)
    tr.add_argument("--tamper-every", type=int, default=None)
    tr.add_argument("--server", action="store_true")
    tr.add_argument("--failover", action="store_true")
    tr.add_argument("--batched", action="store_true")
    tr.add_argument("--pipelined", action="store_true")
    tr.add_argument("--trace", default=None,
                    help="print the full span for this trace id")
    tr.add_argument("--kind", default=None,
                    help="print only events of this kind")
    tr.add_argument("--last", type=int, default=None,
                    help="print the last N events in the ring")
    tr.add_argument("--find-lifecycle", default=None, metavar="KINDS",
                    help="comma-separated event kinds; find and print one "
                         "trace whose span covers all of them (exit 1 if "
                         "none does)")
    tr.add_argument("--json", action="store_true",
                    help="emit events as JSON lines instead of columns")

    obs = sub.add_parser(
        "obs",
        help="persistent observability pipeline: spool tail/replay and "
             "SLO burn-rate reports")
    obs.add_argument("action", choices=["tail", "replay", "slo-report"],
                     help="tail: run a scenario and print the spool's "
                          "last events; replay: read a persisted spool "
                          "cold and query it (running a scenario first "
                          "unless --existing); slo-report: run an "
                          "SLO-armed scenario and print the burn-rate "
                          "and exemplar report")
    obs.add_argument("--seed", type=int, default=7)
    obs.add_argument("--ops", type=int, default=2000)
    obs.add_argument("--records", type=int, default=200)
    obs.add_argument("--server", action="store_true")
    obs.add_argument("--failover", action="store_true")
    obs.add_argument("--batched", action="store_true")
    obs.add_argument("--pipelined", action="store_true")
    obs.add_argument("--scrub", action="store_true")
    obs.add_argument("--dir", default=None, metavar="DIR",
                     help="spool directory: written by the scenario run, "
                          "or read cold with --existing")
    obs.add_argument("--existing", action="store_true",
                     help="replay only: skip the scenario run and read "
                          "the spool already persisted in --dir")
    obs.add_argument("--trace", default=None,
                     help="print the full span for this trace id")
    obs.add_argument("--kind", default=None,
                     help="print only events of this kind")
    obs.add_argument("--last", type=int, default=None,
                     help="print only the last N events")
    obs.add_argument("--find-lifecycle", default=None, metavar="KINDS",
                     help="comma-separated event kinds; find and print "
                          "one trace whose spooled span covers all of "
                          "them (exit 1 if none does)")
    obs.add_argument("--json", action="store_true",
                     help="emit events as JSON lines instead of columns")
    return parser


def cmd_demo(args) -> int:
    from repro.core.records import DataValue
    from repro.errors import IntegrityError

    db = FastVer(FastVerConfig(key_width=32, n_workers=2, partition_depth=4),
                 items=[(k, b"value-%d" % k) for k in range(args.records)])
    client = new_client(1)
    db.register_client(client)
    db.put(client, 7, b"hello")
    print("get(7) ->", db.get(client, 7).payload)
    report = db.verify()
    db.flush()
    print(f"epoch {report.epoch} verified; client settled at epoch "
          f"{client.settled_epoch}")
    print("tampering with record 42 in the untrusted store...")
    record = db.store.read_record(db.data_key(42))
    record.value = DataValue(b"EVIL")
    try:
        db.get(client, 42)
        db.flush()
        db.verify()
        print("UNDETECTED (this should never print)")
        return 1
    except IntegrityError as exc:
        print("detected:", type(exc).__name__)
        return 0


def cmd_ycsb(args) -> int:
    from repro.sim.executor import SimulatedExecutor
    from repro.workloads.ycsb import WORKLOADS, YcsbGenerator

    spec = WORKLOADS[f"YCSB-{args.workload}"]
    COUNTERS.reset()
    db = FastVer(
        FastVerConfig(key_width=64, n_workers=args.workers,
                      partition_depth=args.depth),
        items=[(k, k.to_bytes(8, "big")) for k in range(args.records)],
    )
    client = new_client(1)
    db.register_client(client)
    generator = YcsbGenerator(
        spec, args.records,
        distribution="uniform" if args.theta == 0 else "zipfian",
        theta=args.theta)
    modeled = args.modeled_records or args.records
    executor = SimulatedExecutor(db, client, args.workers, modeled)
    result = executor.run(generator, args.ops,
                          verify_every=args.verify_every)
    m = result.metrics
    print(f"workload            YCSB-{args.workload} "
          f"(zipf θ={args.theta}) over {args.records} records")
    print(f"key operations      {m.key_ops}")
    print(f"throughput          {m.throughput_mops:.3f} Mops/s (simulated)")
    print(f"verifications       {m.n_verifications}")
    print(f"verification latency {m.verification_latency_s * 1e3:.3f} ms "
          f"(simulated)")
    print(f"verifier fraction   {m.verifier_fraction:.2f}")
    print(f"counters            {COUNTERS}")
    return 0


def cmd_audit(args) -> int:
    import random

    from repro.core.audit import audit

    db = FastVer(FastVerConfig(key_width=32, n_workers=2, partition_depth=4),
                 items=[(k, b"v%d" % k) for k in range(args.records)])
    client = new_client(1)
    db.register_client(client)
    rng = random.Random(0)
    for i in range(args.ops):
        k = rng.randrange(args.records * 2)
        if rng.random() < 0.5:
            db.put(client, k, b"x%d" % i, worker=i % 2)
        else:
            db.get(client, k, worker=i % 2)
        if i % 500 == 499:
            db.verify()
    db.flush()
    report = audit(db)
    print(f"records={report.records} cached={report.cached} "
          f"deferred={report.deferred} merkle={report.merkle}")
    if report.ok:
        print("audit: all host invariants hold")
        return 0
    for violation in report.violations[:20]:
        print("VIOLATION:", violation)
    return 1


def cmd_attacks(_args) -> int:
    import examples.attack_gallery as gallery  # pragma: no cover - thin
    gallery.main()
    return 0


def cmd_redteam(args) -> int:
    """The ``chaos --redteam`` mode: the zero-escape byzantine gate."""
    import json

    from repro.adversary.redteam import REDTEAM_TOPOLOGIES, run_redteam

    if args.redteam == "all":
        topologies = None
    else:
        topologies = tuple(t.strip() for t in args.redteam.split(","))
        unknown = [t for t in topologies if t not in REDTEAM_TOPOLOGIES]
        if unknown:
            print(f"unknown red-team topology {unknown[0]!r} "
                  f"(choose from {', '.join(REDTEAM_TOPOLOGIES)})")
            return 2

    def once():
        return run_redteam(seed=args.seed, topologies=topologies)

    report = once()
    if args.check_deterministic:
        second = once()
        if second.digest() != report.digest():
            print("NON-DETERMINISTIC: second red-team run digest",
                  second.digest())
            return 1
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"red-team seed={report.seed} "
              f"cells={len(report.verdicts)} escapes={report.escapes}")
        print(f"{'attack':<16} {'topology':<9} {'verdict':<9} "
              f"{'detector':<21} {'latency':>8}")
        for v in report.verdicts:
            verdict = "detected" if v.detected else "ESCAPED"
            print(f"{v.attack:<16} {v.topology:<9} {verdict:<9} "
                  f"{v.detector:<21} {v.latency_ticks:>8.1f}")
        print(f"digest               {report.digest()}")
    if report.forensics is not None:
        path = f"trace_forensics_seed{report.seed}.json"
        with open(path, "w") as fh:
            json.dump(report.forensics, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({len(report.forensics['events'])} trace "
              f"events for forensics)")
    if report.escapes:
        for v in report.verdicts:
            if v.escaped:
                print(f"ESCAPE: {v.attack} x {v.topology}: {v.note}")
        print(f"reproduce with: python -m repro chaos --redteam "
              f"{args.redteam} --seed {report.seed}")
        return 1
    if not args.json:
        print("zero escapes: every attack detected before anything "
              "settled")
    return 0


def cmd_chaos(args) -> int:
    from repro.faults.chaos import run_chaos

    if args.redteam is not None:
        return cmd_redteam(args)

    def once():
        return run_chaos(seed=args.seed, ops=args.ops, records=args.records,
                         tamper_every=args.tamper_every, server=args.server,
                         failover=args.failover, batched=args.batched,
                         standbys=args.standbys, scrub=args.scrub,
                         pipelined=args.pipelined, obs=args.obs,
                         spool_dir=args.spool_dir)

    report = once()
    mode = ("failover" if args.failover
            else "pipelined group commit" if args.pipelined
            else "batched server pipeline" if args.batched
            else "server pipeline" if args.server else "direct")
    if args.json:
        import json
        print(json.dumps({
            "seed": report.seed,
            "mode": mode,
            "ops_attempted": report.ops_attempted,
            "ops_ok": report.ops_ok,
            "availability_errors": report.availability_errors,
            "recoveries": report.recoveries,
            "salvages": report.salvages,
            "failovers": report.failovers,
            "integrity_detections": report.integrity_detections,
            "receipts_dropped": report.receipts_dropped,
            "shipped_batches": report.shipped_batches,
            "repl_rejects": report.repl_rejects,
            "standbys": report.standbys,
            "delta_resyncs": report.delta_resyncs,
            "snapshot_resyncs": report.snapshot_resyncs,
            "lease_expiries": report.lease_expiries,
            "leader_converged": report.leader_converged,
            "scrub_pages": report.scrub_pages,
            "scrub_mismatches": report.scrub_mismatches,
            "scrub_repairs": report.scrub_repairs,
            "scrub_converged": report.scrub_converged,
            "pipelined": report.pipelined,
            "pipelined_batches": report.pipelined_batches,
            "quarantined_final": report.quarantined_final,
            "provisional_serves": report.provisional_serves,
            "repair_ledger_digest": report.repair_ledger_digest,
            "obs_armed": report.obs_armed,
            "slo_alerts": report.slo_alerts,
            "slo_firing": report.slo_firing,
            "exemplar_digest": report.exemplar_digest,
            "spool_events": report.spool_events,
            "spool_replay_ok": report.spool_replay_ok,
            "unrecoverable": report.unrecoverable,
            "fault_fires": report.fault_fires,
            "hard_failures": report.hard_failures,
            "trace_digest": report.trace_digest,
            "digest": report.digest(),
            "ok": report.ok,
        }, indent=2, sort_keys=True))
    else:
        print(f"chaos seed={report.seed} mode={mode} "
              f"ops={report.ops_attempted} ok={report.ops_ok}")
        print(f"availability errors  {report.availability_errors}")
        print(f"recoveries           {report.recoveries} "
              f"(salvages {report.salvages}, failovers {report.failovers})")
        print(f"integrity detections {report.integrity_detections}")
        print(f"receipts dropped     {report.receipts_dropped}")
        if args.pipelined:
            print(f"pipelined batches    {report.pipelined_batches} "
                  f"dispatched with streamed settlement")
        if args.failover:
            print(f"shipped batches      {report.shipped_batches} "
                  f"(channel rejects {report.repl_rejects})")
            print(f"group resyncs        {report.delta_resyncs} delta, "
                  f"{report.snapshot_resyncs} snapshot "
                  f"({report.standbys} standby(s), "
                  f"{report.lease_expiries} lease expiries)")
            if not report.leader_converged:
                print("LEADER NOT CONVERGED: the group did not settle on "
                      "a single leased leader after the soak")
        if args.scrub:
            print(f"scrub                {report.scrub_pages} pages, "
                  f"{report.scrub_mismatches} quarantined, "
                  f"{report.scrub_repairs} repaired "
                  f"({report.provisional_serves} provisional serves "
                  f"refuted before settlement)")
            print(f"scrub convergence    "
                  f"{'converged' if report.scrub_converged else 'DID NOT CONVERGE'}, "
                  f"{report.quarantined_final} page(s) left quarantined")
            print(f"repair ledger        {report.repair_ledger_digest}")
        print(f"trace spool          {report.spool_events} events retained "
              f"(replay {'ok' if report.spool_replay_ok else 'BROKEN'}"
              + (f", persisted to {args.spool_dir}" if args.spool_dir
                 else "") + ")")
        if args.obs:
            print(f"slo                  {report.slo_alerts} alert(s) fired"
                  + (f", still firing: {', '.join(report.slo_firing)}"
                     if report.slo_firing else ", none firing at end"))
            print(f"exemplars            {report.exemplar_digest}")
        if report.unrecoverable:
            print("UNRECOVERABLE: the recovery ladder ran out of rungs; "
                  "the error carries the fault seed and trace digest")
        print(f"fault fires          {report.fault_fires}")
        print(f"digest               {report.digest()}")
    if report.forensics is not None:
        import json
        path = f"trace_forensics_seed{report.seed}.json"
        with open(path, "w") as fh:
            json.dump(report.forensics, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path} ({len(report.forensics['events'])} trace "
              f"events for forensics)")
    if report.hard_failures:
        for failure in report.hard_failures:
            print("HARD FAILURE:", failure)
        print(f"FAILING SEED {report.seed}; injection trace digest "
              f"{report.trace_digest}")
        print(f"reproduce with: python -m repro chaos --seed {report.seed} "
              f"--ops {args.ops} --records {args.records}"
              + (f" --tamper-every {args.tamper_every}"
                 if args.tamper_every else "")
              + (" --server" if args.server else "")
              + (" --failover" if args.failover else "")
              + (f" --standbys {args.standbys}" if args.standbys != 1 else "")
              + (" --batched" if args.batched else "")
              + (" --pipelined" if args.pipelined else "")
              + (" --scrub" if args.scrub else "")
              + (" --obs" if args.obs else ""))
        return 1
    if args.check_deterministic:
        second = once()
        if second.digest() != report.digest():
            print("NON-DETERMINISTIC: second run digest",
                  second.digest())
            return 1
        if not args.json:
            print("deterministic: second run matched bit-for-bit")
    if not args.json:
        print("tri-state invariant held for every operation")
    return 0


def cmd_bench_failover(args) -> int:
    import json

    from repro.bench.failover import run_failover_bench

    result = run_failover_bench(records=args.records, ops=args.ops,
                                seed=args.seed)
    print(f"records               {result['records']} "
          f"(+{result['ops']} ops before failure)")
    print(f"restore RTO           {result['restore_rto_ticks']:.2f} ticks "
          f"(cold checkpoint restore)")
    print(f"failover RTO          {result['failover_rto_ticks']:.2f} ticks "
          f"(warm standby promotion)")
    print(f"ratio                 {result['ratio']:.4f} "
          f"(target < {result['target_ratio']})")
    q = result["quorum"]
    print(f"quorum RTO            {q['rto_ticks']:.2f} ticks "
          f"(N={q['n_standbys']} group, {q['multiple_of_single']:.2f}x "
          f"single-standby, max {q['max_multiple']}x)")
    print(f"delta resync          {q['delta_resync_ticks']:.2f} ticks vs "
          f"snapshot {q['snapshot_resync_ticks']:.2f} "
          f"({q['delta_speedup']:.1f}x faster, "
          f"floor {q['min_delta_speedup']}x)")
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if not result["ok"]:
        print("FAILED: an RTO or resync criterion missed its target "
              "(ratio, quorum multiple, or delta speedup)")
        return 1
    return 0


def cmd_bench_repair(args) -> int:
    import json

    from repro.bench.repair import run_repair_bench

    result = run_repair_bench(records=args.records, ops=args.ops,
                              seed=args.seed)
    detail = result["repair_detail"]
    print(f"records               {result['records']} "
          f"(+{result['ops']} ops before the rot)")
    print(f"repair MTTR           {result['repair_mttr_ticks']:.2f} ticks "
          f"(1 page from {detail['source']}, tier {detail['tier']})")
    print(f"salvage RTO           {result['salvage_rto_ticks']:.2f} ticks "
          f"(lenient log-scan rebuild)")
    print(f"restore RTO           {result['restore_rto_ticks']:.2f} ticks "
          f"(cold checkpoint restore)")
    print(f"MTTR vs salvage       {result['mttr_vs_salvage']:.4f} "
          f"(max {result['max_mttr_vs_salvage']})")
    print(f"MTTR vs restore       {result['mttr_vs_restore']:.4f} "
          f"(max {result['max_mttr_vs_restore']})")
    print(f"scrub overhead        {result['scrub_overhead'] * 100:.1f}% "
          f"op-phase ticks, scrub-on vs off "
          f"(max {result['max_scrub_overhead'] * 100:.0f}%)")
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if not result["ok"]:
        print("FAILED: a repair-MTTR or scrub-overhead criterion missed "
              "its target")
        return 1
    return 0


def cmd_bench_batching(args) -> int:
    import json

    from repro.bench.batching import run_batching_bench

    result = run_batching_bench(records=args.records, ops=args.ops,
                                seed=args.seed)
    print(f"records               {result['records']} "
          f"({result['ops']} YCSB-A ops, {result['n_workers']} shards)")
    for row in result["rows"]:
        print(f"batch {row['batch']:>4}            "
              f"{row['crossings']:>5} crossings "
              f"(saved {row['crossings_saved']:>5}, "
              f"fill {row['batch_fill_avg']:>7.2f})  "
              f"{row['throughput_mops']:.3f} Mops/s modeled")
    print(f"throughput ratio      {result['ratio_64_over_1']:.2f}x "
          f"(batch 64 vs 1; target >= {result['target_ratio']})")
    print(f"crossings_saved       "
          f"{'monotone' if result['crossings_saved_monotone'] else 'NOT monotone'} "
          f"in batch size")
    cache = result["bitkey_cache"]
    print(f"bitkey memo           {cache['derive_ns_per_call']:.0f} ns/derive "
          f"-> {cache['memoized_ns_per_call']:.0f} ns memoized "
          f"({cache['hits']} hits / {cache['misses']} misses)")
    overhead = result["tracing_overhead"]
    print(f"tracing overhead      "
          f"{overhead['relative_delta'] * 100:.2f}% modeled-throughput "
          f"delta at batch {overhead['batch']} "
          f"(bound {overhead['bound'] * 100:.0f}%)")
    for row in result["pipelined_rows"]:
        print(f"pipelined {row['batch']:>4}        "
              f"{row['crossings']:>5} crossings "
              f"({row['batches_pipelined']} streamed batches, "
              f"inflight max {row['inflight_batches_max']})  "
              f"{row['throughput_mops']:.3f} Mops/s modeled")
    print(f"pipelined ratio       "
          f"{result['pipelined_ratio_over_sync64']:.2f}x over sync batch-64 "
          f"at batch {result['pipelined_best_batch']} "
          f"(target >= {result['pipelined_target_ratio']}; "
          f"admission-wait p95 {result['pipelined_wait_p95']:.0f} vs "
          f"{result['sync64_wait_p95']:.0f} ticks)")
    frontier = result["adaptive_frontier"]
    for row in frontier["rows"]:
        label = (f"static {row['batch']:>4}" if row["mode"] == "static"
                 else "adaptive   ")
        print(f"frontier {label}   p99 {row['p99_verified_ticks']:>7.1f} ticks  "
              f"{row['throughput_mops']:.3f} Mops/s modeled "
              f"({row['epoch_closes']} epoch closes)")
    print(f"adaptive frontier     budget {frontier['budget_ticks']:.0f} ticks "
          f"(slack {frontier['budget_slack']:.2f}) "
          f"{'held' if frontier['adaptive_holds_budget'] else 'MISSED'}; "
          f"{'beats' if frontier['adaptive_beats_meeting_statics'] else 'LOSES TO'}"
          f" statics meeting budget {frontier['static_meeting_budget']}")
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if not result["ok"]:
        print("FAILED: the amortization curve missed the acceptance bar")
        return 1
    return 0


def cmd_metrics(args) -> int:
    import json

    from repro.obs.export import check_payload, to_prometheus
    from repro.obs.profile import CostAttribution
    from repro.obs.runner import run_instrumented

    run = run_instrumented(records=args.records, ops=args.ops,
                           seed=args.seed, n_workers=args.workers,
                           batch=args.batch,
                           maintain_every=args.maintain_every)
    payload = run.payload()
    if args.format == "json":
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    elif args.format == "prom":
        rendered = to_prometheus(payload)
    else:
        m = payload["metrics"]
        lat = payload["latency"]
        att = payload["attribution"]
        lines = [
            f"run                  {args.ops} YCSB-A ops over "
            f"{args.records} records (seed {args.seed}, "
            f"batch {args.batch}, {args.workers} shards)",
            f"throughput           {m['throughput_mops']:.3f} Mops/s "
            f"(modeled)",
            f"verifier fraction    {m['verifier_fraction']:.2f}",
            f"verification latency {m['verification_latency_s'] * 1e3:.3f} ms",
            "",
            "latency histograms (simulated):",
        ]
        for name in sorted(lat):
            s = lat[name]
            lines.append(
                f"  {name:<16} n={s['count']:<6} p50={s['p50']:<8g} "
                f"p95={s['p95']:<8g} p99={s['p99']:<8g} "
                f"p99.9={s['p99.9']:<8g} ({s['unit']})")
        lines += [""]
        attribution = CostAttribution(parts=dict(att["parts_ns"]),
                                      model_total_ns=att["model_total_ns"])
        lines.append(attribution.flame_report())
        rendered = "\n".join(lines) + "\n"
    sys.stdout.write(rendered)
    if args.out:
        with open(args.out, "w") as fh:
            if args.format in ("prom", "text"):
                fh.write(rendered)
            else:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        problems = check_payload(payload)
        if problems:
            for problem in problems:
                print("CHECK FAILED:", problem)
            return 1
        print("payload check: ok")
    return 0


def _print_events(events, as_json: bool) -> None:
    import json

    for event in events:
        if as_json:
            print(json.dumps(event.as_dict(), sort_keys=True))
        else:
            detail = " ".join(f"{k}={v}" for k, v in event.detail.items())
            trace = event.trace if event.trace is not None else "-"
            print(f"{event.ts:>12.1f} {event.kind:<9} {trace:<16} {detail}")


def cmd_trace(args) -> int:
    from repro.faults.chaos import run_chaos
    from repro.obs import TRACER

    run_chaos(seed=args.seed, ops=args.ops, records=args.records,
              tamper_every=args.tamper_every, server=args.server,
              failover=args.failover, batched=args.batched,
              pipelined=args.pipelined)
    print(f"# trace ring: {len(TRACER)} events held, "
          f"{TRACER.dropped} dropped (capacity {TRACER.capacity})")
    if args.find_lifecycle:
        kinds = {k.strip() for k in args.find_lifecycle.split(",") if k.strip()}
        trace = TRACER.find_lifecycle(kinds)
        if trace is None:
            print(f"no trace covers all of: {sorted(kinds)}")
            return 1
        print(f"# lifecycle trace {trace} covers {sorted(kinds)}:")
        _print_events(TRACER.lifecycle(trace), args.json)
        return 0
    events = TRACER.events(trace=args.trace, kind=args.kind, last=args.last)
    if not events:
        print("no events matched the filter")
        return 1
    _print_events(events, args.json)
    return 0


def cmd_obs(args) -> int:
    """The ``obs`` command: spool tail/replay and SLO burn-rate reports."""
    from repro.obs import LATENCIES, TRACER
    from repro.obs.sink import SpoolReader, replay_fidelity

    def run_scenario(obs_armed: bool):
        from repro.faults.chaos import run_chaos
        return run_chaos(seed=args.seed, ops=args.ops, records=args.records,
                         server=args.server, failover=args.failover,
                         batched=args.batched, pipelined=args.pipelined,
                         scrub=args.scrub, obs=obs_armed,
                         spool_dir=args.dir)

    def query(source) -> int:
        if args.find_lifecycle:
            kinds = {k.strip() for k in args.find_lifecycle.split(",")
                     if k.strip()}
            trace = source.find_lifecycle(kinds)
            if trace is None:
                print(f"no spooled trace covers all of: {sorted(kinds)}")
                return 1
            print(f"# lifecycle trace {trace} covers {sorted(kinds)}:")
            _print_events(source.lifecycle(trace), args.json)
            return 0
        events = source.events(trace=args.trace, kind=args.kind,
                               last=args.last)
        if not events:
            print("no spooled events matched the filter")
            return 1
        _print_events(events, args.json)
        return 0

    if args.action == "tail":
        run_scenario(obs_armed=False)
        spool = TRACER.sink
        print(f"# spool: {spool.stats()}")
        if args.trace or args.kind or args.find_lifecycle:
            return query(spool)
        _print_events(spool.last(args.last if args.last is not None
                                 else 20), args.json)
        return 0

    if args.action == "replay":
        if args.dir is None:
            print("obs replay needs --dir (the spool directory)")
            return 2
        if not args.existing:
            run_scenario(obs_armed=False)
        try:
            reader = SpoolReader(args.dir)
        except FileNotFoundError as exc:
            print(f"ERROR: {exc}")
            return 2
        print(f"# replayed {len(reader)} events from {args.dir}")
        if not args.existing:
            # Cold reader vs the still-live ring: the replay contract.
            if not replay_fidelity(TRACER, reader):
                print("REPLAY FIDELITY BROKEN: a span in the ring is not "
                      "reconstructable from the persisted spool")
                return 1
            print("# replay fidelity: every live span reconstructed "
                  "from disk")
        if args.trace or args.kind or args.find_lifecycle or args.last:
            return query(reader)
        return 0

    # slo-report: run the scenario with the SLO engine armed.
    report = run_scenario(obs_armed=True)
    print(f"slo report (chaos seed={args.seed}, "
          f"{'server' if args.server or args.batched or args.failover or args.pipelined else 'direct'} "
          f"mode, {args.ops} ops)")
    print(f"alerts fired         {report.slo_alerts}")
    print(f"firing at end        "
          f"{', '.join(report.slo_firing) if report.slo_firing else '-'}")
    print(f"exemplar digest      {report.exemplar_digest}")
    print(f"spool                {report.spool_events} events "
          f"(replay {'ok' if report.spool_replay_ok else 'BROKEN'})")
    for event in TRACER.sink.events(kind="slo") if TRACER.sink else []:
        d = event.detail
        print(f"  t={event.ts:>10.1f} {d.get('objective', '?'):<22} "
              f"-> {d.get('state', '?'):<10} "
              f"fast={d.get('fast_burn', 0):>8.2f} "
              f"slow={d.get('slow_burn', 0):>8.2f}")
    exemplars = LATENCIES.exemplars()
    print(f"exemplars retained   {len(exemplars)}")
    for ex in exemplars:
        print(f"  {ex.name:<16} {ex.kind:<9} at={ex.at:<7} "
              f"value={ex.value:<10.1f} trace={ex.trace}")
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "ycsb": cmd_ycsb,
        "audit": cmd_audit,
        "attacks": cmd_attacks,
        "chaos": cmd_chaos,
        "bench-failover": cmd_bench_failover,
        "bench-repair": cmd_bench_repair,
        "bench-batching": cmd_bench_batching,
        "metrics": cmd_metrics,
        "trace": cmd_trace,
        "obs": cmd_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

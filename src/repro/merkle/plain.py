"""Classic dense Merkle tree — the "M" baseline of §8.5 and §4.1.

A complete binary hash tree over an integer key domain ``0..capacity-1``.
The verifier holds only the root hash; every read is validated against a
sibling path (log n hashes) and every update recomputes the root (log n
hashes) — with the root as the global serialization point the paper calls
out as the Merkle bottleneck (performance goals P2/P4).

This is deliberately the textbook construction, kept separate from the
record-encoded sparse tree so the drill-down benchmark (Fig 14b) compares
the real thing.
"""

from __future__ import annotations

from repro.crypto.hashing import hash_fields
from repro.errors import HashMismatchError
from repro.instrument import COUNTERS


def _leaf_hash(index: int, payload: bytes | None) -> bytes:
    tag = b"absent" if payload is None else payload
    return hash_fields(b"leaf", index.to_bytes(8, "big"), tag)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hash_fields(b"node", left, right)


class PlainMerkleTree:
    """Host-side dense Merkle tree (untrusted storage of all hashes)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.depth = max(1, (capacity - 1).bit_length())
        self._leaves = 1 << self.depth
        # levels[0] = leaf hashes, levels[depth] = [root]
        self._values: list[bytes | None] = [None] * self.capacity
        base = [_leaf_hash(i, None) for i in range(self._leaves)]
        self.levels: list[list[bytes]] = [base]
        while len(self.levels[-1]) > 1:
            prev = self.levels[-1]
            self.levels.append(
                [_node_hash(prev[2 * i], prev[2 * i + 1])
                 for i in range(len(prev) // 2)]
            )

    @property
    def root_hash(self) -> bytes:
        return self.levels[-1][0]

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------
    def value(self, index: int) -> bytes | None:
        self._check_index(index)
        return self._values[index]

    def proof(self, index: int) -> list[bytes]:
        """Sibling hashes from leaf level to just below the root."""
        self._check_index(index)
        path: list[bytes] = []
        pos = index
        for level in self.levels[:-1]:
            path.append(level[pos ^ 1])
            pos //= 2
        return path

    def apply_update(self, index: int, payload: bytes | None) -> None:
        """Install a new leaf payload and recompute the hash path."""
        self._check_index(index)
        self._values[index] = payload
        h = _leaf_hash(index, payload)
        pos = index
        for depth, level in enumerate(self.levels[:-1]):
            level[pos] = h
            sibling = level[pos ^ 1]
            left, right = (h, sibling) if pos % 2 == 0 else (sibling, h)
            h = _node_hash(left, right)
            pos //= 2
        self.levels[-1][0] = h

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(f"index {index} out of range 0..{self.capacity - 1}")


class PlainMerkleVerifier:
    """Trusted side: the root hash plus stateless path checking."""

    def __init__(self, root_hash: bytes):
        self.root_hash = root_hash

    def verify_read(self, index: int, payload: bytes | None,
                    proof: list[bytes]) -> None:
        """Check a claimed (index, payload) against the pinned root."""
        if self._fold(index, payload, proof) != self.root_hash:
            raise HashMismatchError(f"merkle path check failed for index {index}")

    def apply_update(self, index: int, old_payload: bytes | None,
                     new_payload: bytes | None, proof: list[bytes]) -> None:
        """Validate the old value, then advance the root to the new one.

        This is the serialized root update of §4.1 — every writer funnels
        through this method, which is exactly the contention the paper's
        enhancements remove.
        """
        self.verify_read(index, old_payload, proof)
        self.root_hash = self._fold(index, new_payload, proof)

    @staticmethod
    def _fold(index: int, payload: bytes | None, proof: list[bytes]) -> bytes:
        h = _leaf_hash(index, payload)
        pos = index
        for sibling in proof:
            left, right = (h, sibling) if pos % 2 == 0 else (sibling, h)
            h = _node_hash(left, right)
            pos //= 2
        return h


class PlainMerkleStore:
    """End-to-end "M" baseline: host tree + trusted root, no caching.

    ``get``/``put`` run the full path protocol per operation; hash work is
    counted through the global counters so the drill-down benchmark can
    price it.
    """

    def __init__(self, capacity: int):
        self.host = PlainMerkleTree(capacity)
        self.verifier = PlainMerkleVerifier(self.host.root_hash)

    def get(self, index: int) -> bytes | None:
        COUNTERS.ops += 1
        payload = self.host.value(index)
        self.verifier.verify_read(index, payload, self.host.proof(index))
        return payload

    def put(self, index: int, payload: bytes) -> None:
        COUNTERS.ops += 1
        old = self.host.value(index)
        proof = self.host.proof(index)
        self.verifier.apply_update(index, old, payload, proof)
        self.host.apply_update(index, payload)
        if self.host.root_hash != self.verifier.root_hash:
            raise HashMismatchError("host/verifier root divergence after update")

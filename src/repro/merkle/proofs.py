"""Path proofs over the record-encoded sparse Merkle tree (Example 4.1).

Before verifier caching, the way to validate a read is: the host ships the
records along the root-to-leaf path, and the verifier — holding only the
root record — checks each hash link. This module implements that stateless
protocol. FastVer proper replaces it with cached add/evict (§4.3); these
proofs remain useful for auditing, for the non-cached baseline, and for
cross-checking the record encoding in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.keys import BitKey
from repro.core.records import DataValue, MerkleValue, Value, value_hash
from repro.errors import HashMismatchError, StructuralError
from repro.merkle.sparse import ABSENT_NULL, ABSENT_SPLIT, FOUND, RecordSource, lookup


@dataclass
class PathProof:
    """A proof about data key ``key`` against a pinned root record value.

    ``records`` lists (merkle_key, merkle_value) along the descent, root
    excluded; for FOUND proofs ``leaf_value`` is the data value; for
    ABSENT_SPLIT the last visited pointer (bypassing the key) is evidence
    of absence.
    """

    key: BitKey
    kind: str
    records: list[tuple[BitKey, MerkleValue]]
    leaf_value: DataValue | None = None


def generate_proof(source: RecordSource, key: BitKey) -> PathProof:
    """Honest host: assemble the proof for a data key."""
    result = lookup(source, key)
    records: list[tuple[BitKey, MerkleValue]] = []
    for node in result.path[1:]:  # root excluded: verifier has it
        value = source(node)
        assert isinstance(value, MerkleValue)
        records.append((node, value))
    leaf: DataValue | None = None
    if result.kind == FOUND:
        v = source(key)
        if not isinstance(v, DataValue):
            raise StructuralError(f"leaf {key!r} is not a data record")
        leaf = v
    return PathProof(key, result.kind, records, leaf)


def verify_proof(root_value: MerkleValue, proof: PathProof) -> DataValue | None:
    """Trusted side: check a proof against the pinned root record value.

    Returns the proven value (None when the proof shows absence). Raises on
    any inconsistency — a wrong hash, a structural lie, or a proof whose
    shape does not actually decide the key.
    """
    key = proof.key
    supplied = dict(proof.records)
    node = BitKey.root()
    node_value: Value = root_value
    while True:
        assert isinstance(node_value, MerkleValue)
        side = key.direction_from(node)
        ptr = node_value.pointer(side)
        if ptr is None:
            if proof.kind != ABSENT_NULL:
                raise StructuralError("proof kind disagrees with null pointer")
            return None
        if ptr.key == key:
            if proof.kind != FOUND or proof.leaf_value is None:
                raise StructuralError("proof kind disagrees with found pointer")
            if value_hash(proof.leaf_value) != ptr.hash:
                raise HashMismatchError(f"leaf hash mismatch for {key!r}")
            return proof.leaf_value
        if ptr.key.is_proper_ancestor_of(key):
            if ptr.key not in supplied:
                raise StructuralError(f"proof missing record for {ptr.key!r}")
            child_value = supplied[ptr.key]
            if value_hash(child_value) != ptr.hash:
                raise HashMismatchError(f"hash mismatch at {ptr.key!r}")
            node, node_value = ptr.key, child_value
            continue
        # Pointer bypasses the key: absence by split evidence.
        if proof.kind != ABSENT_SPLIT:
            raise StructuralError("proof kind disagrees with split evidence")
        return None

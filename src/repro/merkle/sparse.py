"""Host-side sparse Merkle tree logic over record encoding (§4.1–4.2).

The *records* of the tree live in the untrusted store; this module contains
the navigation an honest host performs to serve operations:

* :func:`lookup` — descend from the root along pointers to classify a data
  key as present / absent-at-null-side / absent-needs-split, returning the
  Merkle path that a verifier interaction will need;
* :func:`build_tree` — bulk-construct the Patricia tree for a sorted batch
  of records (O(n) hash computations), used to initialize large databases
  without pushing every record through the verifier cache machinery.

Nothing here is trusted: the verifier re-checks every structural claim
(`repro.core.merkle_mode`), and the adversary tests feed it corrupted
navigation results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.keys import BitKey
from repro.core.records import DataValue, MerkleValue, Pointer, Value, value_hash
from repro.errors import StoreError

#: How a lookup terminated.
FOUND = "found"
ABSENT_NULL = "absent-null"        # the covering pointer side is null
ABSENT_SPLIT = "absent-split"      # a pointer exists but bypasses the key

RecordSource = Callable[[BitKey], Value | None]


@dataclass
class LookupResult:
    """Outcome of descending the tree toward ``key``.

    ``path`` lists the Merkle keys visited, root first; ``terminal`` is the
    last Merkle node examined (the tree parent for FOUND, the insertion
    point otherwise); ``bypass`` is the pointer target that proves absence
    in the ABSENT_SPLIT case.
    """

    kind: str
    key: BitKey
    path: list[BitKey]
    terminal: BitKey
    bypass: BitKey | None = None


def lookup(source: RecordSource, key: BitKey) -> LookupResult:
    """Descend from the root following pointers toward a data key."""
    node = BitKey.root()
    path = [node]
    while True:
        value = source(node)
        if not isinstance(value, MerkleValue):
            raise StoreError(f"merkle record missing or malformed at {node!r}")
        side = key.direction_from(node)
        ptr = value.pointer(side)
        if ptr is None:
            return LookupResult(ABSENT_NULL, key, path, node)
        if ptr.key == key:
            return LookupResult(FOUND, key, path, node)
        if ptr.key.is_proper_ancestor_of(key):
            node = ptr.key
            path.append(node)
            continue
        return LookupResult(ABSENT_SPLIT, key, path, node, bypass=ptr.key)


def merkle_parent_of(source: RecordSource, key: BitKey) -> BitKey:
    """The tree parent (the Merkle node whose pointer targets ``key``).

    Works for data keys and Merkle keys alike; raises if the key is not in
    the tree (the root has no parent).
    """
    if key.is_root:
        raise StoreError("the root has no tree parent")
    node = BitKey.root()
    while True:
        value = source(node)
        if not isinstance(value, MerkleValue):
            raise StoreError(f"merkle record missing or malformed at {node!r}")
        ptr = value.pointer(key.direction_from(node))
        if ptr is None:
            raise StoreError(f"{key!r} is not reachable in the tree")
        if ptr.key == key:
            return node
        if ptr.key.is_proper_ancestor_of(key):
            node = ptr.key
            continue
        raise StoreError(f"{key!r} is not reachable in the tree")


def path_to_root(source: RecordSource, key: BitKey) -> list[BitKey]:
    """Merkle keys from the root down to (excluding) ``key``.

    Works for data keys and internal Merkle keys; the key must be in the
    tree (the descent follows pointers, so it also works while child hashes
    are lazily stale — only the *structure* is read).
    """
    if key.is_root:
        return []
    result = lookup(source, key)
    if result.kind != FOUND:
        raise StoreError(f"{key!r} is not in the tree")
    return result.path


def build_tree(items: list[tuple[BitKey, DataValue]],
               counters=None) -> tuple[dict[BitKey, MerkleValue], MerkleValue]:
    """Construct the Patricia sparse Merkle tree for sorted data records.

    Returns ``(merkle_records, root_value)`` where ``merkle_records`` maps
    each internal Merkle key (root excluded) to its value, and
    ``root_value`` is the root record's value the verifier will pin.
    One :func:`value_hash` per node/leaf — O(n) total.
    """
    keys = [k for k, _ in items]
    if keys != sorted(keys):
        raise ValueError("build_tree requires items sorted by key")
    if len(set(keys)) != len(keys):
        raise ValueError("build_tree requires distinct keys")
    values = dict(items)
    records: dict[BitKey, MerkleValue] = {}

    def build_slice(lo: int, hi: int) -> Pointer:
        """Build the subtree for keys[lo:hi] (non-empty); return the pointer
        a parent should hold for it."""
        if hi - lo == 1:
            key = keys[lo]
            return Pointer(key, value_hash(values[key], counters=counters))
        node = keys[lo].lca(keys[hi - 1])
        # Partition at the branch bit: left half has 0 at depth len(node).
        split = lo
        while split < hi and keys[split].bit(node.length) == 0:
            split += 1
        if split == lo or split == hi:
            raise ValueError("LCA computation failed to split the slice")
        value = MerkleValue(build_slice(lo, split), build_slice(split, hi))
        records[node] = value
        return Pointer(node, value_hash(value, counters=counters))

    if not keys:
        return records, MerkleValue(None, None)
    # Partition the full set at the root's branch bit (depth 0).
    split = 0
    while split < len(keys) and keys[split].bit(0) == 0:
        split += 1
    ptr0 = build_slice(0, split) if split > 0 else None
    ptr1 = build_slice(split, len(keys)) if split < len(keys) else None
    return records, MerkleValue(ptr0, ptr1)


def check_invariants(source: RecordSource, root_value: MerkleValue,
                     data_width: int) -> int:
    """Validate Patricia invariants over the whole tree; returns node count.

    Checks, for every reachable pointer ``(m, side) -> (k, h)``:
    ``m`` is a proper ancestor of ``k``; ``k`` descends on ``side``; ``h``
    equals the hash of ``k``'s record; internal nodes have two children
    (Patricia minimality) except possibly the root; leaves are data-width.
    Used by tests and the consistency checker, not by the hot path.
    """
    count = 0
    stack: list[tuple[BitKey, MerkleValue]] = [(BitKey.root(), root_value)]
    while stack:
        node, value = stack.pop()
        count += 1
        children = 0
        for side in (0, 1):
            ptr = value.pointer(side)
            if ptr is None:
                continue
            children += 1
            if not node.is_proper_ancestor_of(ptr.key):
                raise StoreError(f"{node!r} points to non-descendant {ptr.key!r}")
            if ptr.key.direction_from(node) != side:
                raise StoreError(f"{ptr.key!r} on wrong side of {node!r}")
            child_value = source(ptr.key)
            if child_value is None:
                raise StoreError(f"dangling pointer to {ptr.key!r}")
            if value_hash(child_value) != ptr.hash:
                raise StoreError(f"stale hash for {ptr.key!r} at {node!r}")
            if ptr.key.length == data_width:
                if not isinstance(child_value, DataValue):
                    raise StoreError(f"leaf {ptr.key!r} is not a data record")
                count += 1
            else:
                if not isinstance(child_value, MerkleValue):
                    raise StoreError(f"internal {ptr.key!r} is not a merkle record")
                stack.append((ptr.key, child_value))
        if children < 2 and not node.is_root:
            raise StoreError(f"non-root internal node {node!r} has {children} child")
    return count

"""Sparse Merkle trees encoded as records, plus the classic dense baseline."""

from repro.merkle.plain import PlainMerkleStore, PlainMerkleTree, PlainMerkleVerifier
from repro.merkle.proofs import PathProof, generate_proof, verify_proof
from repro.merkle.sparse import (
    ABSENT_NULL,
    ABSENT_SPLIT,
    FOUND,
    LookupResult,
    build_tree,
    check_invariants,
    lookup,
    merkle_parent_of,
    path_to_root,
)

__all__ = [
    "PlainMerkleStore",
    "PlainMerkleTree",
    "PlainMerkleVerifier",
    "PathProof",
    "generate_proof",
    "verify_proof",
    "ABSENT_NULL",
    "ABSENT_SPLIT",
    "FOUND",
    "LookupResult",
    "build_tree",
    "check_invariants",
    "lookup",
    "merkle_parent_of",
    "path_to_root",
]

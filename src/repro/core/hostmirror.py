"""Host-side mirrors of verifier state (§5.3, §7).

Verifier clocks and cache contents are *protected* (tamper-proof) but not
*confidential*, and they evolve deterministically from the command stream
the host itself produces. FastVer exploits this: each host worker mirrors
its verifier's clock to predict evict timestamps without a round trip, and
mirrors the cache contents to navigate the tree and write evicted records
back to the store.

:class:`VerifierMirror` is that shadow for one verifier thread. It also
carries the host's cache *policy* metadata — LRU ticks, parent links, and
cached-children counts — which the verifier itself never needs: the policy
only exists so the host evicts records in an order that keeps every
eviction executable (a Merkle evict needs the parent still cached).
"""

from __future__ import annotations

import hashlib

from repro.core.keys import BitKey
from repro.core.records import Value, encode_value
from repro.errors import ProtocolError
from repro.instrument import COUNTERS

#: How a shadow entry entered the cache (host policy metadata).
VIA_MERKLE = "merkle"
VIA_DEFERRED = "deferred"
VIA_PINNED = "pinned"


def host_value_hash(value: Value) -> bytes:
    """The host's own copy of H(v), for mirroring parent-pointer updates.

    Untrusted duplicate of the verifier's hash — if the host computed it
    wrong its next ``add_merkle`` would fail — counted separately so the
    cost model can price host-side hashing apart from verifier hashing.
    """
    blob = encode_value(value)
    COUNTERS.host_merkle_hashes += 1
    COUNTERS.host_merkle_hash_bytes += len(blob)
    return hashlib.blake2b(blob, digest_size=32).digest()


class ShadowEntry:
    """Host's view of one verifier-cached record."""

    __slots__ = ("key", "value", "via", "parent_key", "children_cached",
                 "tick", "slot")

    def __init__(self, key: BitKey, value: Value, via: str,
                 parent_key: BitKey | None, tick: int, slot: int):
        self.key = key
        self.value = value
        self.via = via
        self.parent_key = parent_key
        self.children_cached = 0
        self.tick = tick
        self.slot = slot


class VerifierMirror:
    """Host shadow of one verifier thread: clock + cache + policy state."""

    def __init__(self, verifier_id: int, capacity: int):
        self.verifier_id = verifier_id
        self.capacity = capacity
        self.clock = 0
        self.entries: dict[BitKey, ShadowEntry] = {}
        self._tick = 0
        # Replica of the verifier cache's slot freelist (same arithmetic as
        # VerifierCache, so predicted slots match the enclave's).
        self._free_slots: list[int] = list(range(capacity - 1, -1, -1))

    # ------------------------------------------------------------------
    # Clock mirroring (the §5.3 prediction trick)
    # ------------------------------------------------------------------
    def observe_add(self, timestamp: int) -> None:
        """Mirror the verifier's Lamport rule on a deferred add."""
        if timestamp > self.clock:
            self.clock = timestamp

    def predict_evict(self) -> int:
        """The timestamp the verifier *will* stamp on the next deferred
        evict; advances the mirror so the prediction is consumed."""
        self.clock += 1
        return self.clock

    # ------------------------------------------------------------------
    # Shadow cache maintenance
    # ------------------------------------------------------------------
    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def __contains__(self, key: BitKey) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def free(self) -> int:
        return self.capacity - len(self.entries)

    def get(self, key: BitKey) -> ShadowEntry:
        entry = self.entries.get(key)
        if entry is None:
            raise ProtocolError(f"{key!r} not in shadow cache {self.verifier_id}")
        return entry

    def touch(self, key: BitKey) -> ShadowEntry:
        entry = self.get(key)
        entry.tick = self._next_tick()
        return entry

    def add(self, key: BitKey, value: Value, via: str,
            parent_key: BitKey | None = None) -> ShadowEntry:
        if key in self.entries:
            raise ProtocolError(f"shadow double-add of {key!r}")
        if len(self.entries) >= self.capacity:
            raise ProtocolError(f"shadow cache {self.verifier_id} overflow")
        slot = self._free_slots.pop()
        entry = ShadowEntry(key, value, via, parent_key, self._next_tick(), slot)
        self.entries[key] = entry
        if via == VIA_MERKLE and parent_key is not None:
            self.get(parent_key).children_cached += 1
        return entry

    def remove(self, key: BitKey) -> ShadowEntry:
        entry = self.entries.pop(key, None)
        if entry is None:
            raise ProtocolError(f"shadow evict of absent {key!r}")
        if entry.children_cached:
            self.entries[key] = entry
            raise ProtocolError(f"shadow evict of {key!r} with cached children")
        if entry.via == VIA_MERKLE and entry.parent_key is not None:
            parent = self.entries.get(entry.parent_key)
            if parent is not None:
                parent.children_cached -= 1
        self._free_slots.append(entry.slot)
        return entry

    def reparent(self, key: BitKey, new_parent: BitKey) -> None:
        """Fix a cached child's parent link after an edge split."""
        entry = self.entries.get(key)
        if entry is None or entry.via != VIA_MERKLE:
            return
        old_parent = self.entries.get(entry.parent_key) if entry.parent_key else None
        if old_parent is not None:
            old_parent.children_cached -= 1
        entry.parent_key = new_parent
        self.get(new_parent).children_cached += 1

    def victims(self, locked: set[BitKey], need: int) -> list[ShadowEntry]:
        """Pick up to ``need`` evictable entries in LRU order.

        Evictable: not pinned, not locked by the in-flight operation, and
        no cached Merkle children (so a Merkle evict stays executable).
        """
        if need <= 0:
            return []
        order = sorted(self.entries.values(), key=lambda e: e.tick)
        out: list[ShadowEntry] = []
        for entry in order:
            if len(out) >= need:
                break
            if entry.via == VIA_PINNED or entry.key in locked:
                continue
            if entry.children_cached:
                continue
            out.append(entry)
        if len(out) < need:
            raise ProtocolError(
                f"cache {self.verifier_id} cannot free {need} slots "
                f"(capacity {self.capacity} too small for the working chain)"
            )
        return out

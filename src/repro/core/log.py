"""The host↔verifier verification log (§5.3, §7).

Workers never call the verifier synchronously per operation: each worker
serializes verifier calls into a private log buffer and crosses into the
enclave only when the buffer fills, amortizing the world-switch cost over
many operations. Because each worker owns its buffer (and the paper pairs
each host thread with its verifier thread on the same OS thread), there is
no producer/consumer contention on the log.

The host does not need return values synchronously — it *predicts* evict
timestamps by mirroring the verifier clock (§5.3) — so buffering is safe;
validation receipts are collected when the batch flushes.
"""

from __future__ import annotations

from typing import Any

from repro.enclave.enclave import SimulatedEnclave
from repro.errors import EnclaveRebootError, EnclaveUnavailableError
from repro.instrument import COUNTERS

#: A log entry: (method name, args tuple).
LogEntry = tuple[str, tuple]


class VerificationLog:
    """One worker's buffered command stream to its verifier thread."""

    def __init__(self, enclave: SimulatedEnclave, verifier_id: int,
                 capacity: int = 4096):
        if capacity < 1:
            raise ValueError("log capacity must be >= 1")
        self.enclave = enclave
        self.verifier_id = verifier_id
        self.capacity = capacity
        self._buffer: list[LogEntry] = []
        self._results: list[Any] = []
        self.flushes = 0

    def append(self, method: str, *args) -> None:
        """Queue one verifier call; flushes automatically when full."""
        COUNTERS.log_entries += 1
        self._buffer.append((method, args))
        if len(self._buffer) >= self.capacity:
            self.flush()

    #: Bounded retry budget for transient call-gate failures.
    MAX_FLUSH_ATTEMPTS = 4

    def flush(self) -> list[Any]:
        """Enter the enclave once and process every buffered entry.

        Returns the batch's results (receipts for validations, None for
        bookkeeping calls) and also retains them until :meth:`drain`.

        Transient call-gate failures (EAGAIN-style) are retried a bounded
        number of times; a failed call never dispatched, so retrying is
        safe. On exhaustion — or on an enclave reboot, which is never
        retryable here because volatile verifier state is gone — the batch
        is reinstated at the front of the buffer (losing it would silently
        unbalance the verifier's set hashes) and the typed availability
        error propagates so the caller can recover.
        """
        if not self._buffer:
            return []
        batch, self._buffer = self._buffer, []
        self.flushes += 1
        attempts = 0
        while True:
            try:
                results = self.enclave.ecall(
                    "process_batch", self.verifier_id, batch)
                break
            except EnclaveRebootError:
                self._buffer = batch + self._buffer
                raise
            except EnclaveUnavailableError:
                attempts += 1
                COUNTERS.ecall_retries += 1
                if attempts >= self.MAX_FLUSH_ATTEMPTS:
                    self._buffer = batch + self._buffer
                    raise
        self._results.extend(results)
        return results

    def drain(self) -> list[Any]:
        """Flush and hand back everything accumulated since the last drain."""
        self.flush()
        results, self._results = self._results, []
        return results

    @property
    def pending(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------
    # Group-commit plumbing (core/fastver.py `apply_batch`): the batching
    # layer takes several logs' buffers, marshals them into one multi-shard
    # ecall, and hands results (or unexecuted tails) back. The entries
    # never leave host custody, so reinstating preserves the §5.3
    # set-hash balance exactly like `flush`'s own failure path.
    # ------------------------------------------------------------------
    def take_pending(self) -> list[LogEntry]:
        """Hand the buffered entries over to a group flush, emptying the
        buffer. The caller owns dispatch (and failure handling) now."""
        batch, self._buffer = self._buffer, []
        return batch

    def reinstate(self, batch: list[LogEntry]) -> None:
        """Put undispatched entries back at the front of the buffer."""
        if batch:
            self._buffer = list(batch) + self._buffer

    def absorb(self, results: list[Any]) -> None:
        """Record results produced by a group flush on this log's behalf
        (they surface through :meth:`drain` like any flush's results)."""
        self._results.extend(results)

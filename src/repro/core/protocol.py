"""The client/verifier protocol of §2.1: nonces, MACs, receipts.

Clients never trust anything the host says on its own. Every request
carries a nonce; every *put* carries a client MAC binding (key, value,
nonce) so the host cannot forge updates; every result must come back with
a verifier receipt binding the result to the nonce, so the host cannot
replay a stale-but-once-valid answer.

Receipts are **provisional** in the hybrid scheme: an operation is settled
only once the verifier also issues the *epoch receipt* for the epoch named
in the op receipt (§5.1's provisional + batch validation). The
:class:`Client` tracks both halves and exposes ``settled()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.keys import BitKey
from repro.crypto.mac import MacKey
from repro.errors import ProtocolError, ReplayError

# Operation kind tags (domain separation inside MACs).
GET = b"GET"
GET_ABSENT = b"GET_ABSENT"
PUT = b"PUT"
EPOCH = b"EPOCH"
FENCE = b"FENCE"
SHIP = b"SHIP"
LEASE = b"LEASE"


def _payload_bytes(payload: bytes | None) -> bytes:
    return b"\x00absent" if payload is None else b"\x01" + payload


@dataclass
class OpReceipt:
    """A verifier validation of one operation (provisional until epoch)."""

    client_id: int
    kind: bytes
    key: BitKey
    payload: bytes | None       # get result / put value; None for absent
    nonce: int
    epoch: int                  # the epoch whose batch receipt settles this
    tag: bytes

    def mac_fields(self) -> tuple:
        return (
            self.client_id.to_bytes(8, "big"),
            self.kind,
            self.key.to_bytes(),
            _payload_bytes(self.payload),
            self.nonce.to_bytes(8, "big"),
            self.epoch.to_bytes(8, "big"),
        )


@dataclass
class EpochReceipt:
    """The batch validation s_v(e): epoch ``epoch`` passed verification.

    ``chain`` is the verifier's per-client issue counter: the n-th epoch
    receipt this verifier ever signed for this client carries chain=n.
    Binding it into the MAC gives each issued receipt a unique identity, so
    a host replaying an old-but-genuine epoch receipt (same epoch number
    re-closed after a rollback, or captured pre-failover) can be
    deduplicated by the client on the exact (epoch, chain) pair. chain=0
    marks legacy receipts minted before position tracking (baselines)."""

    epoch: int
    tag: bytes
    chain: int = 0

    def mac_fields(self) -> tuple:
        return (EPOCH, self.epoch.to_bytes(8, "big"),
                self.chain.to_bytes(8, "big"))


@dataclass
class FenceReceipt:
    """A promoted verifier's proof of leadership change.

    Issued under the client's own MAC key by the standby enclave at
    promotion (it inherited the client table through replication), so the
    untrusted host cannot fabricate one. ``fence_epoch`` is the first
    epoch the new verifier will ever name in a receipt: accepting the
    fence makes the client reject every receipt from a lower epoch, which
    is exactly the set a stale or split-brain old primary could still
    sign. ``generation`` is the serving-layer leadership counter the
    client echoes in subsequent requests."""

    client_id: int
    generation: int
    fence_epoch: int
    tag: bytes

    def mac_fields(self) -> tuple:
        return (
            FENCE,
            self.client_id.to_bytes(8, "big"),
            self.generation.to_bytes(8, "big"),
            self.fence_epoch.to_bytes(8, "big"),
        )


@dataclass
class PutRequest:
    """A client-authorized update: the verifier rejects puts without a
    valid client tag, so the host cannot unilaterally modify data (§2.1)."""

    client_id: int
    key: BitKey
    payload: bytes | None
    nonce: int
    tag: bytes


@dataclass
class GetRequest:
    """A nonce-carrying read request. Materializing reads as request
    objects (rather than drawing the nonce inside ``FastVer.get``) is what
    lets the serving layer deduplicate a *retried* read by nonce instead
    of feeding the verifier the same nonce twice — which its anti-replay
    window would rightly treat as an attack."""

    client_id: int
    key: BitKey
    nonce: int


class Client:
    """A trusted client endpoint: issues requests, checks receipts."""

    def __init__(self, client_id: int, key: MacKey):
        self.client_id = client_id
        self.key = key
        self._next_nonce = 1
        self._pending: dict[int, OpReceipt] = {}   # nonce -> accepted receipt
        self._settled_epoch = -1
        #: Receipts naming an epoch below this are from a deposed verifier.
        self._fence_epoch = 0
        #: Receipts rejected by the fence (split-brain evidence, counted).
        self.fenced_receipts = 0
        #: Exact (epoch, chain) pairs already accepted; a second delivery of
        #: the same signed receipt is a replay (or a benign channel
        #: duplicate) and must not re-settle anything.
        self._accepted_epoch_chains: set[tuple[int, int]] = set()
        #: Epoch receipts dropped by the (epoch, chain) dedup, counted.
        self.replayed_epoch_receipts = 0

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def next_nonce(self) -> int:
        nonce = self._next_nonce
        self._next_nonce += 1
        return nonce

    def make_put(self, key: BitKey, payload: bytes | None) -> PutRequest:
        """An authorized put; ``payload=None`` is a delete (tombstone)."""
        nonce = self.next_nonce()
        tag = self.key.sign(PUT, key.to_bytes(), _payload_bytes(payload),
                            nonce.to_bytes(8, "big"))
        return PutRequest(self.client_id, key, payload, nonce, tag)

    def make_get(self, key: BitKey) -> GetRequest:
        """A nonce-carrying read request (see :class:`GetRequest`)."""
        return GetRequest(self.client_id, key, self.next_nonce())

    # ------------------------------------------------------------------
    # Receipt checking
    # ------------------------------------------------------------------
    def accept(self, receipt: OpReceipt) -> None:
        """Validate a verifier receipt for one of our operations.

        Raises on a bad MAC or a nonce we never issued / already settled
        (the untrusted host replaying receipts is the attack here).
        """
        if receipt.client_id != self.client_id:
            raise ProtocolError(
                f"receipt for client {receipt.client_id} delivered to "
                f"client {self.client_id}"
            )
        if not 0 < receipt.nonce < self._next_nonce:
            raise ReplayError(f"receipt for unknown nonce {receipt.nonce}")
        self.key.verify(receipt.tag, *receipt.mac_fields())
        if receipt.epoch < self._fence_epoch:
            self.fenced_receipts += 1
            return
        self._pending[receipt.nonce] = receipt

    def accept_epoch(self, receipt: EpochReceipt) -> None:
        self.key.verify(receipt.tag, *receipt.mac_fields())
        if receipt.epoch < self._fence_epoch:
            self.fenced_receipts += 1
            return
        if receipt.chain:
            pair = (receipt.epoch, receipt.chain)
            if pair in self._accepted_epoch_chains:
                self.replayed_epoch_receipts += 1
                return
            self._accepted_epoch_chains.add(pair)
        if receipt.epoch > self._settled_epoch:
            self._settled_epoch = receipt.epoch

    def accept_fence(self, receipt: FenceReceipt) -> None:
        """Adopt a leadership fence: from now on, receipts naming any epoch
        below ``fence_epoch`` — the only epochs a deposed primary could
        still sign — are dropped (and counted) instead of accepted."""
        if receipt.client_id != self.client_id:
            raise ProtocolError(
                f"fence for client {receipt.client_id} delivered to "
                f"client {self.client_id}"
            )
        self.key.verify(receipt.tag, *receipt.mac_fields())
        if receipt.fence_epoch > self._fence_epoch:
            self._fence_epoch = receipt.fence_epoch

    @property
    def fence_epoch(self) -> int:
        return self._fence_epoch

    def receipt_for(self, nonce: int) -> OpReceipt | None:
        """The accepted (possibly still provisional) receipt for a nonce.

        Lets a trusted caller cross-check a host-recorded answer against
        what the verifier actually signed for that operation."""
        return self._pending.get(nonce)

    def settled(self, nonce: int) -> bool:
        """Is the operation fully validated (op receipt + epoch receipt)?"""
        receipt = self._pending.get(nonce)
        if receipt is None:
            return False
        return receipt.epoch <= self._settled_epoch

    @property
    def settled_epoch(self) -> int:
        return self._settled_epoch


class ReceiptChannel:
    """The untrusted wire between the host and a client's receipt checker.

    Receipts travel host→client over infrastructure the adversary owns, so
    the channel can drop, duplicate, or reorder them (a FaultPlan attached
    via :attr:`faults` decides when). The protocol is built to shrug all
    three off:

    * **drop** — the client never sees the receipt, so the operation simply
      never settles: an availability degradation, never a wrong answer.
    * **duplicate** — ``accept``/``accept_epoch`` are idempotent (the MAC
      re-verifies; ``accept_epoch`` keeps the max), so replays are no-ops.
    * **reorder** — acceptance is order-insensitive; a withheld receipt is
      delivered late, after everything that overtook it.
    """

    def __init__(self):
        self.faults = None
        self._held: list[tuple[OpReceipt | EpochReceipt, "Client"]] = []
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0

    def deliver(self, receipt: OpReceipt | EpochReceipt, client: "Client") -> None:
        """Carry one receipt to its client, subject to channel faults."""
        if self.faults is not None:
            if self.faults.fire("receipt.drop"):
                self.dropped += 1
                return
            if self.faults.fire("receipt.reorder"):
                self.reordered += 1
                self._held.append((receipt, client))
                return
            if self.faults.fire("receipt.duplicate"):
                self.duplicated += 1
                self._accept(receipt, client)
        self._accept(receipt, client)

    def flush_held(self) -> int:
        """Deliver every withheld receipt, in reversed (worst-case) order."""
        held, self._held = self._held, []
        for receipt, client in reversed(held):
            self._accept(receipt, client)
        return len(held)

    def reset(self) -> None:
        """Forget withheld receipts (e.g. across a recovery: their ops are
        being re-settled by a fresh epoch anyway)."""
        self._held.clear()

    @staticmethod
    def _accept(receipt: OpReceipt | EpochReceipt, client: "Client") -> None:
        if isinstance(receipt, EpochReceipt):
            client.accept_epoch(receipt)
        else:
            client.accept(receipt)


class ClientTable:
    """Verifier-side registry of authorized clients (trusted state).

    Replay defense (§2.1): a client numbers its requests with a counter.
    Because one client's requests can be validated by different verifier
    threads whose log buffers flush at different times, nonces arrive
    slightly out of order even in honest runs, so strict "greater than
    last" would misfire. We use the standard sliding-window discipline
    (as in DTLS/IPsec anti-replay): track the maximum nonce plus the set
    of nonces seen inside a window below it. A nonce is admitted iff it
    has never been seen and is not older than the window. The window must
    exceed the number of operations that can be in flight across all log
    buffers — far smaller than the default.
    """

    #: Sliding-window size in nonces.
    WINDOW = 1 << 20

    def __init__(self):
        self._keys: dict[int, MacKey] = {}
        self._max_nonce: dict[int, int] = {}
        self._seen: dict[int, set[int]] = {}
        #: Explicit per-client floor: nonces at or below are always spent.
        #: Raised by restore_nonces (post-recovery burn) without inflating
        #: the high-water mark itself, so checkpoints capture the *true*
        #: maximum and repeated checkpoint/recover cycles don't compound.
        self._floor: dict[int, int] = {}

    def register(self, client_id: int, key: MacKey) -> None:
        if client_id in self._keys:
            raise ProtocolError(f"client {client_id} already registered")
        self._keys[client_id] = key
        self._max_nonce[client_id] = 0
        self._seen[client_id] = set()
        self._floor[client_id] = 0

    def key_for(self, client_id: int) -> MacKey:
        key = self._keys.get(client_id)
        if key is None:
            raise ProtocolError(f"unknown client {client_id}")
        return key

    def check_nonce(self, client_id: int, nonce: int) -> None:
        """Admit a nonce iff it was never admitted and is inside the window."""
        if client_id not in self._keys:
            raise ProtocolError(f"unknown client {client_id}")
        top = self._max_nonce[client_id]
        seen = self._seen[client_id]
        floor = max(top - self.WINDOW, self._floor.get(client_id, 0))
        if nonce <= floor:
            raise ReplayError(
                f"client {client_id} nonce {nonce} is older than the "
                f"anti-replay window (max seen {top})"
            )
        if nonce in seen:
            raise ReplayError(f"client {client_id} nonce {nonce} replayed")
        seen.add(nonce)
        if nonce > top:
            self._max_nonce[client_id] = nonce
            new_floor = nonce - self.WINDOW
            if new_floor > floor and len(seen) > self.WINDOW:
                self._seen[client_id] = {n for n in seen if n > new_floor}

    def nonces(self) -> dict[int, int]:
        """Per-client high-water marks (used by verifier checkpoints).

        Restoring only the high-water mark is safe: every nonce at or
        below it is treated as spent after restore (see restore_nonces).
        """
        return dict(self._max_nonce)

    def restore_nonces(self, nonces: dict[int, int]) -> None:
        """Post-restore, conservatively burn everything <= the high-water
        mark: in-window reordering is lost across a reboot, so honest
        clients simply continue from fresh nonces. The burn raises the
        explicit floor rather than the mark itself, so a later checkpoint
        still records the true maximum."""
        for client_id, nonce in nonces.items():
            if client_id in self._max_nonce:
                self._max_nonce[client_id] = nonce
                self._floor[client_id] = nonce
                self._seen[client_id] = set()

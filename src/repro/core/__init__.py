"""The paper's primary contribution: the hybrid verified key-value store."""

from repro.core.cache import CacheEntry, VerifierCache
from repro.core.epochs import EpochController
from repro.core.fastver import FastVer, FastVerConfig, OpResult, VerifyReport
from repro.core.hostmirror import VerifierMirror, host_value_hash
from repro.core.keys import KEY_BITS, BitKey
from repro.core.log import VerificationLog
from repro.core.multiverifier import VerifierGroup
from repro.core.protocol import (
    Client,
    ClientTable,
    EpochReceipt,
    OpReceipt,
    PutRequest,
)
from repro.core.records import (
    Aux,
    DataValue,
    MerkleValue,
    Pointer,
    Protection,
    Value,
    decode_value,
    encode_value,
    entry_fields,
    value_hash,
)
from repro.core.verifier import VerifierThread

__all__ = [
    "CacheEntry",
    "VerifierCache",
    "EpochController",
    "FastVer",
    "FastVerConfig",
    "OpResult",
    "VerifyReport",
    "VerifierMirror",
    "host_value_hash",
    "KEY_BITS",
    "BitKey",
    "VerificationLog",
    "VerifierGroup",
    "Client",
    "ClientTable",
    "EpochReceipt",
    "OpReceipt",
    "PutRequest",
    "Aux",
    "DataValue",
    "MerkleValue",
    "Pointer",
    "Protection",
    "Value",
    "decode_value",
    "encode_value",
    "entry_fields",
    "value_hash",
    "VerifierThread",
]

"""Records, values, and the 64-bit aux protection word (§4.2, §6, §7).

FastVer treats *everything* — client data and internal Merkle nodes — as
key-value records, which is what makes the hybrid scheme possible: any
record can move between the three integrity-protection mechanisms (verifier
cache / deferred verification / Merkle hashing) independently of any other.

Two value kinds exist:

* :class:`DataValue` — a client payload, or a tombstone (``payload is None``)
  for a deleted key (deletion-as-tombstone is our extension; the paper only
  needs get/put).
* :class:`MerkleValue` — the pair ``(kh0, kh1)`` of §4.2: per side, either
  ``None`` or a :class:`Pointer` ``(descendant key, hash of its value)``,
  where the descendant is the least common ancestor of all non-null data
  keys in that subtree.

:class:`Aux` reproduces the paper's per-record 64-bit aux field (§7), which
records the current protection mechanism plus its payload (timestamp+epoch
for deferred, verifier/slot for cached). The host store persists it next to
the value; it is *untrusted* — lying in it only ever causes a verifier check
to fail later.
"""

from __future__ import annotations

from enum import IntEnum

from repro.crypto.hashing import decode_fields, encode_fields, hash_bytes
from repro.core.keys import BitKey


class Protection(IntEnum):
    """Which mechanism currently guards a record's integrity (§6)."""

    MERKLE = 0      # hash of the value is stored at the Merkle tree parent
    DEFERRED = 1    # value+timestamp are accounted in a write-set hash
    CACHED = 2      # the record lives inside a verifier cache


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------
class DataValue:
    """A client-visible value; ``payload is None`` marks a tombstone."""

    __slots__ = ("payload",)

    def __init__(self, payload: bytes | None):
        if payload is not None and not isinstance(payload, bytes):
            raise TypeError("DataValue payload must be bytes or None")
        self.payload = payload

    @property
    def is_tombstone(self) -> bool:
        return self.payload is None

    def encode(self) -> bytes:
        if self.payload is None:
            return b"DN"
        return b"DV" + self.payload

    def __eq__(self, other) -> bool:
        return isinstance(other, DataValue) and self.payload == other.payload

    def __hash__(self) -> int:
        return hash(("DataValue", self.payload))

    def __repr__(self) -> str:
        return f"DataValue({self.payload!r})"


class Pointer:
    """One side of a Merkle value: a descendant key and its value hash."""

    __slots__ = ("key", "hash")

    def __init__(self, key: BitKey, hash_: bytes):
        self.key = key
        self.hash = hash_

    def with_hash(self, hash_: bytes) -> "Pointer":
        return Pointer(self.key, hash_)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Pointer)
            and self.key == other.key
            and self.hash == other.hash
        )

    def __hash__(self) -> int:
        return hash((self.key, self.hash))

    def __repr__(self) -> str:
        return f"Pointer({self.key!r}, {self.hash.hex()[:8]}…)"


class MerkleValue:
    """The value of a Merkle record: pointers for the 0-side and 1-side."""

    __slots__ = ("ptr0", "ptr1")

    def __init__(self, ptr0: Pointer | None = None, ptr1: Pointer | None = None):
        self.ptr0 = ptr0
        self.ptr1 = ptr1

    def pointer(self, side: int) -> Pointer | None:
        if side == 0:
            return self.ptr0
        if side == 1:
            return self.ptr1
        raise ValueError(f"side must be 0 or 1, got {side}")

    def with_pointer(self, side: int, ptr: Pointer | None) -> "MerkleValue":
        """A copy with one side replaced (values are treated immutably)."""
        if side == 0:
            return MerkleValue(ptr, self.ptr1)
        if side == 1:
            return MerkleValue(self.ptr0, ptr)
        raise ValueError(f"side must be 0 or 1, got {side}")

    @property
    def is_empty(self) -> bool:
        return self.ptr0 is None and self.ptr1 is None

    def encode(self) -> bytes:
        parts: list[bytes] = [b"MV"]
        for ptr in (self.ptr0, self.ptr1):
            if ptr is None:
                parts.append(b"")
            else:
                parts.append(ptr.key.to_bytes() + ptr.hash)
        return encode_fields(*parts)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MerkleValue)
            and self.ptr0 == other.ptr0
            and self.ptr1 == other.ptr1
        )

    def __hash__(self) -> int:
        return hash((self.ptr0, self.ptr1))

    def __repr__(self) -> str:
        return f"MerkleValue(0={self.ptr0!r}, 1={self.ptr1!r})"


#: Either kind of record value.
Value = DataValue | MerkleValue


def encode_value(value: Value) -> bytes:
    """Canonical byte encoding of a value (domain-separated by kind)."""
    return value.encode()


def value_hash(value: Value, counters=None) -> bytes:
    """The collision-resistant hash H(v) stored at Merkle parents."""
    return hash_bytes(encode_value(value), counters=counters)


def decode_value(blob: bytes) -> Value:
    """Inverse of :func:`encode_value` (used by checkpoints and recovery)."""
    if blob.startswith(b"DN"):
        return DataValue(None)
    if blob.startswith(b"DV"):
        return DataValue(blob[2:])
    if blob[4:6] == b"MV":
        # MerkleValue.encode() is encode_fields(b"MV", side0, side1), so the
        # blob opens with the 4-byte length of the tag field, then the tag.
        fields = decode_fields(blob)
        if len(fields) != 3 or fields[0] != b"MV":
            raise ValueError("malformed MerkleValue encoding")
        sides: list[Pointer | None] = []
        for raw in fields[1:]:
            if not raw:
                sides.append(None)
                continue
            key = BitKey.from_encoded(raw[:-32])
            sides.append(Pointer(key, raw[-32:]))
        return MerkleValue(sides[0], sides[1])
    raise ValueError(f"unknown value encoding tag: {blob[:2]!r}")


# ---------------------------------------------------------------------------
# Aux word
# ---------------------------------------------------------------------------
_STATE_SHIFT = 62
_TS_BITS = 40
_EPOCH_BITS = 22
_SLOT_BITS = 46
_VERIFIER_BITS = 16

MAX_TIMESTAMP = (1 << _TS_BITS) - 1
MAX_EPOCH = (1 << _EPOCH_BITS) - 1
MAX_SLOT = (1 << _SLOT_BITS) - 1
MAX_VERIFIER = (1 << _VERIFIER_BITS) - 1


class Aux:
    """The 64-bit per-record bookkeeping word (§7).

    Layout (bits 63..0):

    * ``[63:62]`` protection state (:class:`Protection`)
    * deferred: ``[61:40]`` epoch, ``[39:0]`` timestamp
    * cached:   ``[61:46]`` verifier thread id, ``[45:0]`` cache slot
    * merkle:   payload bits are zero

    ``pack()``/``unpack()`` round-trip through a real 64-bit integer so the
    store can hold the aux exactly as FASTER would, and the CAS emulation can
    swap (value, aux) pairs atomically.
    """

    __slots__ = ("state", "timestamp", "epoch", "verifier_id", "slot")

    def __init__(self, state: Protection, timestamp: int = 0, epoch: int = 0,
                 verifier_id: int = 0, slot: int = 0):
        self.state = state
        self.timestamp = timestamp
        self.epoch = epoch
        self.verifier_id = verifier_id
        self.slot = slot

    # -- constructors ---------------------------------------------------
    @classmethod
    def merkle(cls) -> "Aux":
        """Record is protected by the hash at its Merkle parent."""
        return cls(Protection.MERKLE)

    @classmethod
    def deferred(cls, timestamp: int, epoch: int) -> "Aux":
        """Record is accounted in epoch ``epoch``'s write set at ``timestamp``."""
        if not 0 <= timestamp <= MAX_TIMESTAMP:
            raise ValueError(f"timestamp {timestamp} exceeds {_TS_BITS} bits")
        if not 0 <= epoch <= MAX_EPOCH:
            raise ValueError(f"epoch {epoch} exceeds {_EPOCH_BITS} bits")
        return cls(Protection.DEFERRED, timestamp=timestamp, epoch=epoch)

    @classmethod
    def cached(cls, verifier_id: int, slot: int) -> "Aux":
        """Record currently lives in a verifier cache."""
        if not 0 <= verifier_id <= MAX_VERIFIER:
            raise ValueError(f"verifier id {verifier_id} exceeds {_VERIFIER_BITS} bits")
        if not 0 <= slot <= MAX_SLOT:
            raise ValueError(f"slot {slot} exceeds {_SLOT_BITS} bits")
        return cls(Protection.CACHED, verifier_id=verifier_id, slot=slot)

    # -- 64-bit round trip -----------------------------------------------
    def pack(self) -> int:
        word = int(self.state) << _STATE_SHIFT
        if self.state is Protection.DEFERRED:
            word |= (self.epoch << _TS_BITS) | self.timestamp
        elif self.state is Protection.CACHED:
            word |= (self.verifier_id << _SLOT_BITS) | self.slot
        return word

    @classmethod
    def unpack(cls, word: int) -> "Aux":
        if not 0 <= word < (1 << 64):
            raise ValueError(f"aux word 0x{word:x} is not a 64-bit value")
        state = Protection((word >> _STATE_SHIFT) & 0x3)
        payload = word & ((1 << _STATE_SHIFT) - 1)
        if state is Protection.DEFERRED:
            return cls.deferred(payload & MAX_TIMESTAMP, payload >> _TS_BITS)
        if state is Protection.CACHED:
            return cls.cached(payload >> _SLOT_BITS, payload & MAX_SLOT)
        return cls.merkle()

    def __eq__(self, other) -> bool:
        return isinstance(other, Aux) and self.pack() == other.pack()

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        if self.state is Protection.DEFERRED:
            return f"Aux(DEFERRED, ts={self.timestamp}, epoch={self.epoch})"
        if self.state is Protection.CACHED:
            return f"Aux(CACHED, verifier={self.verifier_id}, slot={self.slot})"
        return "Aux(MERKLE)"


def entry_fields(key: BitKey, value: Value, timestamp: int, epoch: int) -> tuple:
    """The canonical field tuple hashed into read/write multisets (§5.1).

    Including the timestamp makes every entry of an honest run unique;
    including the epoch pins each entry to the epoch whose set-equality
    check must account for it.
    """
    return (
        key.to_bytes(),
        encode_value(value),
        timestamp.to_bytes(8, "big"),
        epoch.to_bytes(8, "big"),
    )

"""Epoch control for deferred verification (§5.1, §5.3, §6).

Concerto made Blum-style offline checking *recurring* by slicing time into
epochs: every record protected by deferred verification is tagged with the
epoch in which it was last evicted from a verifier cache, and verifying
epoch ``e`` means (1) migrating every record still tagged ``<= e`` into a
later epoch through some verifier cache, then (2) checking that the
aggregated read-set hash of epoch ``e`` equals its aggregated write-set
hash.

:class:`EpochController` is the small piece of *trusted* shared state the
verifier threads consult: the current epoch, the last verified epoch, and
the rule that no operation may ever reference an already-verified epoch
(that check is what stops a byzantine host from resurrecting records whose
epoch has been settled).
"""

from __future__ import annotations

from repro.errors import EpochError


class EpochController:
    """Trusted epoch bookkeeping shared by all verifier threads."""

    def __init__(self):
        self.current = 0
        self.verified = -1  # no epoch verified yet

    def check_addable(self, epoch: int) -> None:
        """A deferred add must name an epoch that is still open.

        ``epoch <= verified`` would inject a read entry into a set-equality
        check that has already been settled — classic replay of a dead
        record — and ``epoch > current`` names an epoch that has not
        produced any write entries yet, so nothing could honestly carry it.
        """
        if epoch <= self.verified:
            raise EpochError(
                f"add references epoch {epoch}, but epochs <= {self.verified} "
                f"are already verified (record resurrection?)"
            )
        if epoch > self.current:
            raise EpochError(
                f"add references future epoch {epoch} (current {self.current})"
            )

    def stamp(self) -> int:
        """The epoch tag given to records evicted right now."""
        return self.current

    def advance(self) -> int:
        """Open the next epoch (done before migrating the old one)."""
        self.current += 1
        return self.current

    def mark_verified(self, epoch: int) -> None:
        """Record that epoch ``epoch`` passed its set-equality check."""
        if epoch != self.verified + 1:
            raise EpochError(
                f"epochs verify in order: expected {self.verified + 1}, got {epoch}"
            )
        if epoch >= self.current:
            raise EpochError(
                f"epoch {epoch} cannot verify before a later epoch is opened"
            )
        self.verified = epoch

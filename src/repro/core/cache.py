"""The verifier cache (§3, §4.3): trusted record storage inside the enclave.

A bounded map from keys to record values. Records inside the cache need no
integrity checking at all — the cache *is* the protected state — which puts
caching at the top of the verification hierarchy (§6.1). Capacity is a hard
bound standing for scarce enclave memory (performance goal P1).

The cache hands out stable *slot* numbers so the host's aux word can record
exactly where a record lives (§7), and it pins the root record, which the
protocol never evicts.
"""

from __future__ import annotations

from repro.core.keys import BitKey
from repro.core.records import Value
from repro.errors import CacheStateError, CapacityError


class CacheEntry:
    __slots__ = ("key", "value", "slot")

    def __init__(self, key: BitKey, value: Value, slot: int):
        self.key = key
        self.value = value
        self.slot = slot


class VerifierCache:
    """Slotted, bounded, trusted record cache."""

    def __init__(self, capacity: int):
        if capacity < 2:
            raise ValueError("cache needs capacity >= 2 (root + working entry)")
        self.capacity = capacity
        self._entries: dict[BitKey, CacheEntry] = {}
        self._free_slots: list[int] = list(range(capacity - 1, -1, -1))
        self._pinned: set[BitKey] = set()

    def __contains__(self, key: BitKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def get(self, key: BitKey) -> CacheEntry:
        entry = self._entries.get(key)
        if entry is None:
            raise CacheStateError(f"{key!r} is not in the verifier cache")
        return entry

    def add(self, key: BitKey, value: Value, pinned: bool = False) -> int:
        """Insert a record; returns its slot. Duplicate adds are byzantine
        behavior (an honest host tracks residency in the aux word)."""
        if key in self._entries:
            raise CacheStateError(f"duplicate add of {key!r} to one cache")
        if not self._free_slots:
            raise CapacityError("verifier cache is full; evict first")
        slot = self._free_slots.pop()
        self._entries[key] = CacheEntry(key, value, slot)
        if pinned:
            self._pinned.add(key)
        return slot

    def update(self, key: BitKey, value: Value) -> None:
        self.get(key).value = value

    def remove(self, key: BitKey) -> Value:
        """Drop an entry and return its (possibly updated) value."""
        if key in self._pinned:
            raise CacheStateError(f"{key!r} is pinned and cannot be evicted")
        entry = self._entries.pop(key, None)
        if entry is None:
            raise CacheStateError(f"{key!r} is not in the verifier cache")
        self._free_slots.append(entry.slot)
        return entry.value

    def keys(self) -> list[BitKey]:
        return list(self._entries)

    def items(self) -> list[tuple[BitKey, Value]]:
        return [(k, e.value) for k, e in self._entries.items()]

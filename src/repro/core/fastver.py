"""FastVer: the verified key-value store (the paper's headline system).

:class:`FastVer` is the *host-side* orchestrator of Figure 1. It wires
together the FASTER-style store, the enclave-resident verifier group, the
per-worker verification logs, and the host mirrors, and implements the
hybrid protocol of §6–§7:

* **Warm path** (record in deferred state): speculative 128-bit CAS on the
  store's (value, aux) pair using the mirrored verifier clock, then an
  asynchronous add/validate/evict triple in the worker's log (§5.3, §7).
  O(1) work, no Merkle hashing, fully parallel across workers.
* **Cold path** (record Merkle-protected): descend the sparse tree, pull
  the record's ancestor chain into the routing verifier's cache (stopping
  at the partition anchor, §6.2), validate, then evict the record to
  deferred — it is warm from now until the next verification (§6.3).
* **Partitioning**: Merkle records at the configured depth ``d`` are kept
  permanently in deferred state. They "unshackle" their subtrees from the
  root so Merkle work parallelizes across verifier threads (§6.2), at the
  price of ``~2^d`` extra records to migrate per verification.
* **verify()** (epoch close): sort the keys touched this epoch and apply
  them back to Merkle protection in sorted order — manufacturing locality
  so each Merkle ancestor is hashed once per batch, not once per update
  (§6.3) — then migrate the anchors and check the aggregated read/write
  set hashes (§5.3). Client-visible results are provisional until the
  epoch receipt lands (§5.1).

Everything in this class is untrusted: bugs here can cause spurious
integrity alarms or lost availability but can never make the verifier
accept a wrong result (the adversary tests drive that point home).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.backoff import BackoffPolicy
from repro.core.hostmirror import (
    VIA_DEFERRED,
    VIA_MERKLE,
    VIA_PINNED,
    VerifierMirror,
    host_value_hash,
)
from repro.core.keys import KEY_BITS, BitKey
from repro.core.log import VerificationLog
from repro.core.multiverifier import VerifierGroup
from repro.core.protocol import Client, EpochReceipt, OpReceipt, ReceiptChannel
from repro.core.records import Aux, DataValue, MerkleValue, Pointer, Protection, Value
from repro.crypto.hashing import hash_key_to_data_key_bytes
from repro.crypto.mac import MacKey
from repro.crypto.prf import Prf
from repro.enclave.costmodel import SIMULATED, EnclaveCostProfile
from repro.enclave.enclave import SimulatedEnclave
from repro.errors import (
    AvailabilityError,
    BatchAbortedError,
    EnclaveDeadError,
    EnclaveRebootError,
    EnclaveUnavailableError,
    IntegrityError,
    ProtocolError,
    RecoveryError,
    RepairFailedError,
    RepairForgeryError,
    StoreError,
    TransientIOError,
)
from repro.instrument import COUNTERS
from repro.merkle.sparse import ABSENT_NULL, FOUND, lookup
from repro.obs import LATENCIES, TRACER
from repro.sim.costs import DEFAULT_COSTS
from repro.store.atomic import NO_CONTENTION, ContentionInjector
from repro.store.faster import FasterKV


@dataclass
class FastVerConfig:
    """Tuning knobs of the hybrid scheme (§8's experimental parameters)."""

    #: Data-key width in bits. The paper uses 256 (SHA-256 of client keys);
    #: benchmarks default to 64 for speed — semantics are identical.
    key_width: int = 64
    #: Number of worker threads == verifier threads (§5.3 pairs them 1:1).
    n_workers: int = 1
    #: Verifier cache entries per thread (the paper's default is 512).
    cache_capacity: int = 512
    #: Merkle partition depth d (§6.2/§8.1): records at this depth stay in
    #: deferred state. ``None`` disables partitioning (single chain from
    #: the root — the configuration §6.2 argues does not parallelize).
    partition_depth: int | None = None
    #: Verification-log buffer entries per worker (enclave amortization, §7).
    log_capacity: int = 256
    #: Operations between automatic epoch verifications (§8.1's batching
    #: parameter). ``None`` = only verify() on demand.
    batch_ops: int | None = None
    #: Multiset-hash combiner ("add" is multiset-secure; "xor" for ablation).
    combiner: str = "add"
    #: Apply Merkle re-protection in sorted key order (§6.3). Disabling it
    #: (ablation A2) applies updates in arbitrary order, destroying the
    #: manufactured locality of reference.
    sorted_merkle_updates: bool = True
    #: Keep data records resident in the verifier cache after an access
    #: (§6.1's top tier: "caching is ideal for hot records"). Repeat hits
    #: then cost no hashing and no multiset work at all; the LRU returns
    #: cooling records to deferred protection. Off by default to match
    #: §7's per-operation add/validate/evict worker loop.
    cache_hot_records: bool = False
    #: Enclave cost profile (simulated / sgx / none) for the cost model.
    enclave_profile: EnclaveCostProfile = SIMULATED
    #: Host store in-memory budget (records) before hybrid-log spill.
    memory_budget_records: int = 1 << 30
    #: Injected CAS contention (used by the concurrency model).
    contention: ContentionInjector = NO_CONTENTION
    #: Retry budget + pacing for transient enclave call-gate failures.
    #: ``None`` selects the default policy (4 attempts, jittered
    #: exponential backoff); the serving layer shares the same class.
    ecall_backoff: BackoffPolicy | None = None

    def validate(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.key_width < 4 or self.key_width > KEY_BITS:
            raise ValueError(f"key_width must be 4..{KEY_BITS}")
        if self.cache_capacity < self.key_width + 8:
            raise ValueError(
                "cache_capacity must exceed key_width + 8 so a full "
                "root-to-leaf chain plus working records fit"
            )
        if self.partition_depth is not None and not (
                1 <= self.partition_depth < self.key_width):
            raise ValueError(
                "partition_depth must be in [1, key_width): the root is "
                "pinned and data keys must lie below the boundary"
            )
        if self.batch_ops is not None and self.batch_ops < 1:
            raise ValueError("batch_ops must be >= 1")


@dataclass
class OpResult:
    """What a client-level operation returns to the caller."""

    payload: bytes | None
    nonce: int
    worker: int


@dataclass
class BatchOpOutcome:
    """Per-operation outcome of a group-commit batch (:meth:`FastVer.apply_batch`).

    Exactly one of ``payload``/``error`` is meaningful: a poisoned
    operation fails alone with its typed error while the rest of its batch
    commits (partial-batch isolation), so the serving layer can resolve
    each ticket independently."""

    payload: bytes | None
    nonce: int
    worker: int
    error: Exception | None = None


@dataclass
class FastVerCheckpoint:
    """A durable checkpoint: CPR store token + sealed verifier blob (§7).

    The blob lives on untrusted storage — replaying an older one trips the
    enclave's sealed anti-rollback slot. ``anchors`` is host metadata
    (untrusted routing hints; lying in it breaks availability, never
    integrity)."""

    version: int
    store_token: object
    verifier_blob: bytes
    anchors: dict


@dataclass
class VerifyReport:
    """Summary of one epoch verification."""

    epoch: int
    migrated_data: int
    migrated_anchors: int
    receipts: dict[int, EpochReceipt] = field(repr=False, default_factory=dict)


class FastVer:
    """The verified key-value store."""

    def __init__(self, config: FastVerConfig | None = None,
                 items: list[tuple[int, bytes]] | None = None):
        self.config = config or FastVerConfig()
        self.config.validate()
        cfg = self.config
        self._ecall_backoff = cfg.ecall_backoff or self._default_ecall_backoff()
        # Enclave identity keys: in real TEEs these derive from the CPU +
        # enclave measurement, so a rebooted enclave recovers the same
        # keys. The host process holds the objects but never uses them
        # outside the enclave factory (the adversary harness respects
        # this, per the threat model).
        identity_prf = Prf.generate()
        identity_seal = MacKey.generate("seal")
        self.enclave = SimulatedEnclave(
            lambda sealed: VerifierGroup(
                sealed, n_threads=cfg.n_workers,
                cache_capacity=cfg.cache_capacity, combiner=cfg.combiner,
                prf=identity_prf, sealing_key=identity_seal,
            ),
            profile=cfg.enclave_profile,
        )
        self.store = FasterKV(ordered_width=cfg.key_width,
                              memory_budget_records=cfg.memory_budget_records,
                              contention=cfg.contention)
        self.logs = [VerificationLog(self.enclave, i, cfg.log_capacity)
                     for i in range(cfg.n_workers)]
        self.mirrors = [VerifierMirror(i, cfg.cache_capacity)
                        for i in range(cfg.n_workers)]
        self.clients: dict[int, Client] = {}
        self.current_epoch = 0
        self.ops_since_close = 0
        #: key -> (timestamp, epoch) for every record in DEFERRED state.
        self.deferred_index: dict[BitKey, tuple[int, int]] = {}
        #: anchor key -> preferred verifier (partition ownership, §6.2).
        self.anchors: dict[BitKey, int] = {}
        #: key -> verifier id for records currently in a verifier cache.
        self.cached_where: dict[BitKey, int] = {}
        #: per-worker queue of predicted (ts, epoch) evict results, checked
        #: against the verifier's actual returns at drain time.
        self._expected_evicts: list[deque] = [deque() for _ in range(cfg.n_workers)]
        #: Optional FaultPlan (see repro.faults.install_faults).
        self.faults = None
        #: The untrusted host→client receipt transport (drop/dup/reorder).
        self.receipt_channel = ReceiptChannel()
        #: Most recent successful checkpoint (the default recovery point).
        self.last_checkpoint: FastVerCheckpoint | None = None
        self._load(items or [])

    #: Bounded retry budget for transient enclave call-gate failures
    #: (the default when the config supplies no policy of its own).
    MAX_ECALL_ATTEMPTS = 4

    def _default_ecall_backoff(self) -> BackoffPolicy:
        return BackoffPolicy(max_attempts=self.MAX_ECALL_ATTEMPTS,
                             base_delay=0.5, max_delay=8.0, seed=0)

    def _count_ecall_retry(self, _exc: Exception) -> None:
        COUNTERS.ecall_retries += 1

    def _sim_now(self) -> float:
        """The serving layer's simulated clock when one is attached (the
        server backrefs itself as ``_server``); 0.0 for bare instances —
        trace timestamps then just order by sequence number."""
        server = getattr(self, "_server", None)
        return server.now if server is not None else 0.0

    def _ecall(self, method: str, *args):
        """Cross into the enclave, absorbing transient call-gate failures
        with jittered exponential backoff under a configurable budget (a
        failed gate never dispatched, so a retry is safe). Reboots are
        never retried here — volatile verifier state is gone and only
        :meth:`recover` can bring it back.

        The gate is also where ecall *service time* is measured: the
        modeled verifier nanoseconds this crossing cost, derived from the
        crypto-counter deltas it produced × the calibrated cost model
        (so the histogram and the cost model cannot disagree)."""
        measure = LATENCIES.enabled
        if measure:
            c = COUNTERS
            before = (c.merkle_hashes, c.merkle_hash_bytes,
                      c.multiset_updates, c.multiset_hash_bytes,
                      c.mac_ops, c.enclave_entries)
        result = self._ecall_backoff.run(
            lambda: self.enclave.ecall(method, *args),
            retry_on=(EnclaveUnavailableError,),
            no_retry=(EnclaveRebootError, EnclaveDeadError),
            on_retry=self._count_ecall_retry,
        )
        if measure:
            costs = DEFAULT_COSTS
            profile = self.config.enclave_profile
            compute = (
                (c.merkle_hashes - before[0]) * costs.merkle_hash_fixed_ns
                + (c.merkle_hash_bytes - before[1])
                * costs.merkle_hash_per_byte_ns
                + (c.multiset_updates - before[2]) * costs.multiset_fixed_ns
                + (c.multiset_hash_bytes - before[3])
                * costs.multiset_per_byte_ns
                + (c.mac_ops - before[4]) * costs.mac_ns
            )
            service_ns = (compute * profile.compute_multiplier
                          + (c.enclave_entries - before[5])
                          * profile.crossing_ns)
            LATENCIES.observe("ecall_service", service_ns)
        return result

    # ==================================================================
    # Setup
    # ==================================================================
    def register_client(self, client: Client) -> None:
        """Authorize a client: its MAC key is installed in the enclave."""
        self._ecall("register_client", client.client_id,
                    client.key.key_bytes())
        self.clients[client.client_id] = client

    def data_key(self, key: int | bytes) -> BitKey:
        """Map a client key to a data-width BitKey.

        Integers are the benchmark convention (0..N-1, zero-padded to the
        key width, as §8 does with 8-byte YCSB keys). Arbitrary byte keys
        are hashed with SHA-256 first (§2.1) and truncated to the width.
        """
        if isinstance(key, bytes):
            digest = hash_key_to_data_key_bytes(key)
            value = int.from_bytes(digest, "big") >> (256 - self.config.key_width)
            return BitKey.data_key(value, self.config.key_width)
        return BitKey.data_key(key, self.config.key_width)

    def _load(self, items: list[tuple[int, bytes]]) -> None:
        width = self.config.key_width
        if items:
            pairs = [(BitKey.data_key(k, width), payload) for k, payload in items]
            root_value, records = self._ecall("bulk_load", pairs)
            for key, value in records:
                self.store.upsert(key, value, Aux.merkle().pack())
        else:
            root_value = self._ecall("start_empty")
        root = BitKey.root()
        self.mirrors[0].add(root, root_value, VIA_PINNED, None)
        self.cached_where[root] = 0
        if self.config.partition_depth is not None:
            self._setup_partitions()

    def _discover_anchors(self) -> list[BitKey]:
        """Find the ~2^d partition frontier for the current tree shape."""
        import heapq

        target = 1 << self.config.partition_depth
        root_value = self._host_value(BitKey.root())
        assert isinstance(root_value, MerkleValue)
        heap: list[tuple[int, int, BitKey]] = []
        leaves: list[BitKey] = []
        for side in (0, 1):
            ptr = root_value.pointer(side)
            if ptr is not None:
                heapq.heappush(heap, (ptr.key.length, ptr.key.bits, ptr.key))
        while heap and len(heap) + len(leaves) < target:
            _, _, node = heapq.heappop(heap)
            value = self._host_value(node)
            if not isinstance(value, MerkleValue):
                leaves.append(node)
                continue
            for side in (0, 1):
                ptr = value.pointer(side)
                if ptr is not None:
                    heapq.heappush(heap, (ptr.key.length, ptr.key.bits, ptr.key))
        return sorted(leaves + [key for _, _, key in heap])

    def flush_caches(self) -> None:
        """Evict every non-pinned record from every verifier cache.

        Maintenance operation (used before partition rebalancing): records
        return to their natural protection (anchors to deferred, merkle
        chain records to merkle). Evicts leaf-first so every Merkle evict
        still finds its parent cached.
        """
        for vid, mirror in enumerate(self.mirrors):
            while True:
                victims = [e for e in mirror.entries.values()
                           if e.via != VIA_PINNED and e.children_cached == 0]
                if not victims:
                    break
                for victim in victims:
                    if victim.via == VIA_MERKLE and victim.key not in self.anchors:
                        self._evict_to_merkle(vid, victim.key)
                    else:
                        self._evict_to_deferred(vid, victim.key)
        self._drain_all()

    def rebalance_partitions(self) -> tuple[int, int]:
        """Recompute the partition frontier for the current tree (§6.2).

        As inserts grow the tree, the load-time frontier drifts: subtrees
        grow unevenly and fresh branch points appear above old anchors.
        Call right after :meth:`verify` (when only anchors remain
        deferred). Demoted anchors return to Merkle protection; promoted
        ones move to deferred. Returns ``(demoted, promoted)``.
        """
        if self.config.partition_depth is None:
            return (0, 0)
        if any(k for k in self.deferred_index if k not in self.anchors):
            raise ProtocolError(
                "rebalance requires a quiescent store: call verify() first")
        self.flush_caches()
        new_frontier = set(self._discover_anchors())
        old_frontier = set(self.anchors)
        demoted = sorted(old_frontier - new_frontier)
        promoted = sorted(new_frontier - old_frontier)
        for key in demoted:
            # Bring the record back under its Merkle parent via thread 0
            # (the only cache that can chain from the pinned root).
            result = lookup(self._host_value, key)
            if result.kind != FOUND:
                raise ProtocolError(f"anchor {key!r} fell out of the tree")
            del self.anchors[key]
            locked = set(result.path) | {key}
            self._cache_chain(0, result.path, locked)
            ts, epoch = self.deferred_index[key]
            record = self.store.read_record(key)
            mirror = self.mirrors[0]
            self._make_room(0, 1, locked)
            self.logs[0].append("add_deferred", key, record.value, ts, epoch)
            mirror.observe_add(ts)
            mirror.add(key, record.value, VIA_MERKLE, result.terminal)
            del self.deferred_index[key]
            self.cached_where[key] = 0
            self._evict_to_merkle(0, key)
        # Demotion chains leave frozen-zone records cached in mirror 0,
        # possibly including keys about to be promoted; start promotions
        # from empty caches so every chain builds cleanly.
        self.flush_caches()
        for i, key in enumerate(promoted):
            record = self.store.read_record(key)
            if record is None:
                raise ProtocolError(f"new anchor {key!r} is not in the store")
            if Aux.unpack(record.aux).state is Protection.DEFERRED:
                # Already deferred (e.g., a cooled hot record): it is in
                # the right protection tier — registering it as an anchor
                # is purely a host-side routing change. Pulling it through
                # the Merkle path instead would orphan its write entry.
                self.anchors[key] = i % self.config.n_workers
                continue
            result = lookup(self._host_value, key)
            if result.kind != FOUND:
                raise ProtocolError(f"new anchor {key!r} is not in the tree")
            locked = set(result.path) | {key}
            self._cache_chain(0, result.path, locked)
            self._cache_merkle_record(0, key, result.terminal, locked)
            self._evict_to_deferred(0, key)
            self.anchors[key] = i % self.config.n_workers
        self._drain_all()
        return (len(demoted), len(promoted))

    def _setup_partitions(self) -> None:
        """Move every partition anchor into deferred state (§6.2).

        ``partition_depth = d`` asks for ~2^d partitions: the tree is cut
        along a frontier of anchors found by repeatedly expanding the
        shallowest Merkle node until the frontier holds 2^d subtree roots
        (or the tree runs out of branch nodes). This realizes the paper's
        "merkle records at depth d are kept in deferred state" for real
        Patricia shapes, where long shared prefixes compress away the
        upper levels. Each anchor gets a round-robin owner; the transition
        runs through thread 0 (the only cache that can chain from the
        pinned root).
        """
        import heapq

        target = 1 << self.config.partition_depth
        root_value = self._host_value(BitKey.root())
        assert isinstance(root_value, MerkleValue)
        heap: list[tuple[int, int, BitKey]] = []
        leaves: list[BitKey] = []  # data keys hit by the frontier
        for side in (0, 1):
            ptr = root_value.pointer(side)
            if ptr is not None:
                heapq.heappush(heap, (ptr.key.length, ptr.key.bits, ptr.key))
        while heap and len(heap) + len(leaves) < target:
            _, _, node = heapq.heappop(heap)
            value = self._host_value(node)
            if not isinstance(value, MerkleValue):
                leaves.append(node)  # cannot expand a data record
                continue
            for side in (0, 1):
                ptr = value.pointer(side)
                if ptr is not None:
                    heapq.heappush(heap, (ptr.key.length, ptr.key.bits, ptr.key))
        anchors = sorted(leaves + [key for _, _, key in heap])
        for i, anchor in enumerate(anchors):
            self.anchors[anchor] = i % self.config.n_workers
        for anchor in anchors:
            result = lookup(self._host_value, anchor)
            if result.kind != FOUND:
                raise ProtocolError(f"anchor {anchor!r} vanished during setup")
            locked = set(result.path) | {anchor}
            self._cache_chain(0, result.path, locked)
            self._cache_merkle_record(0, anchor, result.terminal, locked)
            self._evict_to_deferred(0, anchor)
        self._drain_all()

    # ==================================================================
    # Host-view navigation helpers
    # ==================================================================
    def _host_value(self, key: BitKey) -> Value | None:
        """The host's best view of a record: shadow if cached, else store."""
        vid = self.cached_where.get(key)
        if vid is not None:
            return self.mirrors[vid].entries[key].value
        record = self.store.read_record(key)
        return record.value if record is not None else None

    def _route(self, path: list[BitKey]) -> tuple[int, int]:
        """(verifier id, index of first node to cache) for a lookup path.

        The chain starts at the highest partition anchor on the path (its
        owner's verifier) or at the pinned root (thread 0) when the path
        never crosses the partition boundary.
        """
        for i, node in enumerate(path):
            if node in self.anchors:
                return self.anchors[node], i
        return 0, 0

    # ==================================================================
    # Cache plumbing: adds, evicts, room-making
    # ==================================================================
    def _make_room(self, vid: int, need: int, locked: set[BitKey]) -> None:
        mirror = self.mirrors[vid]
        while mirror.free < need:
            victim = mirror.victims(locked, 1)[0]
            # Anchors must stay in deferred state (the partitioning of §6.2
            # depends on it); everything merkle-added goes back to merkle.
            if victim.via == VIA_MERKLE and victim.key not in self.anchors:
                self._evict_to_merkle(vid, victim.key)
            else:
                self._evict_to_deferred(vid, victim.key)

    def _cache_chain(self, vid: int, path: list[BitKey],
                     locked: set[BitKey]) -> None:
        """Ensure every node of ``path[start:]`` is in verifier ``vid``'s
        cache, adding via the mode each record's aux dictates."""
        _, start = self._route(path)
        mirror = self.mirrors[vid]
        for i in range(start, len(path)):
            node = path[i]
            if node in mirror:
                mirror.touch(node)
                continue
            if node.is_root:
                raise ProtocolError(
                    f"chain for verifier {vid} reached the root, which is "
                    f"pinned in verifier 0 only"
                )
            record = self.store.read_record(node)
            if record is None:
                raise StoreError(f"chain node {node!r} missing from store")
            aux = Aux.unpack(record.aux)
            if aux.state is Protection.DEFERRED:
                self._cache_deferred_record(vid, node, record.value)
            elif aux.state is Protection.MERKLE:
                self._cache_merkle_record(vid, node, path[i - 1], locked,
                                          value=record.value)
            else:
                raise ProtocolError(
                    f"chain node {node!r} marked cached but absent from "
                    f"shadow {vid} (cross-cache conflict)"
                )

    def _cache_deferred_record(self, vid: int, key: BitKey, value: Value) -> None:
        """Pull a deferred-state record into verifier ``vid``'s cache."""
        ts, epoch = self.deferred_index[key]
        mirror = self.mirrors[vid]
        self._make_room(vid, 1, {key})
        self.logs[vid].append("add_deferred", key, value, ts, epoch)
        mirror.observe_add(ts)
        entry = mirror.add(key, value, VIA_DEFERRED, None)
        del self.deferred_index[key]
        self.cached_where[key] = vid
        self.store.upsert(key, value, Aux.cached(vid, entry.slot).pack())
        COUNTERS.cache_misses += 1

    def _cache_merkle_record(self, vid: int, key: BitKey, parent: BitKey,
                             locked: set[BitKey], value: Value | None = None) -> None:
        """Pull a Merkle-state record into the cache (parent already there)."""
        if value is None:
            record = self.store.read_record(key)
            if record is None:
                raise StoreError(f"merkle record {key!r} missing from store")
            value = record.value
        mirror = self.mirrors[vid]
        self._make_room(vid, 1, locked | {key, parent})
        self.logs[vid].append("add_merkle", key, value, parent)
        entry = mirror.add(key, value, VIA_MERKLE, parent)
        self.cached_where[key] = vid
        self.store.upsert(key, value, Aux.cached(vid, entry.slot).pack())
        COUNTERS.cache_misses += 1

    def _evict_to_deferred(self, vid: int, key: BitKey) -> tuple[int, int]:
        """Evict a cached record into deferred protection; returns (ts, e)."""
        mirror = self.mirrors[vid]
        entry = mirror.remove(key)
        ts = mirror.predict_evict()
        epoch = self.current_epoch
        self.logs[vid].append("evict_deferred", key)
        self._expected_evicts[vid].append((ts, epoch))
        del self.cached_where[key]
        self.deferred_index[key] = (ts, epoch)
        self.store.upsert(key, entry.value, Aux.deferred(ts, epoch).pack())
        return ts, epoch

    def _evict_to_merkle(self, vid: int, key: BitKey) -> None:
        """Evict a cached record into Merkle protection (parent cached)."""
        mirror = self.mirrors[vid]
        entry = mirror.entries[key]
        parent_key = entry.parent_key
        if parent_key is None:
            raise ProtocolError(f"{key!r} has no mirrored parent; cannot "
                                f"evict to merkle")
        mirror.remove(key)
        self.logs[vid].append("evict_merkle", key, parent_key)
        del self.cached_where[key]
        self.store.upsert(key, entry.value, Aux.merkle().pack())
        # Mirror the verifier's lazy parent update (§4.3.1).
        parent = mirror.entries[parent_key]
        side = key.direction_from(parent_key)
        ptr = parent.value.pointer(side)
        if ptr is None or ptr.key != key:
            raise ProtocolError(f"shadow parent {parent_key!r} does not "
                                f"point at {key!r}")
        new_hash = host_value_hash(entry.value)
        parent.value = parent.value.with_pointer(side, ptr.with_hash(new_hash))

    # ==================================================================
    # Receipt plumbing
    # ==================================================================
    def _drain_all(self) -> None:
        """Flush all logs, deliver receipts to clients, audit predictions."""
        for vid, log in enumerate(self.logs):
            expected = self._expected_evicts[vid]
            for result in log.drain():
                if isinstance(result, OpReceipt):
                    # Untrusted transport; the client's accept() checks.
                    client = self.clients.get(result.client_id)
                    if client is not None:
                        self.receipt_channel.deliver(result, client)
                elif isinstance(result, tuple) and len(result) == 2:
                    if not expected:
                        raise ProtocolError(
                            f"verifier {vid} returned an unpredicted evict"
                        )
                    predicted = expected.popleft()
                    if predicted != result:
                        raise ProtocolError(
                            f"clock mirror drift on verifier {vid}: "
                            f"predicted {predicted}, verifier says {result}"
                        )
        # A "reordered" receipt is merely withheld; acceptance is
        # order-insensitive, so delivering stragglers last is the whole
        # attack, and it lands harmlessly here.
        self.receipt_channel.flush_held()

    # ==================================================================
    # Public API
    # ==================================================================
    def get(self, client: Client, key: int | bytes, worker: int = 0) -> OpResult:
        """Validated read. Returns the payload (None if absent/deleted)."""
        bk = self.data_key(key)
        nonce = client.next_nonce()
        payload = self._data_op(worker, client, bk, "get", nonce=nonce)
        self._after_op()
        return OpResult(payload, nonce, worker)

    def put(self, client: Client, key: int | bytes, payload: bytes | None,
            worker: int = 0) -> OpResult:
        """Authorized write (``payload=None`` deletes). Returns the nonce."""
        bk = self.data_key(key)
        request = client.make_put(bk, payload)
        self._data_op(worker, client, bk, "put", nonce=request.nonce,
                      payload=payload, tag=request.tag)
        self._after_op()
        return OpResult(payload, request.nonce, worker)

    def apply_get(self, client: Client, request, worker: int = 0) -> OpResult:
        """Execute a pre-made :class:`~repro.core.protocol.GetRequest`.

        The serving layer builds requests client-side (nonce drawn at
        request-construction time) so a retry can be deduplicated by nonce
        instead of re-drawing; this entry point applies such a request.
        """
        payload = self._data_op(worker, client, request.key, "get",
                                nonce=request.nonce)
        self._after_op()
        return OpResult(payload, request.nonce, worker)

    def apply_put(self, client: Client, request, worker: int = 0) -> OpResult:
        """Execute a pre-made :class:`~repro.core.protocol.PutRequest`
        (client-authorized nonce + MAC travel with the request)."""
        self._data_op(worker, client, request.key, "put",
                      nonce=request.nonce, payload=request.payload,
                      tag=request.tag)
        self._after_op()
        return OpResult(request.payload, request.nonce, worker)

    # ==================================================================
    # Group-commit batching (the serving loop's crossing amortizer)
    # ==================================================================
    def apply_batch(self, ops: list[tuple]) -> list[BatchOpOutcome]:
        """Execute many pre-made requests under ONE enclave crossing.

        ``ops`` is a list of ``(client, request, kind, worker)`` tuples
        (``client`` may be None for an unregistered sender — that op fails
        alone). Host-side staging runs the normal per-op engine, which
        buffers verifier entries instead of crossing; then a single
        multi-shard ``apply_batch`` ecall settles everything and receipts
        drain with zero further crossings.

        Failure semantics (see PROTOCOL.md "Batched execution & group
        commit"):

        * a client-attributable rejection (bad MAC, replayed nonce) on an
          op that only *updated* existing state is **isolated**: its
          validate entry is dropped, the host store is compensated back to
          the pre-op value (keeping the already-applied add/evict pair
          balanced in the set hashes), and only that op's outcome carries
          the error — the rest of the batch re-flushes and commits;
        * a rejection on an op that changed tree *structure* (insert
          extend/split), or that collides on a key with a later op in the
          same batch, voids the batch with :class:`BatchAbortedError` (an
          availability error: the server degrades, heals, and clients
          resolve through the idempotency table);
        * an enclave reboot or gate exhaustion reinstates every
          undispatched entry and propagates, exactly like a log flush.

        The epoch close driven by ``config.batch_ops`` lands on the batch
        boundary — never between two ops of one batch.
        """
        if not ops:
            return []
        # Entries buffered by non-batched entry points flush under their
        # own crossing first, so entry->op ownership starts from empty
        # buffers.
        for log in self.logs:
            if log.pending:
                log.flush()
        width = self.config.key_width
        results: list[BatchOpOutcome] = []
        owners_by_vid: dict[int, list] = {vid: [] for vid in range(len(self.logs))}
        #: Per-op compensation record: (mode, key, pre-op value) where mode
        #: is "skip" (never staged), "none" (absence proof only), "value"
        #: (store value restore), "cached" (mirror + store restore), or
        #: "insert" (not compensatable -> batch abort).
        comp: list[tuple] = []
        staged = 0
        for i, (client, request, kind, worker) in enumerate(ops):
            if client is None:
                results.append(BatchOpOutcome(
                    None, request.nonce, worker, ProtocolError(
                        f"request from unregistered client "
                        f"{request.client_id}")))
                comp.append(("skip", None, None))
                continue
            if kind not in ("get", "put"):
                results.append(BatchOpOutcome(
                    None, request.nonce, worker,
                    ProtocolError(f"unknown request kind {kind!r}")))
                comp.append(("skip", None, None))
                continue
            key = request.key
            pre = self.store.read_record(key)
            pre_value = pre.value if pre is not None else None
            try:
                if kind == "get":
                    payload = self._data_op(worker, client, key, "get",
                                            nonce=request.nonce)
                else:
                    payload = self._data_op(worker, client, key, "put",
                                            nonce=request.nonce,
                                            payload=request.payload,
                                            tag=request.tag)
            except AvailabilityError:
                raise  # gate down mid-staging: the whole batch resolves
                       # through recovery, like any availability failure
            except Exception as exc:
                # Host-side rejection. If it staged nothing it fails
                # alone; a half-staged op cannot be unstitched, so it
                # voids the batch (recovery discards the buffers).
                before = sum(len(o) for o in owners_by_vid.values())
                self._sync_owners(owners_by_vid, i)
                if sum(len(o) for o in owners_by_vid.values()) != before:
                    raise
                results.append(BatchOpOutcome(None, request.nonce, worker, exc))
                comp.append(("skip", None, None))
                continue
            if pre is None:
                mode = "none" if self.store.read_record(key) is None \
                    else "insert"
            elif key in self.cached_where and key.length == width:
                mode = "cached"
            else:
                mode = "value"
            comp.append((mode, key, pre_value))
            results.append(BatchOpOutcome(payload, request.nonce, worker))
            staged += 1
            COUNTERS.ops += 1
            self.ops_since_close += 1
            self._sync_owners(owners_by_vid, i)
        if self.faults is not None:
            eligible = [i for i, c in enumerate(comp)
                        if c[0] == "value" and ops[i][2] == "put"
                        and results[i].error is None]
            if eligible and self.faults.fire("batch.partial"):
                self._poison_staged_put(owners_by_vid, eligible[-1])
        ecalls = self._group_flush(ops, owners_by_vid, comp, results)
        COUNTERS.batches += 1
        COUNTERS.batch_ops_total += staged
        COUNTERS.crossings_saved += max(0, staged - ecalls)
        self._drain_all()
        if (self.config.batch_ops is not None
                and self.ops_since_close >= self.config.batch_ops):
            self.verify()  # epoch closes on the batch boundary (§8.1)
        return results

    def _sync_owners(self, owners_by_vid: dict[int, list], op_index: int) -> None:
        """Attribute newly-buffered log entries to ``op_index``.

        A capacity auto-flush inside staging dispatches the buffer's
        *front*; dropping the same prefix from the owner list keeps the
        remaining suffix aligned."""
        for vid, log in enumerate(self.logs):
            owners = owners_by_vid[vid]
            cur = log.pending
            if cur < len(owners):
                del owners[:len(owners) - cur]
            while len(owners) < cur:
                owners.append(op_index)

    def _poison_staged_put(self, owners_by_vid: dict[int, list],
                           target: int) -> bool:
        """`batch.partial` fault body: corrupt the client MAC of one
        staged update-class put so the enclave genuinely rejects exactly
        that entry and the isolation path runs end to end."""
        for vid, log in enumerate(self.logs):
            owners = owners_by_vid[vid]
            for pos, owner in enumerate(owners):
                if owner != target:
                    continue
                method, args = log._buffer[pos]
                if method != "validate_put_update":
                    continue
                client_id, key, payload, nonce, tag = args
                bad = bytes([tag[0] ^ 0x01]) + tag[1:]
                log._buffer[pos] = (method,
                                    (client_id, key, payload, nonce, bad))
                return True
        return False

    @staticmethod
    def _key_conflict(comp: list[tuple], op_idx: int) -> bool:
        """A later op in the batch staged entries embedding this key's
        post-op value; dropping the failed validate would falsify them."""
        key = comp[op_idx][1]
        for j in range(op_idx + 1, len(comp)):
            if comp[j][0] != "skip" and comp[j][1] == key:
                return True
        return False

    def _compensate(self, record: tuple) -> None:
        """Undo the host-visible effect of a poisoned (rejected) op: the
        verifier evicted the *old* value, so the host store (and mirror,
        for a retained record) must say the old value too — that keeps the
        already-applied add/evict pair balanced in the set hashes."""
        mode, key, old_value = record
        if mode == "none":
            return
        if mode == "cached":
            vid = self.cached_where.get(key)
            if vid is not None and key in self.mirrors[vid].entries:
                self.mirrors[vid].entries[key].value = old_value
        current = self.store.read_record(key)
        if current is not None and old_value is not None:
            self.store.upsert(key, old_value, current.aux)

    def _group_flush(self, ops: list[tuple], owners_by_vid: dict[int, list],
                     comp: list[tuple],
                     results: list[BatchOpOutcome]) -> int:
        """Settle every buffered shard in one ``apply_batch`` crossing
        (re-crossing only to finish a partially-failed batch). Returns the
        number of crossings spent."""
        pending: list[list] = []
        for vid, log in enumerate(self.logs):
            if log.pending:
                entries = log.take_pending()
                owners = owners_by_vid.get(vid) or []
                if len(owners) != len(entries):
                    owners = [None] * len(entries)
                pending.append([vid, entries, owners])
                log.flushes += 1
        ecalls = 0
        guard = len(ops) + 2
        while pending:
            guard -= 1
            shards = [(vid, entries) for vid, entries, _ in pending]
            ecalls += 1
            TRACER.record("ecall", self._sim_now(), None,
                          method="apply_batch", shards=len(shards),
                          entries=sum(len(e) for _, e in shards))
            try:
                shard_results, failure = self._ecall("apply_batch", shards)
            except Exception:
                # Reboot, gate exhaustion, or a structural integrity
                # alarm: reinstate everything undispatched (losing buffered
                # entries would silently unbalance the set hashes) and let
                # the typed error drive recovery.
                for vid, entries, _ in pending:
                    self.logs[vid].reinstate(entries)
                raise
            # Shards before the failure point completed; the failing shard
            # executed a prefix. Absorb exactly what ran.
            for (vid, entries, _), res in zip(pending, shard_results):
                self.logs[vid].absorb(res)
            if failure is None:
                return ecalls
            si, ei, exc = failure
            vid, entries, owners = pending[si]
            op_idx = owners[ei]
            tail_entries = entries[ei + 1:]
            tail_owners = owners[ei + 1:]
            rest = pending[si + 1:]
            mode = comp[op_idx][0] if op_idx is not None else None
            isolatable = (
                op_idx is not None and guard > 0
                and entries[ei][0].startswith("validate_")
                and mode in ("none", "value", "cached")
                and results[op_idx].error is None
                and not self._key_conflict(comp, op_idx)
            )
            if not isolatable:
                self.logs[vid].reinstate(tail_entries)
                for v2, e2, _ in rest:
                    self.logs[v2].reinstate(e2)
                raise BatchAbortedError(
                    f"group-commit batch voided: failing entry "
                    f"{entries[ei][0]!r} cannot be isolated "
                    f"({type(exc).__name__}: {exc})") from exc
            # Drop the poisoned validate, compensate the host, fail the op
            # alone, and re-flush the undispatched remainder. Validations
            # never advance the verifier clock, so every later evict
            # prediction still holds.
            self._compensate(comp[op_idx])
            results[op_idx] = BatchOpOutcome(
                None, results[op_idx].nonce, results[op_idx].worker, exc)
            pending = ([[vid, tail_entries, tail_owners]]
                       if tail_entries else []) + rest
        return ecalls

    def scan(self, client: Client, start_key: int | bytes, count: int,
             worker: int = 0) -> list[tuple[int, bytes]]:
        """Ordered scan: per-key validated reads over the key directory
        (§8.1: scans are not atomic; per-key rate is what is measured)."""
        start = self.data_key(start_key)
        out: list[tuple[int, bytes]] = []
        for bk in self.store.directory.range_from(start, count):
            nonce = client.next_nonce()
            payload = self._data_op(worker, client, bk, "get", nonce=nonce)
            self._after_op()
            if payload is not None:
                out.append((bk.bits, payload))
        return out

    def flush(self) -> None:
        """Flush all verification logs and deliver pending receipts."""
        self._drain_all()

    def verify(self) -> VerifyReport:
        """Close the current epoch: sorted Merkle re-application, anchor
        migration, aggregated set-hash check, epoch receipts (§6.3, §5.3)."""
        self._drain_all()
        closing = self._ecall("start_epoch_close")
        if closing != self.current_epoch:
            raise ProtocolError("epoch mirror drift")
        self.current_epoch += 1
        width = self.config.key_width

        # 1. Sorted Merkle updates (§6.3): every deferred *data* record that
        # is not itself a partition anchor returns to Merkle protection.
        data_keys = [
            k for k in self.deferred_index
            if k.length == width and k not in self.anchors
        ]
        if self.config.sorted_merkle_updates:
            data_keys.sort()
        for key in data_keys:
            ts, epoch = self.deferred_index[key]
            result = lookup(self._host_value, key)
            if result.kind != FOUND:
                raise ProtocolError(f"deferred record {key!r} fell out of the tree")
            vid, _ = self._route(result.path)
            locked = set(result.path) | {key}
            self._cache_chain(vid, result.path, locked)
            record = self.store.read_record(key)
            mirror = self.mirrors[vid]
            self._make_room(vid, 1, locked)
            self.logs[vid].append("add_deferred", key, record.value, ts, epoch)
            mirror.observe_add(ts)
            mirror.add(key, record.value, VIA_MERKLE, result.terminal)
            del self.deferred_index[key]
            self.cached_where[key] = vid
            self._evict_to_merkle(vid, key)

        # 2. Anchor migration: deferred anchors tagged <= closing move to
        # the new epoch (cache-resident anchors are ignored, §5.2).
        migrated_anchors = 0
        for anchor in sorted(self.anchors):
            if anchor in self.cached_where:
                continue
            ts, epoch = self.deferred_index[anchor]
            if epoch > closing:
                continue
            vid = self.anchors[anchor]
            record = self.store.read_record(anchor)
            self._cache_deferred_record(vid, anchor, record.value)
            self._evict_to_deferred(vid, anchor)
            migrated_anchors += 1

        self._drain_all()
        receipts = self._ecall("finish_epoch_close", closing)
        TRACER.record("ecall", self._sim_now(), None,
                      method="epoch_close", epoch=closing,
                      receipts=len(receipts))
        for client_id, receipt in receipts.items():
            client = self.clients.get(client_id)
            if client is not None:
                self.receipt_channel.deliver(receipt, client)
        self.receipt_channel.flush_held()
        self.ops_since_close = 0
        return VerifyReport(closing, len(data_keys), migrated_anchors, receipts)

    # ==================================================================
    # The operation engine
    # ==================================================================
    def _after_op(self) -> None:
        COUNTERS.ops += 1
        self.ops_since_close += 1
        if (self.config.batch_ops is not None
                and self.ops_since_close >= self.config.batch_ops):
            self.verify()

    def _data_op(self, worker: int, client: Client, key: BitKey, kind: str,
                 nonce: int, payload: bytes | None = None,
                 tag: bytes | None = None) -> bytes | None:
        """One validated get/put on a data key; returns the result payload."""
        for _attempt in range(64):
            vid_cached = self.cached_where.get(key)
            if vid_cached is not None:
                if self.config.cache_hot_records and key.length == \
                        self.config.key_width:
                    # §6.1 top tier: the record is verifier-resident —
                    # validate directly, no hashing, no set updates.
                    return self._cached_op(vid_cached, client, key, kind,
                                           nonce, payload, tag)
                # Otherwise (e.g., a singleton-anchor data key caught
                # mid-migration): evict to deferred and retry warm.
                self._evict_to_deferred(vid_cached, key)
                continue
            record = self.store.read_record(key)
            if record is None:
                return self._absent_op(worker, client, key, kind, nonce,
                                       payload, tag)
            aux = Aux.unpack(record.aux)
            if aux.state is Protection.DEFERRED:
                done = self._warm_op(worker, client, key, record, aux, kind,
                                     nonce, payload, tag)
                if done is not None:
                    return done[0]
                continue  # CAS lost; retry
            if aux.state is Protection.MERKLE:
                return self._cold_op(worker, client, key, kind, nonce,
                                     payload, tag)
            raise ProtocolError(f"aux says CACHED but host lost track of {key!r}")
        raise ProtocolError(f"operation on {key!r} starved after 64 CAS retries")

    def _cached_op(self, vid: int, client: Client, key: BitKey, kind: str,
                   nonce: int, payload: bytes | None,
                   tag: bytes | None) -> bytes | None:
        """Cache-hit path: the record is inside verifier ``vid``'s cache.

        Zero hash computations, zero multiset updates, zero store CAS —
        exactly the §6.1 claim for the hierarchy's top tier. Only the
        validation (MAC + nonce) crosses the log.
        """
        mirror = self.mirrors[vid]
        entry = mirror.touch(key)
        log = self.logs[vid]
        COUNTERS.cache_hits += 1
        if kind == "get":
            log.append("validate_get", client.client_id, key, nonce)
            return entry.value.payload
        log.append("validate_put_update", client.client_id, key, payload,
                   nonce, tag)
        entry.value = DataValue(payload)
        return payload

    def _retain_after_op(self, vid: int, key: BitKey, value: Value) -> None:
        """cache_hot_records mode: keep the record verifier-resident after
        its op instead of evicting it (the LRU will cool it later)."""
        mirror = self.mirrors[vid]
        entry = mirror.add(key, value, VIA_DEFERRED, None)
        self.cached_where[key] = vid
        self.deferred_index.pop(key, None)
        self.store.upsert(key, value, Aux.cached(vid, entry.slot).pack())

    def _warm_op(self, worker: int, client: Client, key: BitKey, record,
                 aux: Aux, kind: str, nonce: int, payload: bytes | None,
                 tag: bytes | None):
        """Deferred-state fast path (§7 worker inner loop)."""
        mirror = self.mirrors[worker]
        # Reserve a slot for the transient add/validate/evict triple first:
        # any victim evictions must precede this op in both the log and the
        # clock-prediction stream. The freelist round-trips across the
        # triple, so slot mirroring stays aligned.
        self._make_room(worker, 1, {key})
        old_value = record.value
        new_value = old_value if kind == "get" else DataValue(payload)
        if self.config.cache_hot_records:
            # Admit and *retain*: the record climbs to the hierarchy's top
            # tier; no evict, no write-set entry, no CAS race window (the
            # admission itself moves the record out of deferred state).
            mirror.observe_add(aux.timestamp)
            log = self.logs[worker]
            log.append("add_deferred", key, old_value, aux.timestamp,
                       aux.epoch)
            if kind == "get":
                log.append("validate_get", client.client_id, key, nonce)
            else:
                log.append("validate_put_update", client.client_id, key,
                           payload, nonce, tag)
            self._retain_after_op(worker, key, new_value)
            result = old_value.payload if kind == "get" else payload
            return (result,)
        ts_pred = max(mirror.clock, aux.timestamp) + 1
        new_aux = Aux.deferred(ts_pred, self.current_epoch)
        if not self.store.try_cas(key, old_value, record.aux,
                                  new_value, new_aux.pack()):
            return None  # lost the race (§5.3 Example 5.2): caller retries
        mirror.observe_add(aux.timestamp)
        confirmed = mirror.predict_evict()
        if confirmed != ts_pred:
            raise ProtocolError("clock mirror drift in warm path")
        log = self.logs[worker]
        log.append("add_deferred", key, old_value, aux.timestamp, aux.epoch)
        if kind == "get":
            log.append("validate_get", client.client_id, key, nonce)
        else:
            log.append("validate_put_update", client.client_id, key, payload,
                       nonce, tag)
        log.append("evict_deferred", key)
        self._expected_evicts[worker].append((ts_pred, self.current_epoch))
        self.deferred_index[key] = (ts_pred, self.current_epoch)
        result = old_value.payload if kind == "get" else payload
        COUNTERS.cache_hits += 1  # no Merkle work: the deferred fast path
        return (result,)

    def _cold_op(self, worker: int, client: Client, key: BitKey, kind: str,
                 nonce: int, payload: bytes | None,
                 tag: bytes | None) -> bytes | None:
        """Merkle-state slow path: chain in, validate, evict to deferred."""
        result = lookup(self._host_value, key)
        if result.kind != FOUND:
            raise ProtocolError(f"aux says MERKLE but {key!r} not in tree")
        vid, _ = self._route(result.path)
        locked = set(result.path) | {key}
        self._cache_chain(vid, result.path, locked)
        value = self.store.read_record(key).value
        self._cache_merkle_record(vid, key, result.terminal, locked, value=value)
        log = self.logs[vid]
        if kind == "get":
            log.append("validate_get", client.client_id, key, nonce)
            out = value.payload
        else:
            log.append("validate_put_update", client.client_id, key, payload,
                       nonce, tag)
            self.mirrors[vid].entries[key].value = DataValue(payload)
            out = payload
        if self.config.cache_hot_records:
            return out  # retain: first touch already promotes to cached
        self._evict_to_deferred(vid, key)
        return out

    def _absent_op(self, worker: int, client: Client, key: BitKey, kind: str,
                   nonce: int, payload: bytes | None,
                   tag: bytes | None) -> bytes | None:
        """The key is not in the tree: prove absence, or insert (§4.2)."""
        result = lookup(self._host_value, key)
        if result.kind == FOUND:
            raise ProtocolError(f"store lost record {key!r} that the tree has")
        vid, _ = self._route(result.path)
        locked = set(result.path) | {key}
        self._cache_chain(vid, result.path, locked)
        log = self.logs[vid]
        if kind == "get":
            log.append("validate_get_absent", client.client_id, key,
                       result.terminal, nonce)
            return None
        if payload is None:
            # Deleting an absent key: prove absence instead of inserting.
            log.append("validate_get_absent", client.client_id, key,
                       result.terminal, nonce)
            return None
        mirror = self.mirrors[vid]
        terminal = result.terminal
        if result.kind == ABSENT_NULL:
            self._make_room(vid, 1, locked)
            log.append("validate_put_extend", client.client_id, key, payload,
                       nonce, tag, terminal)
            leaf_value = DataValue(payload)
            entry = mirror.add(key, leaf_value, VIA_MERKLE, terminal)
            self.cached_where[key] = vid
            self.store.upsert(key, leaf_value, Aux.cached(vid, entry.slot).pack())
            # Mirror the verifier's pointer write at the terminal.
            term_entry = mirror.entries[terminal]
            side = key.direction_from(terminal)
            term_entry.value = term_entry.value.with_pointer(
                side, Pointer(key, host_value_hash(leaf_value)))
            self._evict_to_deferred(vid, key)
            return payload
        # ABSENT_SPLIT: a new internal node at lca(key, bypass).
        self._make_room(vid, 2, locked)
        log.append("validate_put_split", client.client_id, key, payload,
                   nonce, tag, terminal)
        bypass = result.bypass
        mid = key.lca(bypass)
        leaf_value = DataValue(payload)
        term_entry = mirror.entries[terminal]
        side = key.direction_from(terminal)
        old_ptr = term_entry.value.pointer(side)
        mid_value = MerkleValue()
        mid_value = mid_value.with_pointer(bypass.direction_from(mid), old_ptr)
        mid_value = mid_value.with_pointer(
            key.direction_from(mid), Pointer(key, host_value_hash(leaf_value)))
        mid_entry = mirror.add(mid, mid_value, VIA_MERKLE, terminal)
        leaf_entry = mirror.add(key, leaf_value, VIA_MERKLE, mid)
        self.cached_where[mid] = vid
        self.cached_where[key] = vid
        self.store.upsert(mid, mid_value, Aux.cached(vid, mid_entry.slot).pack())
        self.store.upsert(key, leaf_value, Aux.cached(vid, leaf_entry.slot).pack())
        term_entry.value = term_entry.value.with_pointer(
            side, Pointer(mid, host_value_hash(mid_value)))
        mirror.reparent(bypass, mid)
        self._evict_to_deferred(vid, key)
        return payload

    # ==================================================================
    # Durability (§7): epoch-synchronized checkpoint and recovery
    # ==================================================================
    def checkpoint(self) -> "FastVerCheckpoint":
        """Take a durable checkpoint: CPR-flush the store, seal the
        verifier state. Call at a quiescent point (ideally right after
        ``verify()``, aligning with the paper's epoch-synchronized CPR)."""
        self._drain_all()
        for mirror, expected in zip(self.mirrors, self._expected_evicts):
            if expected:
                raise ProtocolError("checkpoint with unconfirmed predictions")
        self._ckpt_version = getattr(self, "_ckpt_version", 0) + 1
        from repro.store.checkpoint import take_checkpoint
        token = take_checkpoint(self.store, self._ckpt_version,
                                faults=self.faults)
        blob = self._ecall("checkpoint_state")
        ckpt = FastVerCheckpoint(
            version=self._ckpt_version,
            store_token=token,
            verifier_blob=blob,
            anchors=dict(self.anchors),
        )
        self.last_checkpoint = ckpt
        return ckpt

    def recover(self, checkpoint: "FastVerCheckpoint") -> None:
        """Rebuild all volatile state after a crash/reboot from a
        checkpoint. The enclave detects rollback (an old checkpoint) via
        its sealed slot; the untrusted side is rebuilt from the store's
        aux words and the verifier's (non-confidential) cache dump.

        Safe to call after *any* availability error, including a surprise
        enclave reboot mid-epoch: the sealed slot survives reboots, so
        restoring the latest verifier blob passes the rollback check and
        the interrupted epoch's unsettled operations are simply re-run.
        Transient failures during recovery itself (the gate or the device
        flaking *again*) restart the whole sequence a bounded number of
        times — each attempt begins with a fresh enclave reboot, so
        partial attempts cannot leave mixed state behind.
        """
        last_exc: Exception | None = None
        for _attempt in range(self._ecall_backoff.max_attempts):
            try:
                self._recover_once(checkpoint)
                self.last_checkpoint = checkpoint
                return
            except EnclaveDeadError as exc:
                # Torn down, not rebooted: this instance can never come
                # back, so restore-in-place is hopeless. Typed as a
                # RecoveryError so the supervisor falls through to the
                # next rung (salvage re-provisions a fresh enclave).
                raise RecoveryError(
                    "enclave instance is destroyed; restore-in-place is "
                    "impossible") from exc
            except (EnclaveUnavailableError, TransientIOError) as exc:
                last_exc = exc
                COUNTERS.ecall_retries += 1
        raise last_exc

    def _recover_once(self, checkpoint: "FastVerCheckpoint") -> None:
        from repro.store.checkpoint import recover as store_recover
        from repro.store.checkpoint import rot_blob_at_rest
        # The retained token sat on untrusted storage since it was taken;
        # consulting it is when rot-at-rest becomes observable.
        rot_blob_at_rest(checkpoint.store_token, self.faults)
        # Rebuild the untrusted store first: if the device cannot serve
        # this token (RecoveryError), fail before touching enclave state.
        store = store_recover(checkpoint.store_token, self.store.log.device)
        self.enclave.reboot()
        # Register clients before restoring state so the restored nonce
        # high-water marks land on registered entries (anti-replay burn).
        for client in self.clients.values():
            self.enclave.ecall("register_client", client.client_id,
                               client.key.key_bytes())
        self.enclave.ecall("restore_state", checkpoint.verifier_blob)
        self.store = store
        self.receipt_channel.reset()
        self.current_epoch = self.enclave.ecall("current_epoch")
        self.anchors = dict(checkpoint.anchors)
        self.deferred_index = {}
        try:
            for key, _value, aux_word in self.store.items():
                aux = Aux.unpack(aux_word)
                if aux.state is Protection.DEFERRED:
                    self.deferred_index[key] = (aux.timestamp, aux.epoch)
        except IntegrityError as exc:
            # Rot can strike a page *between* the store rebuild's validation
            # scan and this one — the device fires per read. Aborting here
            # would leave the deferred index half-built, which a later
            # verify() trips over far from the cause. During recovery an
            # unreadable page means this token cannot restore service, so it
            # is typed exactly like the store-side scan types it: a
            # RecoveryError that sends the heal ladder on to salvage.
            raise RecoveryError(
                f"store scan during recovery hit a corrupt page: "
                f"{exc}") from exc
        # Rebuild mirrors from the enclave's cache dumps; entries re-add in
        # the same order the verifier re-added them at restore, so slot
        # numbering realigns automatically.
        cfg = self.config
        self.mirrors = [VerifierMirror(i, cfg.cache_capacity)
                        for i in range(cfg.n_workers)]
        self.cached_where = {}
        self._expected_evicts = [deque() for _ in range(cfg.n_workers)]
        clocks = self.enclave.ecall("clocks")
        for vid, mirror in enumerate(self.mirrors):
            mirror.clock = clocks[vid]
            entries = self.enclave.ecall("dump_cache", vid)
            for key, value in entries:
                if key.is_root:
                    mirror.add(key, value, VIA_PINNED, None)
                elif key in self.anchors or not isinstance(value, MerkleValue):
                    mirror.add(key, value, VIA_DEFERRED, None)
                else:
                    mirror.add(key, value, VIA_DEFERRED, None)
                self.cached_where[key] = vid
        # Recompute merkle parent links for cached merkle records so LRU
        # evictions pick the right mode again.
        for vid, mirror in enumerate(self.mirrors):
            for key in list(mirror.entries):
                entry = mirror.entries[key]
                if key.is_root or key in self.anchors:
                    continue
                if not isinstance(entry.value, MerkleValue) and \
                        key.length != cfg.key_width:
                    continue
                parent = self._find_cached_parent(mirror, key)
                if parent is not None:
                    entry.via = VIA_MERKLE
                    entry.parent_key = parent
                    mirror.entries[parent].children_cached += 1
        self.logs = [VerificationLog(self.enclave, i, cfg.log_capacity)
                     for i in range(cfg.n_workers)]
        self.ops_since_close = 0

    @staticmethod
    def _find_cached_parent(mirror: VerifierMirror, key: BitKey) -> BitKey | None:
        """The cached ancestor whose pointer targets ``key``, if any."""
        best = None
        for candidate, entry in mirror.entries.items():
            if not isinstance(entry.value, MerkleValue):
                continue
            if not candidate.is_proper_ancestor_of(key):
                continue
            ptr = entry.value.pointer(key.direction_from(candidate))
            if ptr is not None and ptr.key == key:
                best = candidate
        return best

    # ==================================================================
    # Verified record-level repair (repro.scrub)
    # ==================================================================
    def repair_record(self, key: BitKey, candidate: Value,
                      host_prevet: bool = True) -> str:
        """Patch one corrupted store record with ``candidate`` and re-vet
        it against the verifier's authenticated state. Returns the tier
        the repair resolved in (``"cached"``/``"deferred"``/``"merkle"``).

        The candidate is an *untrusted courier's* copy — a standby's
        committed view, the retained shipped tail, the server's durable
        read cache — so nothing about its provenance is trusted:

        * a **cached** record needs no candidate at all: the enclave's own
          cache holds the value (the host mirror shadows it), and the
          store copy is superseded by re-upserting the mirrored value;
        * a **deferred** record takes the candidate with its existing
          ``(ts, epoch)`` aux word; individual deferred values are
          unverifiable by design, so the vetting completes in aggregate at
          the next epoch close — a forged candidate lands as
          ``SetHashMismatchError`` there, exactly like any other deferred
          tampering;
        * a **merkle** record is re-vetted *immediately*: the candidate is
          installed and then pulled through the normal cold path (chain
          cache → ``add_merkle`` → evict), so the enclave checks
          ``H(candidate)`` against the parent hash it authenticated down
          from the pinned root. A forged candidate raises
          :class:`RepairForgeryError` from exactly the check that would
          have caught the host serving the forgery directly.

        ``host_prevet`` runs the same hash checks host-side *first*, so an
        honest repair against a still-dirty ancestor chain fails with a
        retryable :class:`RepairFailedError` *before* any enclave state is
        touched (an enclave-side rejection mid-chain would poison the
        session and force a whole-store restore). A byzantine host can
        skip its own pre-vet — the enclave gate behind it is the one that
        is load-bearing, which is what the red-team campaign drives.
        """
        vid = self.cached_where.get(key)
        if vid is not None:
            entry = self.mirrors[vid].entries[key]
            self.store.upsert(key, entry.value,
                              Aux.cached(vid, entry.slot).pack())
            return "cached"
        if key in self.deferred_index:
            if candidate is None:
                raise RepairFailedError(
                    f"no repair candidate for deferred record {key!r}")
            ts, epoch = self.deferred_index[key]
            self.store.upsert(key, candidate, Aux.deferred(ts, epoch).pack())
            return "deferred"
        if candidate is None:
            raise RepairFailedError(
                f"no repair candidate for merkle record {key!r}")
        # The merkle re-vet enters the enclave, and the flush it triggers
        # would carry whatever earlier operations are still buffered.
        # Drain that backlog first so the repair session starts clean: an
        # alarm raised here belongs to the *backlog* (a genuine detection,
        # possibly leaving a half-executed batch behind it), not to the
        # repair candidate, and the only sound continuation is recovery —
        # so it propagates as the IntegrityError it is.
        self._drain_all()
        # Merkle tier. Install the candidate first: the current version
        # may not even decode, and every later step reads through the
        # store. A candidate that then fails vetting stays installed but
        # *detected* — the page remains quarantined and any client access
        # trips the same add_merkle alarm, so nothing settles on it.
        self.store.upsert(key, candidate, Aux.merkle().pack())
        result = lookup(self._host_value, key)
        if result.kind != FOUND:
            raise RepairFailedError(
                f"record {key!r} fell out of the host tree; record-level "
                f"repair cannot re-insert it")
        rvid, start = self._route(result.path)
        if host_prevet:
            self._prevet_repair(result, key, candidate, start)
        locked = set(result.path) | {key}
        # No IntegrityError wrapping around the chain caching: the host
        # pre-vet above already turned honest dirty-ancestor cases into a
        # retryable RepairFailedError *before* any enclave state was
        # touched. If the enclave still alarms on the chain, host and
        # verifier genuinely disagree — the session is poisoned mid-batch
        # and retrying in place would drift the clock mirror, so the
        # alarm propagates and the caller's heal path resynchronizes.
        self._cache_chain(rvid, result.path, locked)
        self._drain_all()
        try:
            self._cache_merkle_record(rvid, key, result.terminal, locked)
            self._evict_to_deferred(rvid, key)
            self._drain_all()
        except IntegrityError as exc:
            raise RepairForgeryError(
                f"repair candidate for {key!r} failed the enclave's "
                f"re-vetting against the authenticated parent hash "
                f"({type(exc).__name__}: {exc})") from exc
        return "merkle"

    def _prevet_repair(self, result, key: BitKey, candidate: Value,
                       start: int) -> None:
        """Host-side twin of the enclave checks a merkle repair will hit:
        walk the chain the cold path will cache and hash-match each
        evicted merkle node against its parent's pointer, then the
        candidate against the terminal. Anchors and deferred/cached nodes
        are skipped — they are added without a hash check (their parents'
        pointer hashes are legitimately stale), mirroring ``_cache_chain``.
        """
        path = result.path
        for i in range(max(start, 0) + 1, len(path)):
            node = path[i]
            if node in self.cached_where or node in self.deferred_index:
                continue
            parent_value = self._host_value(path[i - 1])
            ptr = (parent_value.pointer(node.direction_from(path[i - 1]))
                   if isinstance(parent_value, MerkleValue) else None)
            if ptr is None or ptr.key != node:
                raise RepairFailedError(
                    f"chain node {path[i - 1]!r} no longer points at "
                    f"{node!r}; an ancestor is corrupt")
            if host_value_hash(self._host_value(node)) != ptr.hash:
                raise RepairFailedError(
                    f"ancestor {node!r} of {key!r} is itself corrupt; "
                    f"repair it before this record")
        terminal_value = self._host_value(result.terminal)
        ptr = (terminal_value.pointer(key.direction_from(result.terminal))
               if isinstance(terminal_value, MerkleValue) else None)
        if ptr is None or ptr.key != key:
            raise RepairFailedError(
                f"terminal {result.terminal!r} no longer points at {key!r}")
        if host_value_hash(candidate) != ptr.hash:
            raise RepairForgeryError(
                f"repair candidate for {key!r} does not hash-match the "
                f"authenticated parent pointer; refusing to install a "
                f"fork as a repair")

    # ==================================================================
    # Replication support (repro.replication)
    # ==================================================================
    def items_snapshot(self) -> list[tuple[int, bytes]]:
        """The live data records as ``(key bits, payload)`` pairs, sorted.

        Used to bootstrap a warm standby (and by the chaos oracle at
        promotion). Only meaningful at a drained point — call
        :meth:`flush` (or take it right after :meth:`verify`/
        :meth:`checkpoint`) so no update is still buffered in a log.
        Deleted records (tombstones) are omitted; Merkle plumbing and
        anchors are excluded — a fresh load rebuilds them.
        """
        width = self.config.key_width
        items: list[tuple[int, bytes]] = []
        for key, value, _aux in self.store.items():
            if key.length != width:
                continue
            payload = getattr(value, "payload", None)
            if payload is None:
                continue
            items.append((key.bits, payload))
        items.sort()
        return items

    def fence_to(self, target: int) -> int:
        """Close epochs until ``current_epoch >= target`` (promotion fence).

        Each close runs the full verification scan — migration plus the
        aggregated set-hash check — so reaching the fence *verifies* the
        replicated state rather than merely renumbering it. After this,
        every receipt this verifier signs names an epoch ``>= target``,
        and clients holding a fence receipt for ``target`` reject
        anything below it (the deposed primary's entire signable range).
        Returns the number of epochs closed.
        """
        closes = 0
        while self.current_epoch < target:
            self.verify()
            closes += 1
        return closes

    # ==================================================================
    # Introspection
    # ==================================================================
    def deferred_population(self) -> int:
        """Records currently protected by deferred verification — the
        quantity verification latency is linear in (§5.4)."""
        return len(self.deferred_index)

    def verified_epoch(self) -> int:
        return self._ecall("verified_epoch")

"""Host-side consistency auditing (diagnostics, not security).

The host's bookkeeping — aux words, the deferred index, the cache-location
map, mirror contents — is all untrusted: corrupting it can never fool the
verifier. But a *buggy* host corrupts availability (spurious integrity
alarms, stuck records), so a production deployment wants an invariant
checker. :func:`audit` validates every cross-structure invariant the
FastVer driver maintains and reports violations; the test suite runs it
after randomized schedules as a regression net for driver bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fastver import FastVer
from repro.core.hostmirror import host_value_hash
from repro.core.keys import BitKey
from repro.core.records import Aux, MerkleValue, Protection


@dataclass
class AuditReport:
    """Outcome of one audit pass."""

    records: int = 0
    cached: int = 0
    deferred: int = 0
    merkle: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def audit(db: FastVer) -> AuditReport:
    """Check all host-side invariants; never mutates anything."""
    report = AuditReport()
    width = db.config.key_width

    # 1. Aux words agree with the host indices.
    for key, value, aux_word in db.store.items():
        report.records += 1
        aux = Aux.unpack(aux_word)
        if key in db.cached_where:
            report.cached += 1
            vid = db.cached_where[key]
            if key not in db.mirrors[vid].entries:
                report.violations.append(
                    f"{key!r} cached_where says verifier {vid} but mirror lacks it")
            if aux.state is not Protection.CACHED:
                report.violations.append(
                    f"{key!r} is mirror-cached but aux says {aux.state.name}")
        elif aux.state is Protection.DEFERRED:
            report.deferred += 1
            indexed = db.deferred_index.get(key)
            if indexed != (aux.timestamp, aux.epoch):
                report.violations.append(
                    f"{key!r} aux {aux!r} disagrees with deferred index {indexed}")
        elif aux.state is Protection.MERKLE:
            report.merkle += 1
            if key in db.deferred_index:
                report.violations.append(
                    f"{key!r} is merkle-state but still in the deferred index")
        else:
            report.violations.append(
                f"{key!r} aux says CACHED but cached_where lost it")

    # 2. Dangling index entries.
    for key in db.deferred_index:
        record = db.store.read_record(key)
        if record is None:
            report.violations.append(f"deferred index points at missing {key!r}")
    for key, vid in db.cached_where.items():
        if key not in db.mirrors[vid].entries:
            report.violations.append(
                f"cached_where points at missing mirror entry {key!r}")

    # 3. Mirror internal invariants: children counts and parent links.
    for vid, mirror in enumerate(db.mirrors):
        counts: dict = {}
        for key, entry in mirror.entries.items():
            if entry.parent_key is not None and entry.via == "merkle":
                counts[entry.parent_key] = counts.get(entry.parent_key, 0) + 1
                if entry.parent_key not in mirror.entries:
                    report.violations.append(
                        f"mirror {vid}: {key!r} parent {entry.parent_key!r} "
                        f"not cached")
        for key, entry in mirror.entries.items():
            if entry.children_cached != counts.get(key, 0):
                report.violations.append(
                    f"mirror {vid}: {key!r} children_cached="
                    f"{entry.children_cached}, actual {counts.get(key, 0)}")

    # 4. Tree reachability and hash coherence among merkle-state records.
    #    (Hashes for deferred/cached children are legitimately stale, §4.3.1.)
    root = BitKey.root()
    root_value = db._host_value(root)
    stack = [(root, root_value)]
    seen = set()
    while stack:
        node, value = stack.pop()
        if node in seen:
            report.violations.append(f"tree cycle through {node!r}")
            break
        seen.add(node)
        if not isinstance(value, MerkleValue):
            continue
        for side in (0, 1):
            ptr = value.pointer(side)
            if ptr is None:
                continue
            child_value = db._host_value(ptr.key)
            if child_value is None:
                report.violations.append(f"dangling pointer to {ptr.key!r}")
                continue
            child_record = db.store.read_record(ptr.key)
            child_aux = Aux.unpack(child_record.aux) if child_record else None
            parent_live = node not in db.cached_where
            child_cold = (ptr.key not in db.cached_where and child_aux
                          and child_aux.state is Protection.MERKLE)
            if parent_live and child_cold:
                if host_value_hash(child_value) != ptr.hash:
                    report.violations.append(
                        f"stale hash for cold child {ptr.key!r} at {node!r}")
            if ptr.key.length < width:
                stack.append((ptr.key, child_value))

    return report

"""The verifier group: everything that runs inside the enclave.

This is the trusted program of Figure 1. It owns:

* ``n`` minimally-interacting :class:`~repro.core.verifier.VerifierThread`
  instances (§5.3) — each with its own clock, cache, and read/write set
  hashes; they interact *only* at epoch close, when their 16-byte set
  hashes are aggregated;
* the shared :class:`~repro.core.epochs.EpochController`;
* the client table (authorized MAC keys + replay nonces, §2.1);
* receipt issuance (provisional op receipts + epoch batch receipts);
* verifier-state checkpointing sealed against rollback (§2.2, §7).

The ecall surface deliberately does **not** expose raw record updates or
inserts: logical data changes only happen through ``validate_put*``
entries carrying a client MAC, which is what makes the host unable to
modify data unilaterally.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.epochs import EpochController
from repro.core.keys import BitKey
from repro.core.protocol import (
    EPOCH,
    GET,
    GET_ABSENT,
    LEASE,
    PUT,
    SHIP,
    ClientTable,
    EpochReceipt,
    FenceReceipt,
    OpReceipt,
    _payload_bytes,
)
from repro.core.records import DataValue, MerkleValue, Value, decode_value, encode_value
from repro.core.verifier import VerifierThread
from repro.crypto.hashing import decode_fields, encode_fields
from repro.crypto.mac import MacKey
from repro.crypto.multiset import aggregate
from repro.crypto.prf import Prf
from repro.enclave.sealed import SealedSlot, seal_hash
from repro.errors import (
    EnclaveRebootError,
    EnclaveUnavailableError,
    EpochError,
    ProtocolError,
    ReplayError,
    SetHashMismatchError,
    SignatureError,
    SplitBrainError,
    StructuralError,
)
from repro.instrument import COUNTERS
from repro.merkle.sparse import build_tree

#: Thread methods a host may invoke directly (integrity-neutral plumbing).
_RAW_METHODS = frozenset(
    {"add_merkle", "evict_merkle", "add_deferred", "evict_deferred",
     "refresh_hash"}
)


class VerifierGroup:
    """The enclave-resident verifier (trusted computing base)."""

    def __init__(self, sealed: SealedSlot, n_threads: int = 1,
                 cache_capacity: int = 512, combiner: str = "add",
                 prf: Prf | None = None, sealing_key: MacKey | None = None):
        if n_threads < 1:
            raise ValueError("need at least one verifier thread")
        self.sealed = sealed
        self.prf = prf if prf is not None else Prf.generate()
        self.sealing_key = sealing_key if sealing_key is not None else MacKey.generate("seal")
        self.epochs = EpochController()
        self.clients = ClientTable()
        self.threads = [
            VerifierThread(i, self.prf, self.epochs,
                           cache_capacity=cache_capacity, combiner=combiner)
            for i in range(n_threads)
        ]
        self._combiner = combiner
        self._loaded = False
        #: Per-client epoch-receipt issue counter (chain position). Part of
        #: trusted state: it is what lets clients dedup a replayed receipt,
        #: so it is checkpointed and restored alongside the nonce table.
        self._epoch_chains: dict[int, int] = {}
        # Replication channel state (see repl_set_key). One key serves both
        # roles: a primary signs shipments, a standby admits them.
        self._repl_key: MacKey | None = None
        self._repl_next_seq = 0
        self._repl_chain = b"\x00" * 32
        self._repl_generation = 0

    def _require_loaded(self, what: str) -> None:
        """Refuse trusted work on a freshly-(re)booted verifier.

        After a surprise reboot the factory rebuilds this object with empty
        volatile state; silently serving from it would let unverified
        operations through. Until ``restore_state``/``bulk_load``/
        ``start_empty`` runs, every integrity-bearing entry point fails
        with a typed availability error so the host knows to recover.
        """
        if not self._loaded:
            raise EnclaveUnavailableError(
                f"verifier holds no restored state (post-reboot?); "
                f"cannot {what} until restore_state or a load runs")

    # ------------------------------------------------------------------
    # Setup ecalls
    # ------------------------------------------------------------------
    def register_client(self, client_id: int, key_bytes: bytes) -> None:
        self.clients.register(client_id, MacKey(key_bytes, name=f"client-{client_id}"))

    def bulk_load(self, items: list[tuple[BitKey, bytes]]) -> tuple[MerkleValue, list[tuple[BitKey, Value]]]:
        """Trusted initial load: build the sparse Merkle tree inside the
        enclave, pin the root in thread 0, and hand every other record back
        to the host for storage.

        The load is client-initiated (the data owner ships its dataset
        through the enclave once); afterwards all mutation goes through
        authorized puts. Returns the (non-confidential) root value — the
        host mirrors it — plus all records to store.
        """
        if self._loaded:
            raise ProtocolError("database already loaded")
        data = sorted((k, DataValue(p)) for k, p in items)
        merkle_records, root_value = build_tree(data)
        self.threads[0].pin_root(root_value)
        self._loaded = True
        out: list[tuple[BitKey, Value]] = [(k, v) for k, v in merkle_records.items()]
        out.extend(data)
        return root_value, out

    def start_empty(self) -> MerkleValue:
        """Initialize an empty database (root with two null pointers)."""
        if self._loaded:
            raise ProtocolError("database already loaded")
        root_value = MerkleValue(None, None)
        self.threads[0].pin_root(root_value)
        self._loaded = True
        return root_value

    # ------------------------------------------------------------------
    # The batched command stream (one ecall per log-buffer flush, §7)
    # ------------------------------------------------------------------
    def _dispatch_entry(self, thread: VerifierThread, method: str, args: tuple) -> Any:
        """Execute one buffered verifier call against ``thread``."""
        if method in _RAW_METHODS:
            return getattr(thread, method)(*args)
        if method == "validate_get":
            return self._validate_get(thread, *args)
        if method == "validate_get_absent":
            return self._validate_get_absent(thread, *args)
        if method == "validate_put_update":
            return self._validate_put(thread, "update", *args)
        if method == "validate_put_extend":
            return self._validate_put(thread, "extend", *args)
        if method == "validate_put_split":
            return self._validate_put(thread, "split", *args)
        raise ProtocolError(f"unknown verifier entry {method!r}")

    def process_batch(self, verifier_id: int, entries: list[tuple[str, tuple]]) -> list[Any]:
        """Execute a worker's buffered verifier calls in order."""
        self._require_loaded("process a batch")
        if not 0 <= verifier_id < len(self.threads):
            raise ProtocolError(f"no verifier thread {verifier_id}")
        thread = self.threads[verifier_id]
        return [self._dispatch_entry(thread, method, args)
                for method, args in entries]

    def apply_batch(self, shards: list[tuple[int, list[tuple[str, tuple]]]]):
        """Group commit: execute several shards' command streams in ONE
        crossing (the serving loop's batch amortization lever).

        Returns ``(shard_results, failure)``. ``shard_results`` holds one
        result list per shard, in order, covering every entry that
        executed. ``failure`` is ``None`` on full success; otherwise it is
        ``(shard_index, entry_index, exc)`` naming the first entry whose
        *client-attributable* validation failed (bad MAC or replayed
        nonce) — execution stops there, entries after it never ran, and
        the host decides whether the poisoned operation can fail alone.
        Every other exception (structural integrity alarms, epoch errors)
        raises out of the ecall exactly as it would from
        :meth:`process_batch` — a batch never downgrades an alarm.
        """
        self._require_loaded("apply a batch")
        out: list[list[Any]] = []
        for si, (verifier_id, entries) in enumerate(shards):
            if not 0 <= verifier_id < len(self.threads):
                raise ProtocolError(f"no verifier thread {verifier_id}")
            thread = self.threads[verifier_id]
            shard_out: list[Any] = []
            out.append(shard_out)
            for ei, (method, args) in enumerate(entries):
                try:
                    shard_out.append(self._dispatch_entry(thread, method, args))
                except (SignatureError, ReplayError) as exc:
                    return out, (si, ei, exc)
        return out, None

    # -- validations -----------------------------------------------------
    def _receipt(self, client_id: int, kind: bytes, key: BitKey,
                 payload: bytes | None, nonce: int) -> OpReceipt:
        epoch = self.epochs.current
        receipt = OpReceipt(client_id, kind, key, payload, nonce, epoch, b"")
        receipt.tag = self.clients.key_for(client_id).sign(*receipt.mac_fields())
        return receipt

    def _validate_get(self, thread: VerifierThread, client_id: int,
                      key: BitKey, nonce: int) -> OpReceipt:
        self.clients.check_nonce(client_id, nonce)
        value = thread.read(key)
        if not isinstance(value, DataValue):
            raise StructuralError(f"get validated against non-data record {key!r}")
        return self._receipt(client_id, GET, key, value.payload, nonce)

    def _validate_get_absent(self, thread: VerifierThread, client_id: int,
                             key: BitKey, ancestor: BitKey, nonce: int) -> OpReceipt:
        self.clients.check_nonce(client_id, nonce)
        thread.check_absent(key, ancestor)
        return self._receipt(client_id, GET_ABSENT, key, None, nonce)

    def _validate_put(self, thread: VerifierThread, mode: str, client_id: int,
                      key: BitKey, payload: bytes | None, nonce: int, tag: bytes,
                      parent_key: BitKey | None = None) -> OpReceipt:
        # Client authorization first: the host cannot manufacture puts.
        client_key = self.clients.key_for(client_id)
        try:
            client_key.verify(tag, PUT, key.to_bytes(), _payload_bytes(payload),
                              nonce.to_bytes(8, "big"))
        except SignatureError:
            raise SignatureError(
                f"put on {key!r} lacks a valid client-{client_id} signature"
            ) from None
        self.clients.check_nonce(client_id, nonce)
        value = DataValue(payload)
        if mode == "update":
            thread.update(key, value)
        elif mode == "extend":
            thread.insert_extend(key, value, parent_key)
        elif mode == "split":
            thread.insert_split(key, value, parent_key)
        else:  # pragma: no cover - internal dispatch only
            raise ProtocolError(f"unknown put mode {mode!r}")
        return self._receipt(client_id, PUT, key, payload, nonce)

    # ------------------------------------------------------------------
    # Epoch close (§5.3 aggregation + §5.1 batch validation)
    # ------------------------------------------------------------------
    def start_epoch_close(self) -> int:
        """Open the next epoch; returns the epoch now being closed.

        After this, every evict stamps the new epoch, so migrating the old
        epoch's records moves them forward.
        """
        self._require_loaded("close an epoch")
        closing = self.epochs.current
        self.epochs.advance()
        return closing

    def finish_epoch_close(self, epoch: int) -> dict[int, EpochReceipt]:
        """Aggregate per-thread set hashes and settle the epoch.

        Raises :class:`SetHashMismatchError` if the aggregated read and
        write hashes differ — the deferred-verification tamper alarm.
        Returns one epoch receipt per registered client.
        """
        self._require_loaded("settle an epoch")
        if epoch >= self.epochs.current:
            raise EpochError(f"epoch {epoch} is still open; advance first")
        reads: list[int] = []
        writes: list[int] = []
        for thread in self.threads:
            r, w = thread.take_epoch_hashes(epoch)
            reads.append(r)
            writes.append(w)
        COUNTERS.epoch_verifications += 1
        if aggregate(reads, self._combiner) != aggregate(writes, self._combiner):
            raise SetHashMismatchError(
                f"epoch {epoch}: aggregated read-set and write-set hashes "
                f"differ — tampering with a deferred record detected"
            )
        self.epochs.mark_verified(epoch)
        receipts: dict[int, EpochReceipt] = {}
        for client_id in self.clients.nonces():
            chain = self._epoch_chains.get(client_id, 0) + 1
            self._epoch_chains[client_id] = chain
            receipt = EpochReceipt(epoch, b"", chain)
            receipt.tag = self.clients.key_for(client_id).sign(*receipt.mac_fields())
            receipts[client_id] = receipt
        return receipts

    # ------------------------------------------------------------------
    # Replication channel (authenticated log shipping, PROTOCOL.md
    # "Replication & failover"). The host carries shipments; these ecalls
    # are what keep it a *delay-only* adversary: every batch is MAC'd
    # under a shared session key, sequence-numbered, and hash-chained, so
    # forging, reordering, truncating, or splicing the stream is detected
    # by the standby before anything is applied.
    # ------------------------------------------------------------------
    def repl_set_key(self, key_bytes: bytes, next_seq: int = 0,
                     chain: bytes | None = None) -> None:
        """Install the replication session key (models the key agreed
        during mutual attestation of primary and standby) and position the
        stream. Called on both peers at pairing time; a standby joining an
        already-flowing stream (delta-resync group membership) is handed
        the agreed ``(next_seq, chain)`` position instead of the fresh
        origin — part of the attested pairing handshake, so the host
        cannot unilaterally rewind a replica's channel."""
        self._repl_key = MacKey(key_bytes, name="repl-channel")
        self._repl_next_seq = next_seq
        self._repl_chain = b"\x00" * 32 if chain is None else chain

    def _require_repl_key(self) -> MacKey:
        if self._repl_key is None:
            if not self._loaded:
                # A rebooted enclave lost the volatile channel session
                # along with the rest of its verifier state. That is an
                # availability condition — the heal ladder restores the
                # sealed state and the manager re-anchors the session —
                # not an API misuse by the caller, and it must not type
                # as one: the serving loop absorbs AvailabilityError and
                # heals, while a ProtocolError would escape untyped.
                raise EnclaveRebootError(
                    "replication channel session lost with the enclave's "
                    "volatile state; recover before shipping")
            raise ProtocolError("no replication channel key installed")
        return self._repl_key

    def repl_sign(self, seq: int, prev_digest: bytes,
                  body_digest: bytes) -> bytes:
        """Primary role: authenticate one shipment of log entries."""
        key = self._require_repl_key()
        return key.sign(SHIP, seq.to_bytes(8, "big"), prev_digest, body_digest)

    def repl_admit(self, seq: int, prev_digest: bytes,
                   body_digest: bytes, tag: bytes) -> None:
        """Standby role: admit one shipment, or raise an IntegrityError.

        Checks, in order: the MAC (host forged or corrupted the batch),
        the sequence number (reorder/replay), and the hash chain
        (truncation or splice of the stream). State advances only when
        all three hold, so a rejected shipment can simply be
        retransmitted — rejection never desynchronizes the channel.
        """
        key = self._require_repl_key()
        key.verify(tag, SHIP, seq.to_bytes(8, "big"), prev_digest, body_digest)
        if seq != self._repl_next_seq:
            raise ReplayError(
                f"shipment seq {seq} out of order "
                f"(expected {self._repl_next_seq})")
        if prev_digest != self._repl_chain:
            raise ReplayError(
                f"shipment {seq} breaks the hash chain "
                f"(truncated or spliced stream)")
        self._repl_next_seq += 1
        self._repl_chain = body_digest

    # -- leadership leases (quorum HA; PROTOCOL.md "Replication group
    # & leases"). Grants are MAC'd under the replication session key by
    # the *standby* enclave and verified by the *primary* enclave, so the
    # host can neither mint a grant for a deposed primary nor doctor one
    # in transit. Generation monotonicity lives in the standby enclave:
    # once it has granted (or observed) generation g, it refuses every
    # grant request for a lower generation — the deposed primary's
    # renewals die here, and its lease expiry stops it serving.
    def repl_grant_lease(self, generation: int, expires_at: float) -> bytes:
        """Standby role: grant (sign) one leadership lease."""
        key = self._require_repl_key()
        if generation < self._repl_generation:
            raise SplitBrainError(
                f"lease grant refused: generation {generation} is below "
                f"the highest observed {self._repl_generation} — a deposed "
                f"primary is asking to keep serving")
        self._repl_generation = generation
        return key.sign(LEASE, generation.to_bytes(8, "big"),
                        struct.pack(">d", expires_at))

    def repl_verify_lease(self, generation: int, expires_at: float,
                          tag: bytes) -> None:
        """Primary role: verify one standby's lease grant, or raise a
        SignatureError (a host-forged grant never extends the lease)."""
        key = self._require_repl_key()
        key.verify(tag, LEASE, generation.to_bytes(8, "big"),
                   struct.pack(">d", expires_at))

    def issue_fence(self, generation: int) -> dict[int, FenceReceipt]:
        """Promotion handoff: sign one fence receipt per registered client.

        The fence epoch is this (promoted) verifier's current epoch; the
        supervisor has already closed epochs past everything the deposed
        primary could have named, so a client that adopts the fence
        rejects every receipt a stale or split-brain primary can still
        sign. Signed under each client's own key — the same key op
        receipts use — so the untrusted host cannot fabricate a fence.
        """
        self._require_loaded("issue a fence")
        fence_epoch = self.epochs.current
        receipts: dict[int, FenceReceipt] = {}
        for client_id in self.clients.nonces():
            receipt = FenceReceipt(client_id, generation, fence_epoch, b"")
            receipt.tag = self.clients.key_for(client_id).sign(
                *receipt.mac_fields())
            receipts[client_id] = receipt
        return receipts

    # -- host-visible (non-confidential) status ---------------------------
    def current_epoch(self) -> int:
        return self.epochs.current

    def verified_epoch(self) -> int:
        return self.epochs.verified

    def clocks(self) -> list[int]:
        """Per-thread clocks — protected state, but not confidential (§5.3):
        the host mirrors them anyway, and needs them after recovery."""
        return [t.clock for t in self.threads]

    def dump_cache(self, verifier_id: int) -> list[tuple[BitKey, Value]]:
        """Cache contents of one thread (host rebuilds its mirror after
        recovery; again protected-but-not-confidential)."""
        if not 0 <= verifier_id < len(self.threads):
            raise ProtocolError(f"no verifier thread {verifier_id}")
        return self.threads[verifier_id].cache.items()

    # ------------------------------------------------------------------
    # Verifier-state checkpoint / restore (§7 durability, §2.2 rollback)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> bytes:
        """Serialize all trusted state, MAC it, and advance the sealed slot.

        The blob lives on untrusted storage; the sealed (version, hash)
        pair is what makes replaying an *older* blob detectable.
        """
        self._require_loaded("checkpoint verifier state")
        parts: list[bytes] = [
            self.epochs.current.to_bytes(8, "big"),
            self.epochs.verified.to_bytes(8, "big", signed=True),
            self._encode_nonces(),
        ]
        for thread in self.threads:
            parts.append(self._encode_thread(thread))
        body = encode_fields(*parts)
        tag = self.sealing_key.sign(body)
        blob = encode_fields(body, tag)
        self.sealed.advance(seal_hash(blob))
        return blob

    def restore_state(self, blob: bytes) -> None:
        """Rebuild trusted state from a checkpoint blob (post-reboot).

        Checks the MAC (forgery) and the sealed slot (rollback) before
        touching any state.
        """
        outer = decode_fields(blob)
        if len(outer) != 2:
            raise ProtocolError("malformed verifier checkpoint")
        body, tag = outer
        self.sealing_key.verify(tag, body)
        self.sealed.check_latest(seal_hash(blob))
        parts = decode_fields(body)
        expected = 3 + len(self.threads)
        if len(parts) != expected:
            raise ProtocolError("verifier checkpoint has wrong thread count")
        self.epochs.current = int.from_bytes(parts[0], "big")
        self.epochs.verified = int.from_bytes(parts[1], "big", signed=True)
        self._decode_nonces(parts[2])
        for thread, chunk in zip(self.threads, parts[3:]):
            self._decode_thread(thread, chunk)
        self._loaded = True

    def _encode_nonces(self) -> bytes:
        fields: list[bytes] = []
        for client_id, nonce in sorted(self.clients.nonces().items()):
            chain = self._epoch_chains.get(client_id, 0)
            fields.append(client_id.to_bytes(8, "big")
                          + nonce.to_bytes(8, "big")
                          + chain.to_bytes(8, "big"))
        return encode_fields(*fields)

    def _decode_nonces(self, blob: bytes) -> None:
        nonces: dict[int, int] = {}
        self._epoch_chains.clear()
        for field in decode_fields(blob):
            client_id = int.from_bytes(field[:8], "big")
            nonces[client_id] = int.from_bytes(field[8:16], "big")
            if len(field) >= 24:
                self._epoch_chains[client_id] = int.from_bytes(
                    field[16:24], "big")
        self.clients.restore_nonces(nonces)

    def _encode_thread(self, thread: VerifierThread) -> bytes:
        fields: list[bytes] = [thread.clock.to_bytes(8, "big")]
        epoch_parts: list[bytes] = []
        for epoch in sorted(thread.open_epochs()):
            rs = thread._read_sets.get(epoch)
            ws = thread._write_sets.get(epoch)
            epoch_parts.append(
                epoch.to_bytes(8, "big")
                + (rs.value if rs else 0).to_bytes(16, "big")
                + (ws.value if ws else 0).to_bytes(16, "big")
            )
        fields.append(encode_fields(*epoch_parts))
        cache_parts: list[bytes] = []
        for key, value in thread.cache.items():
            cache_parts.append(encode_fields(key.to_bytes(), encode_value(value)))
        fields.append(encode_fields(*cache_parts))
        return encode_fields(*fields)

    def _decode_thread(self, thread: VerifierThread, blob: bytes) -> None:
        clock_b, epochs_b, cache_b = decode_fields(blob)
        thread.clock = int.from_bytes(clock_b, "big")
        thread._read_sets.clear()
        thread._write_sets.clear()
        for part in decode_fields(epochs_b):
            epoch = int.from_bytes(part[:8], "big")
            rs_val = int.from_bytes(part[8:24], "big")
            ws_val = int.from_bytes(part[24:40], "big")
            if rs_val:
                thread._set_hash(thread._read_sets, epoch).value = rs_val
            if ws_val:
                thread._set_hash(thread._write_sets, epoch).value = ws_val
        for part in decode_fields(cache_b):
            key_b, value_b = decode_fields(part)
            key = BitKey.from_encoded(key_b)
            value = decode_value(value_b)
            if key.is_root:
                thread.pin_root(value)
            else:
                thread.cache.add(key, value)

    # ------------------------------------------------------------------
    # Enclave memory accounting
    # ------------------------------------------------------------------
    def trusted_memory_bytes(self) -> int:
        return sum(t.trusted_memory_bytes() for t in self.threads) + 4096

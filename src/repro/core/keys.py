"""Bit-string keys and the binary key tree of Section 4.2.

FastVer organizes *all* keys — client data keys and internal Merkle keys —
as nodes of one binary tree. A key is a bit string; the empty string is the
root, and string ``k`` is the parent of ``k+'0'`` and ``k+'1'``. Data keys
are full-width strings (``KEY_BITS`` bits, 256 in the paper); Merkle keys
are any strictly shorter prefix.

:class:`BitKey` is an immutable value type implementing exactly the algebra
the paper uses: prefix/ancestor tests, ``dir(k, k')`` (which side of a proper
ancestor a key descends on), least common ancestors, and a total
lexicographic order used by the sorted-Merkle-updates optimization (§6.3).

Keys are stored as ``(length, bits)`` where ``bits`` is the big-endian
integer value of the string, so all operations are O(1)-ish integer ops and
keys of any width up to 256 bits stay cheap.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator

#: Width of data keys in bits. The paper uses 256 (SHA-256 of client keys);
#: the algebra works for any width and tests exercise small widths too.
KEY_BITS = 256


@total_ordering
class BitKey:
    """An immutable bit-string key: a node in the binary key tree.

    ``BitKey(length, bits)`` denotes the bit string of ``length`` bits whose
    big-endian integer value is ``bits``. ``BitKey(0, 0)`` is the tree root
    (the empty string).
    """

    __slots__ = ("length", "bits", "_hash")

    def __init__(self, length: int, bits: int):
        if length < 0:
            raise ValueError(f"key length must be >= 0, got {length}")
        if bits < 0 or (length < bits.bit_length()):
            raise ValueError(f"bits 0x{bits:x} do not fit in {length} bits")
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "bits", bits)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("BitKey is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def root(cls) -> "BitKey":
        """The empty string: root of the key tree."""
        return _ROOT

    @classmethod
    def from_bits_string(cls, s: str) -> "BitKey":
        """Parse a key from a literal like ``"0101"`` (empty string = root)."""
        if s and set(s) - {"0", "1"}:
            raise ValueError(f"not a bit string: {s!r}")
        return cls(len(s), int(s, 2) if s else 0)

    @classmethod
    def from_bytes(cls, data: bytes, length: int | None = None) -> "BitKey":
        """Build a key from raw bytes (big-endian), default full-byte width."""
        if length is None:
            length = 8 * len(data)
        value = int.from_bytes(data, "big")
        excess = 8 * len(data) - length
        if excess < 0:
            raise ValueError(f"{len(data)} bytes cannot supply {length} bits")
        return cls(length, value >> excess)

    @classmethod
    def data_key(cls, value: int, width: int = KEY_BITS) -> "BitKey":
        """A full-width data key with the given integer value.

        This mirrors the paper's benchmark setup, where 8-byte YCSB keys are
        padded out to 32 bytes: the integer is simply the low-order bits of a
        ``width``-bit string.
        """
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} out of range for {width}-bit key")
        return cls(width, value)

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.length == 0

    def bit(self, i: int) -> int:
        """The ``i``-th bit from the top (depth ``i`` branch direction)."""
        if not 0 <= i < self.length:
            raise IndexError(f"bit {i} out of range for length {self.length}")
        return (self.bits >> (self.length - 1 - i)) & 1

    def child(self, direction: int) -> "BitKey":
        """The key one level down on side ``direction`` (0=left, 1=right)."""
        if direction not in (0, 1):
            raise ValueError(f"direction must be 0 or 1, got {direction}")
        return BitKey(self.length + 1, (self.bits << 1) | direction)

    def parent(self) -> "BitKey":
        """The key one level up; the root has no parent."""
        if self.is_root:
            raise ValueError("root has no parent")
        return BitKey(self.length - 1, self.bits >> 1)

    def prefix(self, length: int) -> "BitKey":
        """The ancestor of this key at depth ``length``."""
        if not 0 <= length <= self.length:
            raise ValueError(f"prefix length {length} out of range")
        return BitKey(length, self.bits >> (self.length - length))

    # ------------------------------------------------------------------
    # Tree relationships
    # ------------------------------------------------------------------
    def is_ancestor_of(self, other: "BitKey") -> bool:
        """True iff ``self`` is a (non-strict) prefix of ``other``."""
        if self.length > other.length:
            return False
        return (other.bits >> (other.length - self.length)) == self.bits

    def is_proper_ancestor_of(self, other: "BitKey") -> bool:
        """True iff ``self`` is a strict prefix of ``other``."""
        return self.length < other.length and self.is_ancestor_of(other)

    def direction_from(self, ancestor: "BitKey") -> int:
        """``dir(self, ancestor)``: 0/1 side on which ``self`` descends.

        ``ancestor`` must be a proper ancestor; the result is the bit of
        ``self`` at depth ``len(ancestor)``, e.g. ``dir(1011, 1) == 0``.
        """
        if not ancestor.is_proper_ancestor_of(self):
            raise ValueError(f"{ancestor!r} is not a proper ancestor of {self!r}")
        return self.bit(ancestor.length)

    def lca(self, other: "BitKey") -> "BitKey":
        """Least common ancestor: the longest common prefix of the two keys."""
        n = min(self.length, other.length)
        a = self.bits >> (self.length - n)
        b = other.bits >> (other.length - n)
        diff = a ^ b
        common = n - diff.bit_length()
        return BitKey(common, a >> (n - common))

    def ancestors(self) -> Iterator["BitKey"]:
        """All proper ancestors, nearest first, ending with the root."""
        key = self
        while not key.is_root:
            key = key.parent()
            yield key

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Canonical encoding: 2-byte length followed by the padded bits.

        Distinct keys get distinct encodings (the explicit length keeps
        ``"0"`` and ``"00"`` apart), which the crypto layer relies on.
        """
        nbytes = (self.length + 7) // 8
        padded = self.bits << (8 * nbytes - self.length)
        return self.length.to_bytes(2, "big") + padded.to_bytes(nbytes, "big")

    @classmethod
    def from_encoded(cls, data: bytes) -> "BitKey":
        """Inverse of :meth:`to_bytes`."""
        if len(data) < 2:
            raise ValueError("truncated key encoding")
        length = int.from_bytes(data[:2], "big")
        nbytes = (length + 7) // 8
        if len(data) != 2 + nbytes:
            raise ValueError("key encoding has wrong payload size")
        padded = int.from_bytes(data[2:], "big")
        return cls(length, padded >> (8 * nbytes - length))

    def to_bits_string(self) -> str:
        """Render as a literal bit string, e.g. ``'0101'`` ('' for root)."""
        if self.is_root:
            return ""
        return format(self.bits, f"0{self.length}b")

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, BitKey):
            return NotImplemented
        return self.length == other.length and self.bits == other.bits

    def __lt__(self, other) -> bool:
        """Lexicographic bit-string order (prefix sorts before extension).

        This is the order the sorted-Merkle-updates optimization uses: keys
        adjacent in this order share long prefixes, so their Merkle ancestor
        records exhibit the locality of reference §6.3 manufactures.
        """
        if not isinstance(other, BitKey):
            return NotImplemented
        n = min(self.length, other.length)
        a = self.bits >> (self.length - n) if self.length else 0
        b = other.bits >> (other.length - n) if other.length else 0
        if a != b:
            return a < b
        return self.length < other.length

    def __hash__(self) -> int:
        # Keys are dict keys everywhere hot (store index, mirrors, caches,
        # owner maps), so the tuple hash is computed once and memoized.
        # The lazy slot keeps construction cheap for the many short-lived
        # keys (parents, prefixes, LCAs) that are never hashed at all.
        try:
            return self._hash
        except AttributeError:
            value = hash((self.length, self.bits))
            object.__setattr__(self, "_hash", value)
            return value

    def __repr__(self) -> str:
        return f"BitKey('{self.to_bits_string()}')"


_ROOT = BitKey(0, 0)

"""The verifier thread state machine — the technical core of FastVer.

One :class:`VerifierThread` reproduces the per-thread verifier of §5.3–§6:
a bounded record cache, a Lamport-style logical clock, and per-epoch
read/write multiset-hash accumulators. Its methods are exactly the
operations the F*-verified state machine of the paper exposes, with every
structural check the correctness argument (§4.3.2, §6.4) relies on:

* **Merkle add** (§4.3): adding record ``(k, v)`` requires its tree parent
  in *this* cache, the parent's pointer to target ``k`` exactly, and the
  stored hash to equal ``H(v)``.
* **Merkle evict with lazy updates** (§4.3.1): eviction writes ``H(v)``
  into the (cached) parent and propagates no further.
* **Structure changes**: inserting a new key either fills a null pointer
  (*extend*) or splits an edge through the new LCA (*split*), with the
  proper-ancestor checks that stop a host from hiding an existing subtree.
* **Deferred add/evict** (§5): read entries join the epoch-tagged read
  set, evictions stamp a fresh timestamp from the local clock and join the
  write set; the Lamport rule ``clock = max(clock, ts)`` on add keeps
  timestamps strictly increasing per record across threads.
* **Non-existence checks** (§4.2, Example 4.1): a null or bypassing
  pointer at a cached ancestor proves a key absent.

A byzantine host can call any method with any arguments; the guarantee is
that dishonesty either raises an :class:`~repro.errors.IntegrityError`
immediately or unbalances an epoch's read/write sets so the next epoch
close fails. Honest drivers never trigger either (property-tested).
"""

from __future__ import annotations

from repro.core.cache import VerifierCache
from repro.core.epochs import EpochController
from repro.core.keys import BitKey
from repro.core.records import (
    DataValue,
    MerkleValue,
    Pointer,
    Value,
    entry_fields,
    value_hash,
)
from repro.crypto.multiset import MultisetHasher
from repro.crypto.prf import Prf
from repro.errors import (
    CacheStateError,
    CapacityError,
    HashMismatchError,
    ParentNotInCacheError,
    StructuralError,
)
from repro.instrument import COUNTERS


class VerifierThread:
    """One minimally-interacting verifier (§5.3)."""

    def __init__(self, verifier_id: int, prf: Prf, epochs: EpochController,
                 cache_capacity: int = 512, combiner: str = "add",
                 counters=None):
        self.verifier_id = verifier_id
        self.cache = VerifierCache(cache_capacity)
        self.clock = 0
        self.epochs = epochs
        self._prf = prf
        self._combiner = combiner
        self._counters = counters if counters is not None else COUNTERS
        # Per-epoch read/write multiset-hash accumulators, created lazily.
        self._read_sets: dict[int, MultisetHasher] = {}
        self._write_sets: dict[int, MultisetHasher] = {}

    # ------------------------------------------------------------------
    # Root handling
    # ------------------------------------------------------------------
    def pin_root(self, root_value: MerkleValue) -> int:
        """Install the root record, pinned (never evicted). Done once, at
        initialization or state restore, by trusted code."""
        return self.cache.add(BitKey.root(), root_value, pinned=True)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _parent_pointer(self, key: BitKey, parent_key: BitKey) -> tuple[MerkleValue, int, Pointer | None]:
        """Fetch the cached parent's value and its pointer on key's side,
        after the ancestry checks every Merkle operation needs."""
        if parent_key not in self.cache:
            raise ParentNotInCacheError(
                f"claimed parent {parent_key!r} of {key!r} is not cached"
            )
        if not parent_key.is_proper_ancestor_of(key):
            raise StructuralError(f"{parent_key!r} is not an ancestor of {key!r}")
        parent_value = self.cache.get(parent_key).value
        if not isinstance(parent_value, MerkleValue):
            raise StructuralError(f"claimed parent {parent_key!r} is not a merkle record")
        side = key.direction_from(parent_key)
        return parent_value, side, parent_value.pointer(side)

    def _require_admittable(self, key: BitKey, slots: int = 1) -> None:
        """All cache-admission preconditions, checked *before* any state
        mutates: a rejected call must leave the verifier unchanged (the
        differential spec tests enforce this no-side-effect discipline).
        """
        if key in self.cache:
            raise CacheStateError(f"duplicate add of {key!r} to one cache")
        if len(self.cache) + slots > self.cache.capacity:
            raise CapacityError("verifier cache is full; evict first")

    def _set_hash(self, table: dict[int, MultisetHasher], epoch: int) -> MultisetHasher:
        hasher = table.get(epoch)
        if hasher is None:
            hasher = MultisetHasher(self._prf, combiner=self._combiner,
                                    counters=self._counters)
            table[epoch] = hasher
        return hasher

    # ------------------------------------------------------------------
    # Merkle-mode add / evict (§4.3)
    # ------------------------------------------------------------------
    def add_merkle(self, key: BitKey, value: Value, parent_key: BitKey) -> int:
        """Admit a Merkle-protected record into the cache; returns its slot.

        The parent pointer is the single source of truth: it must target
        ``key`` itself (a pointer to anything else means the host lied
        about the structure) and carry exactly ``H(value)``.
        """
        self._require_admittable(key)
        _, _, ptr = self._parent_pointer(key, parent_key)
        if ptr is None or ptr.key != key:
            raise StructuralError(
                f"parent {parent_key!r} does not point at {key!r}; "
                f"host presented a wrong parent or a phantom record"
            )
        if value_hash(value, counters=self._counters) != ptr.hash:
            raise HashMismatchError(f"hash mismatch admitting {key!r}")
        self._counters.merkle_adds += 1
        return self.cache.add(key, value)

    def evict_merkle(self, key: BitKey, parent_key: BitKey) -> None:
        """Evict to Merkle protection: store H(current value) at the parent.

        Lazy updates (§4.3.1): only the immediate parent is touched; hashes
        at higher ancestors stay stale until the parent itself evicts.
        """
        parent_value, side, ptr = self._parent_pointer(key, parent_key)
        if ptr is None or ptr.key != key:
            raise StructuralError(
                f"cannot evict {key!r}: parent {parent_key!r} does not point at it"
            )
        value = self.cache.remove(key)
        new_hash = value_hash(value, counters=self._counters)
        self.cache.update(parent_key,
                          parent_value.with_pointer(side, ptr.with_hash(new_hash)))
        self._counters.merkle_evicts += 1

    # ------------------------------------------------------------------
    # Deferred-mode add / evict (§5)
    # ------------------------------------------------------------------
    def add_deferred(self, key: BitKey, value: Value, timestamp: int,
                     epoch: int) -> int:
        """Admit a deferred-protected record; returns its slot.

        No integrity check happens *now*: the (key, value, timestamp,
        epoch) entry joins the epoch's read set, and tampering surfaces as
        a read/write set inequality when that epoch closes. The Lamport
        rule keeps this thread's clock ahead of the record's timestamp so
        the eventual evict stamps a strictly larger one.
        """
        self.epochs.check_addable(epoch)
        self._require_admittable(key)
        self._set_hash(self._read_sets, epoch).insert_entry(
            *entry_fields(key, value, timestamp, epoch)
        )
        if timestamp > self.clock:
            self.clock = timestamp
        self._counters.deferred_adds += 1
        return self.cache.add(key, value)

    def evict_deferred(self, key: BitKey) -> tuple[int, int]:
        """Evict to deferred protection; returns (timestamp, epoch).

        The record's new guardian is the current epoch's write set; the
        host must store the returned pair in the record's aux word and
        present it verbatim at the next add.
        """
        value = self.cache.remove(key)
        self.clock += 1
        epoch = self.epochs.stamp()
        self._set_hash(self._write_sets, epoch).insert_entry(
            *entry_fields(key, value, self.clock, epoch)
        )
        self._counters.deferred_evicts += 1
        return self.clock, epoch

    def refresh_hash(self, key: BitKey, parent_key: BitKey) -> None:
        """Recompute the parent's stored hash for a *cached* child.

        Not used by the hybrid scheme (lazy updates make it unnecessary);
        it exists to model VeritasDB-style eager propagation (§8.5's MV
        baseline), where every put pushes hash updates all the way to the
        root. Integrity-neutral: both records are cached.
        """
        parent_value, side, ptr = self._parent_pointer(key, parent_key)
        if ptr is None or ptr.key != key:
            raise StructuralError(
                f"cannot refresh {key!r}: parent {parent_key!r} does not point at it"
            )
        value = self.cache.get(key).value
        new_hash = value_hash(value, counters=self._counters)
        self.cache.update(parent_key,
                          parent_value.with_pointer(side, ptr.with_hash(new_hash)))

    # ------------------------------------------------------------------
    # Structure changes (inserts)
    # ------------------------------------------------------------------
    def insert_extend(self, key: BitKey, value: DataValue,
                      parent_key: BitKey) -> int:
        """Insert a new key below a null pointer side; returns its slot.

        Soundness: a null pointer at the cached parent proves no key of the
        tree lives in that subtree, so ``key`` is genuinely new.
        """
        self._require_admittable(key)
        parent_value, side, ptr = self._parent_pointer(key, parent_key)
        if ptr is not None:
            raise StructuralError(
                f"insert_extend at {parent_key!r} side {side} but pointer is not null"
            )
        if not isinstance(value, DataValue):
            raise StructuralError("inserted leaves must be data records")
        new_ptr = Pointer(key, value_hash(value, counters=self._counters))
        self.cache.update(parent_key, parent_value.with_pointer(side, new_ptr))
        return self.cache.add(key, value)

    def insert_split(self, key: BitKey, value: DataValue,
                     parent_key: BitKey) -> tuple[BitKey, int, int]:
        """Insert a new key by splitting the parent's existing edge.

        The parent's pointer targets some ``other`` that neither equals nor
        is an ancestor of ``key``. A new internal node at
        ``m = lca(key, other)`` takes over the edge: one side inherits the
        old pointer (hash carried over unchanged — ``other``'s protection
        story is untouched), the other points at the new leaf.

        Checks (the "subtle additional checks" of §6.4): ``m`` must be a
        *proper* ancestor of both keys — ``m == other`` would mean ``key``
        lives under an existing subtree the host is trying to bypass, and
        is rejected, forcing an honest descent instead.

        Returns ``(m, slot_of_m, slot_of_key)``; both new records start
        life cached (the new node dirty, to be evicted like any other).
        """
        self._require_admittable(key, slots=2)
        parent_value, side, ptr = self._parent_pointer(key, parent_key)
        if ptr is None:
            raise StructuralError("insert_split needs an existing pointer to split")
        other = ptr.key
        if other == key:
            raise StructuralError(f"{key!r} already exists; split is a lie")
        mid = key.lca(other)
        if mid in self.cache:
            raise CacheStateError(f"split point {mid!r} already cached")
        if not (mid.is_proper_ancestor_of(key) and mid.is_proper_ancestor_of(other)):
            raise StructuralError(
                f"split point {mid!r} must be a proper ancestor of both "
                f"{key!r} and {other!r}; descend instead"
            )
        if not parent_key.is_proper_ancestor_of(mid):
            raise StructuralError(f"split point {mid!r} escapes parent {parent_key!r}")
        if not isinstance(value, DataValue):
            raise StructuralError("inserted leaves must be data records")
        mid_value = MerkleValue()
        mid_value = mid_value.with_pointer(other.direction_from(mid), ptr)
        leaf_ptr = Pointer(key, value_hash(value, counters=self._counters))
        mid_value = mid_value.with_pointer(key.direction_from(mid), leaf_ptr)
        mid_hash = value_hash(mid_value, counters=self._counters)
        mid_slot = self.cache.add(mid, mid_value)
        leaf_slot = self.cache.add(key, value)
        self.cache.update(
            parent_key, parent_value.with_pointer(side, Pointer(mid, mid_hash))
        )
        return mid, mid_slot, leaf_slot

    # ------------------------------------------------------------------
    # Operations on cached records
    # ------------------------------------------------------------------
    def read(self, key: BitKey) -> Value:
        """The value of a cached record (validation of a get)."""
        return self.cache.get(key).value

    def update(self, key: BitKey, value: Value) -> None:
        """Overwrite a cached record's value (validation of a put).

        Data records take data values; Merkle records are never updated
        through this path (their values change only via evictions of their
        children or structure changes).
        """
        current = self.cache.get(key).value
        if isinstance(current, MerkleValue) or not isinstance(value, DataValue):
            raise StructuralError("update applies only to data records")
        self.cache.update(key, value)

    def check_absent(self, key: BitKey, ancestor_key: BitKey) -> None:
        """Prove ``key`` is not in the tree from a cached ancestor.

        Sound when the pointer on ``key``'s side is null, or bypasses
        ``key`` (targets something that is neither ``key`` nor an ancestor
        of it — Patricia compression guarantees nothing else can be below).
        """
        _, _, ptr = self._parent_pointer(key, ancestor_key)
        if ptr is None:
            return
        if ptr.key == key:
            raise StructuralError(f"{key!r} exists; absence claim is false")
        if ptr.key.is_proper_ancestor_of(key):
            raise StructuralError(
                f"absence of {key!r} undecided at {ancestor_key!r}: "
                f"must descend into {ptr.key!r}"
            )
        # Pointer bypasses the key: genuinely absent.

    # ------------------------------------------------------------------
    # Epoch aggregation support
    # ------------------------------------------------------------------
    def take_epoch_hashes(self, epoch: int) -> tuple[int, int]:
        """Remove and return (read_hash, write_hash) for an epoch (§5.3).

        Called by the verifier group when closing the epoch; missing
        accumulators mean this thread saw no traffic for it (empty hash).
        """
        rs = self._read_sets.pop(epoch, None)
        ws = self._write_sets.pop(epoch, None)
        return (rs.value if rs else 0, ws.value if ws else 0)

    def open_epochs(self) -> set[int]:
        """Epochs this thread still holds accumulators for."""
        return set(self._read_sets) | set(self._write_sets)

    # ------------------------------------------------------------------
    # State size (for enclave memory accounting)
    # ------------------------------------------------------------------
    def trusted_memory_bytes(self) -> int:
        """Rough footprint: the cache slab is *reserved* at its configured
        capacity (enclave memory must be allocated up front), resident
        entries add their payloads, set hashes are O(1)."""
        per_slot = 64    # slot table + freelist reservation
        per_entry = 128  # key + value payload, order of magnitude
        sets = (len(self._read_sets) + len(self._write_sets)) * 16
        return (self.cache.capacity * per_slot
                + len(self.cache) * per_entry + sets + 64)

"""FastVer reproduction: a verified key-value store with hybrid integrity.

Reproduces Arasu et al., "FastVer: Making Data Integrity a Commodity"
(SIGMOD 2021): a FASTER-style key-value store extended with a verify()
capability that detects any tampering by the untrusted host, built from a
novel hybrid of record-encoded sparse Merkle trees, verifier caching with
lazy hash updates, and Concerto-style deferred memory verification.

Quickstart::

    from repro import FastVer, FastVerConfig, new_client

    db = FastVer(FastVerConfig(key_width=32, partition_depth=4,
                               n_workers=2),
                 items=[(k, b"v%d" % k) for k in range(1000)])
    alice = new_client(1)
    db.register_client(alice)
    db.put(alice, 7, b"hello")
    print(db.get(alice, 7).payload)      # b'hello'
    report = db.verify()                 # epoch close: integrity settled
    db.flush()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.backoff import BackoffPolicy
from repro.client import RetryingClient
from repro.core.fastver import FastVer, FastVerConfig, OpResult, VerifyReport
from repro.core.keys import BitKey
from repro.core.protocol import Client
from repro.crypto.mac import MacKey
from repro.errors import (
    AvailabilityError,
    IntegrityError,
    NotLeaderError,
    ReproError,
    UnrecoverableError,
)
from repro.faults import FaultPlan, install_faults
from repro.replication import ReplicationConfig, ReplicationManager
from repro.server import FastVerServer, ServerConfig

__version__ = "1.0.0"


def new_client(client_id: int) -> Client:
    """Create a client with a fresh MAC key (register it with the store)."""
    return Client(client_id, MacKey.generate(f"client-{client_id}"))


__all__ = [
    "BackoffPolicy",
    "FastVer",
    "FastVerConfig",
    "FastVerServer",
    "OpResult",
    "RetryingClient",
    "ServerConfig",
    "VerifyReport",
    "BitKey",
    "Client",
    "MacKey",
    "AvailabilityError",
    "FaultPlan",
    "IntegrityError",
    "NotLeaderError",
    "ReplicationConfig",
    "ReplicationManager",
    "ReproError",
    "UnrecoverableError",
    "install_faults",
    "new_client",
    "__version__",
]

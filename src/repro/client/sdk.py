"""The retrying client SDK: at-most-once semantics over a lossy server.

A :class:`RetryingClient` wraps one :class:`~repro.core.protocol.Client`
talking to one :class:`~repro.server.FastVerServer` and absorbs every
*transient* :class:`~repro.errors.AvailabilityError` — shed admissions,
dropped wire messages, open breakers, in-flight recoveries — behind
jittered exponential backoff (the same
:class:`~repro.backoff.BackoffPolicy` the verifier's own ecall gate uses).

The hard problem a naive retry loop gets wrong twice over:

* **Blind re-execution double-applies.** A put whose *response* was lost
  on the wire WAS applied; applying it again is a lost-update bug waiting
  to happen (and re-submitting the same client nonce would trip the
  verifier's anti-replay window — a spurious integrity alarm). Every
  request therefore carries the nonce the client drew at construction
  time, and the server's idempotency table answers retries of an
  already-applied operation from the recorded result.
* **Giving up must be definitive.** When the budget runs out, the SDK
  issues a ``cancel``: the server either returns the recorded result (the
  op happened after all — report success) or removes it from the
  degraded-mode write queue (the op can now never happen — report
  failure). Either way the caller learns a truth, not a maybe.

So the retry protocol per failed attempt is: **query** the server for the
nonce's fate; ``done`` → return the recorded result; ``pending`` (queued
behind a recovery) → keep polling the *same* request; ``unknown`` → the
op was provably never applied, so re-issue under a *fresh* envelope
(fresh nonce, fresh deadline). Integrity errors are never retried — they
are the verifier speaking, and no amount of retrying un-tampers a store.

Failover adds one more case: a :class:`~repro.errors.NotLeaderError`
means a standby was promoted mid-conversation. The SDK fetches the new
leadership generation plus this client's *fence receipt* (verified under
the client's own MAC key — the host cannot forge it), after which every
receipt from the deposed verifier's fenced epochs is refused, and the
in-flight operation is resolved through the same idempotency query: done
→ it crossed the handoff, return it; unknown → reissue fresh. Exactly
once either way.
"""

from __future__ import annotations

from repro.backoff import BackoffPolicy
from repro.core.protocol import Client
from repro.errors import (
    AvailabilityError,
    IntegrityError,
    NotLeaderError,
    ReceiptBindingError,
    RetriesExhaustedError,
    SplitBrainError,
    StaleReplayError,
    UnrecoverableError,
)
from repro.instrument import COUNTERS
from repro.obs import TRACER
from repro.server.pipeline import FastVerServer, ServerRequest, ServerResult


class RetryingClient:
    """One client endpoint with transparent retry + idempotent dedup."""

    def __init__(self, server: FastVerServer, client: Client,
                 policy: BackoffPolicy | None = None):
        self.server = server
        self.client = client
        self.policy = policy or BackoffPolicy(
            max_attempts=5, base_delay=2.0, max_delay=16.0,
            seed=client.client_id)
        if self.policy.sleep_fn is None:
            # Couple retry pacing to the server's simulated clock so
            # backoff actually lets breaker cooldowns and recoveries pass.
            self.policy.sleep_fn = server._advance
        #: Operations abandoned after a definitive cancel.
        self.gave_up = 0
        #: Leadership generation this endpoint believes in; refreshed by
        #: following a NotLeaderError redirect after a failover.
        self.generation = server.generation
        #: Redirects followed (failovers observed by this endpoint).
        self.redirects = 0
        #: Trace ids minted by this endpoint (one per logical operation;
        #: retries and fresh envelopes keep the same id, so the whole
        #: retry saga is one span in the ring).
        self._trace_seq = 0
        #: key bits -> recent (nonce, payload) puts this endpoint made,
        #: oldest first. The trusted half of stale-read vetting: a
        #: replica claiming an as-of epoch that covers one of our own
        #: settled writes must not serve a value we provably superseded.
        self._writes: dict[int, list[tuple[int, bytes | None]]] = {}
    #: Per-key history bound for :attr:`_writes` (vetting only needs the
    #: recent tail; unbounded growth would leak in long soaks).
    WRITE_HISTORY = 8

    # ------------------------------------------------------------------
    def get(self, key: int | bytes) -> ServerResult:
        return self._run("get", key, None)

    def get_stale(self, key: int | bytes,
                  budget_epochs: int = 1) -> ServerResult:
        """A verified-stale read: opt in to service by a tailing standby
        at most ``budget_epochs`` behind the primary. The result comes
        back with ``stale=True`` and the epoch it was verified at
        (``as_of_epoch``) when a replica served it — an explicit, typed
        degraded-read contract, not a silent downgrade — and falls
        through to an ordinary primary read otherwise. Every stale
        result is vetted against this endpoint's trusted state (epoch
        receipts and its own settled writes) before being returned."""
        return self._run("get", key, None, max_stale_epochs=budget_epochs)

    def put(self, key: int | bytes, payload: bytes | None) -> ServerResult:
        result = self._run("put", key, payload)
        history = self._writes.setdefault(self.server.bitkey(key).bits, [])
        history.append((result.nonce, payload))
        del history[:-self.WRITE_HISTORY]
        return result

    # ------------------------------------------------------------------
    def _envelope(self, kind: str, key: int | bytes,
                  payload: bytes | None,
                  trace: str | None = None,
                  max_stale_epochs: int | None = None) -> ServerRequest:
        bk = self.server.bitkey(key)
        if kind == "get":
            op = self.client.make_get(bk)
        else:
            op = self.client.make_put(bk, payload)
        deadline = self.server.now + self.server.config.default_deadline
        return ServerRequest(kind, op, deadline, worker=bk.bits,
                             generation=self.generation, trace=trace,
                             max_stale_epochs=max_stale_epochs)

    def _follow_redirect(self, request: ServerRequest) -> None:
        """Adopt the new leadership generation and its fence receipt: the
        client verifies the fence under its own MAC key, after which it
        refuses every receipt the deposed verifier could have signed.

        Generations only move forward. A server redirecting us to a
        *lower* generation than one we already adopted is not a failover —
        it is a deposed primary still answering (split-brain), and
        following it would walk this endpoint back behind the fence."""
        generation, fence = self.server.leader_info(self.client.client_id)
        if generation < self.generation:
            TRACER.record("detect", self.server.now, request.trace,
                          detector="sdk_generation",
                          offered=generation, held=self.generation)
            raise SplitBrainError(
                f"redirect offers leadership generation {generation} but "
                f"this endpoint already adopted {self.generation}: a "
                f"deposed primary is still serving")
        if fence is not None:
            self.client.accept_fence(fence)
        self.generation = generation
        request.generation = generation
        self.redirects += 1

    def _vet(self, result: ServerResult, trace: str,
             expected_nonce: int | None = None) -> ServerResult:
        """Cross-check a server reply against trusted client state before
        handing it to the caller — the client-side half of the detection
        surface (host-owned tables are not evidence; receipts are).

        * The echoed nonce must be the one this request carried. Under
          pipelined settlement receipts stream back across pumps, so a
          byzantine host gets a new degree of freedom — pairing this
          request with some *other* in-flight ticket's settled result —
          and the nonce echo is what pins the pairing.
        * The vouched generation must never regress below the one this
          endpoint adopted via a verified fence receipt.
        * A deduplicated reply (served from the host-owned idempotency
          table) must agree with the verifier-signed op receipt the client
          holds for that nonce, if it holds one — a mismatch means the
          recorded answer was rewritten after the fact.
        """
        if expected_nonce is not None and result.nonce != expected_nonce:
            TRACER.record("detect", self.server.now, trace,
                          detector="sdk_receipt_binding",
                          nonce=result.nonce, expected=expected_nonce)
            raise ReceiptBindingError(
                f"reply echoes nonce {result.nonce} but this request "
                f"carried {expected_nonce}: the host mis-paired a "
                f"streamed settlement with the wrong in-flight request")
        if result.generation < self.generation:
            TRACER.record("detect", self.server.now, trace,
                          detector="sdk_generation",
                          offered=result.generation, held=self.generation)
            raise SplitBrainError(
                f"result vouches for leadership generation "
                f"{result.generation} below the adopted "
                f"{self.generation}: a deposed primary is still serving")
        if result.deduped and not result.degraded:
            receipt = self.client.receipt_for(result.nonce)
            if receipt is not None and receipt.payload != result.payload:
                TRACER.record("detect", self.server.now, trace,
                              detector="sdk_receipt_binding",
                              nonce=result.nonce)
                raise ReceiptBindingError(
                    f"deduplicated answer for nonce {result.nonce} "
                    f"contradicts the verifier receipt the client holds: "
                    f"the idempotency table was rewritten")
        return result

    def _vet_stale(self, result: ServerResult, key_bits: int,
                   trace: str) -> None:
        """Cross-check a verified-stale replica result against trusted
        client state. Two lies are catchable without any extra receipt:

        * **Freshness-floor lie.** The server vouches that the primary
          stands at ``as_of_epoch + stale_epochs``. This client holds a
          verifier-signed epoch receipt at ``settled_epoch``; the primary
          can never be behind that, so a vouched position below it is a
          replay dressed up as staleness.
        * **Read-your-settled-writes lie.** Among this endpoint's own
          puts to the key that are settled (epoch receipt in hand) AND
          covered by the vouched as-of epoch, the latest one is the value
          any honest view at that epoch must show. Serving one of the
          *superseded* own values instead is provably a rollback — honest
          replica lag can hide a newer write, never resurrect an older
          one from behind the vouched verification point.
        """
        settled = self.client.settled_epoch
        if result.as_of_epoch + result.stale_epochs < settled:
            TRACER.record("detect", self.server.now, trace,
                          detector="sdk_stale_replay",
                          as_of=result.as_of_epoch,
                          claimed_stale=result.stale_epochs,
                          settled=settled)
            raise StaleReplayError(
                f"stale read vouches for primary epoch "
                f"{result.as_of_epoch + result.stale_epochs} but this "
                f"client already settled epoch {settled}: the staleness "
                f"claim is a lie")
        covered = [payload for nonce, payload
                   in self._writes.get(key_bits, [])
                   if self.client.settled(nonce)
                   and (receipt := self.client.receipt_for(nonce))
                   is not None and receipt.epoch <= result.as_of_epoch]
        if covered and result.payload != covered[-1] \
                and result.payload in covered[:-1]:
            TRACER.record("detect", self.server.now, trace,
                          detector="sdk_stale_replay",
                          as_of=result.as_of_epoch)
            raise StaleReplayError(
                f"stale read served a value this client provably "
                f"superseded before the vouched as-of epoch "
                f"{result.as_of_epoch}: a replay dressed up as replica "
                f"lag")

    def _run(self, kind: str, key: int | bytes,
             payload: bytes | None,
             max_stale_epochs: int | None = None) -> ServerResult:
        self._trace_seq += 1
        trace = f"c{self.client.client_id}-{self._trace_seq}"
        request = self._envelope(kind, key, payload, trace,
                                 max_stale_epochs)
        last: Exception | None = None
        for attempt, delay in enumerate(self.policy.delays()):
            self.policy.sleep(delay)
            if attempt:
                COUNTERS.retried += 1
                TRACER.record("retry", self.server.now, trace,
                              attempt=attempt,
                              after=type(last).__name__ if last else None)
            try:
                result = self._vet(self.server.handle(request), trace,
                                   expected_nonce=request.nonce)
                if result.stale:
                    self._vet_stale(result, request.op.key.bits, trace)
                return result
            except IntegrityError:
                raise
            except UnrecoverableError:
                raise  # the ladder is out of rungs; retrying cannot help
            except NotLeaderError as exc:
                # A failover happened under us. Adopt the fence, then let
                # the idempotency query below resolve whether this very
                # operation made it across the handoff — the ambiguous
                # straddling-put case resolves exactly-once here.
                last = exc
                self._follow_redirect(request)
                TRACER.record("redirect", self.server.now, trace,
                              generation=self.generation)
                status, result = self.server.query(request.client_id,
                                                   request.nonce)
                if status == "done":
                    # It crossed the failover; don't fork.
                    return self._vet(result, trace,
                                     expected_nonce=request.nonce)
                if status == "pending":
                    continue
                request = self._envelope(kind, key, payload, trace,
                                         max_stale_epochs)
                continue
            except AvailabilityError as exc:
                last = exc
                status, result = self.server.query(request.client_id,
                                                   request.nonce)
                if status == "done":
                    # Applied; the response was what we lost.
                    return self._vet(result, trace,
                                     expected_nonce=request.nonce)
                if status == "pending":
                    continue  # queued behind a recovery: poll, don't fork
                # "unknown": provably never applied — a fresh envelope
                # (fresh nonce, fresh deadline) is safe and necessary.
                request = self._envelope(kind, key, payload, trace,
                                         max_stale_epochs)
        resolved = self.server.cancel(request.client_id, request.nonce)
        if resolved is not None:
            return self._vet(resolved, trace,
                             expected_nonce=request.nonce)
        self.gave_up += 1
        raise RetriesExhaustedError(
            f"{kind} abandoned after {self.policy.max_attempts} attempts "
            f"(last: {type(last).__name__}: {last}); the cancel confirmed "
            f"it was never applied") from last

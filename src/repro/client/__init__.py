"""The client SDK: transparent retry with idempotent deduplication."""

from repro.client.sdk import RetryingClient

__all__ = ["RetryingClient"]

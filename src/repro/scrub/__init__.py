"""Background integrity scrub and verified record-level repair.

See :mod:`repro.scrub.scrubber` for the design discussion and
``docs/PROTOCOL.md`` ("Scrub & verified repair") for the trust argument.
"""

from repro.scrub.scrubber import RepairAction, RepairLedger, Scrubber

__all__ = ["RepairAction", "RepairLedger", "Scrubber"]

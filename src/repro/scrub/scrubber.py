"""Background integrity scrubber with verified record-level repair.

Latent corruption — bit rot, torn pages that slipped past a crash, a
checkpoint blob quietly decaying at rest — is *detected* by FastVer's
verification machinery, but only when the damaged record is next touched
by a client operation. A cold record can sit rotten for days, and the
first touch then costs a full restore (or worse, the retained checkpoint
itself has rotted and the restore falls through to lenient salvage).
The scrubber closes that window: it re-verifies device-resident pages in
the background, on a page budget per pump so it never starves admission,
and repairs what it finds *surgically* — one record, re-vetted through
the enclave, instead of one store, rebuilt from scratch.

Trust model
-----------
The scrubber is **host-side** code: nothing it computes is trusted, and
nothing needs to be. Its hash checks are an *early-warning mirror* of
the checks the enclave would perform on first touch (the same
``H(value)``-vs-parent-pointer comparison ``add_merkle`` authenticates).
A false negative merely re-opens the window the verifier already covers;
a false positive quarantines a healthy page, and repair re-installs the
same bytes. The load-bearing step is **repair re-vetting**: every
repaired record is pulled through the enclave's normal cold path, so a
corrupt *repair source* (a lying standby, a tampered retained tail)
is caught by exactly the check that would have caught the host serving
the forgery to a client — see :meth:`repro.core.fastver.FastVer.repair_record`.

Repair sources, in priority order:

1. the freshest live quorum standby's committed view
   (:meth:`ReplicationManager.repair_payload`, which falls back to the
   shipper's retained tail);
2. the server's durable read cache (``committed_reads``);
3. a caller-supplied ``candidate_fn`` (the chaos harness's workload
   model — standing in for an operator's external backup);
4. for interior Merkle nodes only: reconstruction from the children's
   current store values (sound only in the merkle-at-rest steady state;
   anything else fails retryably and the supervisor ladder covers it).

Every attempt — quarantine, repair, failure, rejected forgery — lands in
an append-only :class:`RepairLedger` whose digest is part of the chaos
determinism check.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.hostmirror import host_value_hash
from repro.core.keys import BitKey
from repro.core.records import (
    Aux,
    DataValue,
    MerkleValue,
    Pointer,
    Value,
    encode_value,
)
from repro.errors import (
    AvailabilityError,
    RecoveryError,
    RepairFailedError,
    RepairForgeryError,
)
from repro.instrument import COUNTERS
from repro.merkle.sparse import FOUND, lookup
from repro.obs.trace import TRACER
from repro.store.checkpoint import _deserialize_index, rot_blob_at_rest
from repro.store.hybridlog import LogRecord


@dataclass(frozen=True)
class RepairAction:
    """One ledger line: something the scrubber decided about one page."""

    ts: float
    address: int
    key_length: int
    key_bits: int
    reason: str      # why the page drew attention (hash-mismatch, ...)
    source: str      # where the repair candidate came from ("" if n/a)
    outcome: str     # quarantined | repaired | failed | forged | superseded
                     # | checkpoint-rot

    def line(self) -> str:
        return (f"{self.ts:.3f}|{self.address}|{self.key_length}"
                f":{self.key_bits}|{self.reason}|{self.source}|{self.outcome}")


class RepairLedger:
    """Append-only record of every scrub/repair decision.

    The ledger is the audit trail the paper's threat model wants from a
    self-healing store: *which* pages rotted, *where* the replacement
    bytes came from, and *what* the enclave said about them. Its digest
    folds into the chaos determinism check, so a run that heals the same
    damage a different way fails reproducibility loudly.
    """

    def __init__(self):
        self.actions: list[RepairAction] = []

    def record(self, ts: float, address: int, key: BitKey | None,
               reason: str, outcome: str, source: str = "") -> None:
        self.actions.append(RepairAction(
            ts=ts, address=address,
            key_length=key.length if key is not None else -1,
            key_bits=key.bits if key is not None else -1,
            reason=reason, source=source, outcome=outcome))

    def digest(self) -> str:
        h = hashlib.sha256()
        for action in self.actions:
            h.update(action.line().encode())
            h.update(b"\n")
        return h.hexdigest()

    def outcomes(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for action in self.actions:
            out[action.outcome] = out.get(action.outcome, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.actions)


class Scrubber:
    """Incremental device-page verifier and repair driver.

    One :meth:`pump` does a bounded slice of work in three steps:
    validate the retained checkpoint blob (rot-at-rest is only
    observable when someone consults the blob — better the scrubber now
    than recovery later), attempt repair of every quarantined page, then
    walk at most ``budget_pages`` device-resident pages forward from a
    persistent cursor. The cursor orders pages top-down by key
    ``(length, bits)``, so a corrupt interior node is found — and
    repaired — before the scrub reaches records beneath it whose chain
    checks would otherwise fail on the dirty ancestor.

    In-memory pages are skipped: the memory copy is authoritative and
    the next flush rewrites the device page anyway.
    """

    def __init__(self, db, budget_pages: int = 4, repl=None, server=None,
                 candidate_fn=None, now_fn=None, advance_fn=None,
                 tick_per_page: float = 0.02,
                 repair_base_ticks: float = 0.1,
                 repair_tick_per_page: float = 0.1):
        self.db = db
        self.budget_pages = max(1, budget_pages)
        self.repl = repl
        self.server = server
        self.candidate_fn = candidate_fn
        self._now = now_fn if now_fn is not None else (lambda: 0.0)
        self._advance = advance_fn if advance_fn is not None else (lambda t: None)
        self.tick_per_page = tick_per_page
        self.repair_base_ticks = repair_base_ticks
        self.repair_tick_per_page = repair_tick_per_page
        self.ledger = RepairLedger()
        # Walk state: cursor is the (length, bits) of the last key checked.
        self._cursor: tuple[int, int] | None = None
        self.full_passes = 0
        self.pages_checked = 0
        self.mismatches_found = 0
        self.repairs_done = 0
        # Retained-checkpoint validation state.
        self.checkpoint_stale = False
        self._checkpoint_version = None
        self._quarantine_keys: dict[int, BitKey] = {}
        self._repair_ticks_acc = 0.0

    # ------------------------------------------------------------------
    # Pump
    # ------------------------------------------------------------------
    def pump(self) -> dict:
        """One bounded scrub slice; returns a summary for callers/tests."""
        self._check_retained_checkpoint()
        repaired = self._repair_quarantined()
        pages, mismatches = self._walk()
        if pages:
            self._advance(pages * self.tick_per_page)
        self._note_quarantine_gauge()
        summary = {
            "pages": pages,
            "mismatches": mismatches,
            "repaired": repaired,
            "quarantined": len(self.db.store.quarantined_addresses),
            "checkpoint_stale": self.checkpoint_stale,
        }
        if pages or mismatches or repaired:
            TRACER.record("scrub", self._now(), **summary)
        return summary

    def scrub_to_convergence(self, max_passes: int = 8,
                             max_pumps: int = 10000) -> bool:
        """Pump until one full pass finds nothing and the quarantine is
        empty (the chaos soak's zero-quarantine oracle), or give up."""
        pumps = 0
        for _ in range(max_passes):
            target = self.full_passes + 1
            found_before = self.mismatches_found
            while self.full_passes < target and pumps < max_pumps:
                self.pump()
                pumps += 1
            if (self.full_passes >= target
                    and self.mismatches_found == found_before
                    and not self.db.store.quarantined_addresses):
                return True
        return False

    # ------------------------------------------------------------------
    # Retained checkpoint blob
    # ------------------------------------------------------------------
    def _check_retained_checkpoint(self) -> None:
        checkpoint = self.db.last_checkpoint
        if checkpoint is None:
            return
        token = checkpoint.store_token
        if self._checkpoint_version != token.version:
            # A fresh checkpoint replaced the blob we flagged.
            self._checkpoint_version = token.version
            self.checkpoint_stale = False
        if self.checkpoint_stale:
            return  # known-rotted; waiting for the next checkpoint
        rot_blob_at_rest(token, self.db.faults)
        try:
            _deserialize_index(token.index_blob)
        except RecoveryError as exc:
            # The recovery point itself decayed. Nothing to repair in
            # place (the blob is not Merkle-protected; its integrity
            # story *is* replacement) — flag it so the next maintenance
            # checkpoint supersedes it before anyone needs to restore.
            self.checkpoint_stale = True
            COUNTERS.scrub_checkpoint_refreshes += 1
            self.ledger.record(self._now(), -1, None,
                               reason=f"retained-blob-rot:{exc}",
                               outcome="checkpoint-rot")
            TRACER.record("scrub", self._now(), checkpoint_rot=True,
                          version=token.version)

    # ------------------------------------------------------------------
    # Quarantine repair
    # ------------------------------------------------------------------
    def _repair_quarantined(self) -> int:
        store = self.db.store
        if not store.quarantined_addresses:
            return 0
        repaired = 0
        for address in list(store.quarantined_addresses):
            key = self._quarantine_keys.get(address)
            if key is None:
                key = self._key_for_address(address)
            if self._repair_one(address, key):
                repaired += 1
        self._note_quarantine_gauge()
        return repaired

    def _key_for_address(self, address: int) -> BitKey | None:
        """Best-effort reverse lookup for pages quarantined by someone
        else (lenient salvage) that arrive without a key attached."""
        store = self.db.store
        try:
            record = LogRecord.deserialize(
                store.log.device.read_with_retry(address))
        except Exception:
            record = None
        if record is not None and store.index.lookup(record.key) == address:
            return record.key
        for key, addr in store.index.snapshot().items():
            if addr == address:
                return key
        return None

    def _repair_one(self, address: int, key: BitKey | None) -> bool:
        db, store = self.db, self.db.store
        ticks = self.repair_base_ticks + self.repair_tick_per_page
        source = ""
        try:
            if db.faults is not None and db.faults.fire("scrub.repair.fail"):
                raise RepairFailedError(
                    "injected repair failure (scrub.repair.fail)")
            if key is None:
                raise RepairFailedError(
                    f"no index entry resolves quarantined page {address}")
            if store.index.lookup(key) != address:
                # The index moved past this version; the rotten page is
                # unreferenced dead weight, not live state.
                self._dequarantine(address)
                self.ledger.record(self._now(), address, key,
                                   reason="index-moved", outcome="superseded")
                return False
            candidate = None
            if key not in db.cached_where:
                candidate, source = self._candidate_for(key)
            else:
                # Verifier-cached: the enclave already holds the authentic
                # value (the host mirror shadows it), so the repair needs no
                # courier at all — sourcing one here would fail spuriously
                # when the rotted page is an interior node whose children
                # are not merkle-at-rest.
                source = "verifier-cache"
            tier = db.repair_record(key, candidate)
        except RepairFailedError as exc:
            COUNTERS.repair_failures += 1
            self.ledger.record(self._now(), address, key,
                               reason=str(exc)[:120], source=source,
                               outcome="failed")
            TRACER.record("repair", self._now(), address=address,
                          source=source, outcome="failed")
            return False
        except RepairForgeryError as exc:
            if source == "reconstruction":
                # Our own reconstruction disagreed with the authenticated
                # root — a stale/rotted *child*, not a lying courier.
                # Retryable: the child's own scrub pass repairs it first.
                COUNTERS.repair_failures += 1
                self.ledger.record(self._now(), address, key,
                                   reason=str(exc)[:120], source=source,
                                   outcome="failed")
                TRACER.record("repair", self._now(), address=address,
                              source=source, outcome="failed")
                return False
            # An external candidate failed enclave re-vetting: that is a
            # detected forgery, and it surfaces as the integrity error it
            # is — the supervisor treats it like any tamper detection.
            COUNTERS.repair_forgeries += 1
            self.ledger.record(self._now(), address, key,
                               reason=str(exc)[:120], source=source,
                               outcome="forged")
            TRACER.record("repair", self._now(), address=address,
                          source=source, outcome="forged")
            raise
        else:
            self._dequarantine(address)
            COUNTERS.scrub_repairs += 1
            self.repairs_done += 1
            self.ledger.record(self._now(), address, key, reason=tier,
                               source=source, outcome="repaired")
            TRACER.record("repair", self._now(), address=address,
                          source=source, tier=tier, outcome="repaired")
            return True
        finally:
            self._advance(ticks)
            self._repair_ticks_acc += ticks
            whole = int(self._repair_ticks_acc)
            if whole:
                COUNTERS.repair_ticks += whole
                self._repair_ticks_acc -= whole

    def _dequarantine(self, address: int) -> None:
        store = self.db.store
        if address in store.quarantined_addresses:
            store.quarantined_addresses.remove(address)
        self._quarantine_keys.pop(address, None)

    # ------------------------------------------------------------------
    # Candidate sourcing
    # ------------------------------------------------------------------
    def _candidate_for(self, key: BitKey) -> tuple[Value, str]:
        db = self.db
        if key.length == db.config.key_width:
            if self.repl is not None:
                found, payload = self.repl.repair_payload(key.bits)
                if found:
                    return DataValue(payload), "standby"
            if self.server is not None:
                cache = self.server.committed_reads
                if key in cache:
                    return DataValue(cache[key]), "server-cache"
            if self.candidate_fn is not None:
                found, payload = self.candidate_fn(key.bits)
                if found:
                    return DataValue(payload), "external"
            raise RepairFailedError(
                f"no authentic source offers a candidate for {key!r}")
        return self._reconstruct_node(key), "reconstruction"

    def _reconstruct_node(self, key: BitKey) -> MerkleValue:
        """Rebuild an interior Merkle value from its children's current
        store values. Sound only when both children are merkle-at-rest:
        a cached or deferred child's parent-pointer hash is legitimately
        stale, so reconstructing from its *current* value would produce a
        parent the enclave never authenticated."""
        db = self.db
        snapshot = db.store.index.snapshot()
        ptr0 = ptr1 = None
        for side in (0, 1):
            child = self._closure_child(snapshot, key, side)
            if child is None:
                continue
            if child in db.cached_where or child in db.deferred_index:
                raise RepairFailedError(
                    f"child {child!r} of {key!r} is not merkle-at-rest; "
                    f"reconstruction would forge a stale parent")
            try:
                child_value = db._host_value(child)
            except AvailabilityError:
                raise
            except Exception as exc:
                raise RepairFailedError(
                    f"child {child!r} of {key!r} is unreadable: {exc}"
                ) from exc
            if child_value is None:
                raise RepairFailedError(
                    f"child {child!r} of {key!r} has no value")
            ptr = Pointer(child, host_value_hash(child_value))
            if side == 0:
                ptr0 = ptr
            else:
                ptr1 = ptr
        if ptr0 is None and ptr1 is None:
            raise RepairFailedError(
                f"interior node {key!r} has no surviving children")
        return MerkleValue(ptr0, ptr1)

    @staticmethod
    def _closure_child(snapshot: dict[BitKey, int], node: BitKey,
                       side: int) -> BitKey | None:
        """The tree child of ``node`` on ``side``: the topmost index key
        strictly below ``node`` on that side (unique because the key set
        is closed under pairwise LCA)."""
        best = None
        for key in snapshot:
            if not node.is_proper_ancestor_of(key):
                continue
            if key.bit(node.length) != side:
                continue
            if best is None or (key.length, key.bits) < (best.length, best.bits):
                best = key
        return best

    # ------------------------------------------------------------------
    # Budgeted walk
    # ------------------------------------------------------------------
    def _walk(self) -> tuple[int, int]:
        db, store = self.db, self.db.store
        snapshot = store.index.snapshot()
        keys = sorted(snapshot, key=lambda k: (k.length, k.bits))
        if not keys:
            return 0, 0
        start = 0
        if self._cursor is not None:
            while start < len(keys) and \
                    (keys[start].length, keys[start].bits) <= self._cursor:
                start += 1
            if start >= len(keys):
                start = 0
                self._cursor = None
        pages = mismatches = 0
        device = store.log.device
        # The access-pattern hint a byzantine host can key on: scrub
        # reads are distinguishable from serving reads (they are!), and
        # the scrub_evasion red-team campaign exploits exactly this flag.
        device.scrub_reading = True
        index = start
        try:
            while pages < self.budget_pages and index < len(keys):
                key = keys[index]
                index += 1
                address = snapshot[key]
                if address < 0 or store.log.in_memory(address):
                    continue
                pages += 1
                self.pages_checked += 1
                reason = self._check_page(key, address)
                if reason is not None and \
                        address not in store.quarantined_addresses:
                    store.quarantined_addresses.append(address)
                    self._quarantine_keys[address] = key
                    COUNTERS.scrub_mismatches += 1
                    self.mismatches_found += 1
                    mismatches += 1
                    self.ledger.record(self._now(), address, key,
                                       reason=reason, outcome="quarantined")
        finally:
            device.scrub_reading = False
        if index >= len(keys):
            self._cursor = None
            self.full_passes += 1
        else:
            last = keys[index - 1]
            self._cursor = (last.length, last.bits)
        COUNTERS.scrubbed_pages += pages
        return pages, mismatches

    def _check_page(self, key: BitKey, address: int) -> str | None:
        """Re-verify one device page; a string reason means quarantine."""
        db, store = self.db, self.db.store
        try:
            blob = store.log.device.read_with_retry(address)
        except AvailabilityError:
            return None  # transient; the next pass retries
        except Exception:
            return "missing"
        try:
            record = LogRecord.deserialize(blob)
        except Exception:
            return "undecodable"
        if record.key != key:
            return "key-mismatch"
        vid = db.cached_where.get(key)
        if vid is not None:
            # Enclave-cached: the mirror shadows the authoritative value.
            entry = db.mirrors[vid].entries[key]
            if encode_value(record.value) != encode_value(entry.value):
                return "cached-divergence"
            return None
        if key in db.deferred_index:
            # Individually unverifiable by design (the multiset check is
            # aggregate), but the aux word is host metadata we *can* vet.
            ts, epoch = db.deferred_index[key]
            if record.aux != Aux.deferred(ts, epoch).pack():
                return "aux-divergence"
            return None
        # Merkle-at-rest: H(value) must match the authenticated parent
        # pointer — the same comparison add_merkle would make on touch.
        try:
            result = lookup(db._host_value, key)
            if result.kind != FOUND:
                return "unreachable"
            parent_value = db._host_value(result.terminal)
        except AvailabilityError:
            return None
        except Exception:
            return "chain-error"
        ptr = None
        if isinstance(parent_value, MerkleValue):
            ptr = parent_value.pointer(key.direction_from(result.terminal))
        if ptr is None or ptr.key != key:
            return "orphaned"
        if host_value_hash(record.value) != ptr.hash:
            return "hash-mismatch"
        return None

    # ------------------------------------------------------------------
    def _note_quarantine_gauge(self) -> None:
        depth = len(self.db.store.quarantined_addresses)
        if depth > COUNTERS.quarantined_pages:
            COUNTERS.quarantined_pages = depth

"""Byzantine host behaviours (§2.2's threat model, §6.4's attack surface).

Each attack mutates FastVer's *untrusted* state — the store, the aux
words, the host's own bookkeeping — exactly as an adversary with full
control of the server could. The guarantee under test: after any attack,
either some verifier check raises an :class:`~repro.errors.IntegrityError`
on the next interaction, or the epoch's aggregated set-hash equality fails
at the next ``verify()`` — before any epoch receipt reaches a client.

Attacks are plain functions ``attack(db, key_int) -> str`` returning a
short description; ``ATTACKS`` is the registry the parametrized
integration tests and the attack-demo example iterate.
"""

from __future__ import annotations

from repro.core.fastver import FastVer
from repro.core.records import Aux, DataValue, MerkleValue, Pointer, Protection
from repro.errors import ProtocolError


def _record(db: FastVer, key: int):
    record = db.store.read_record(db.data_key(key))
    if record is None:
        raise ProtocolError(f"attack target {key} not in store")
    return record


def _writeback(db: FastVer, record) -> None:
    """Make a tampered record durable. ``read_record`` hands back the live
    object for in-memory addresses (mutations are immediately visible) but
    a transient deserialized copy for device-resident ones — and a host
    that owns the disk simply rewrites the evicted bytes."""
    address = db.store.index.lookup(record.key)
    if not db.store.log.in_memory(address):
        db.store.log.device.write(address, record.serialize())


def tamper_value(db: FastVer, key: int) -> str:
    """Overwrite a record's value in the store behind the verifier's back."""
    record = _record(db, key)
    record.value = DataValue(b"__tampered__")
    _writeback(db, record)
    return "store value overwritten"


def tamper_timestamp(db: FastVer, key: int) -> str:
    """Perturb a deferred record's timestamp (break the Blum discipline)."""
    record = _record(db, key)
    aux = Aux.unpack(record.aux)
    if aux.state is not Protection.DEFERRED:
        raise ProtocolError("timestamp attack needs a deferred record")
    record.aux = Aux.deferred(aux.timestamp + 17, aux.epoch).pack()
    _writeback(db, record)
    # Keep the host's own index consistent with the lie, as a clever
    # attacker controlling the whole host would.
    db.deferred_index[db.data_key(key)] = (aux.timestamp + 17, aux.epoch)
    return "deferred timestamp inflated by 17"


def rollback_record(db: FastVer, key: int, put) -> str:
    """Capture a record's state, let an authorized put advance it, then
    restore the stale (value, aux) pair — serving pre-update data."""
    record = _record(db, key)
    old_value, old_aux = record.value, record.aux
    put()  # the legitimate update the adversary wants to hide
    record = _record(db, key)
    record.value, record.aux = old_value, old_aux
    _writeback(db, record)
    bk = db.data_key(key)
    old = Aux.unpack(old_aux)
    if old.state is Protection.DEFERRED:
        db.deferred_index[bk] = (old.timestamp, old.epoch)
    else:
        db.deferred_index.pop(bk, None)
    return "record rolled back to pre-update state"


def cross_mode_confusion(db: FastVer, key: int) -> str:
    """Relabel a deferred record as Merkle-protected (§6.4's example):
    the stale parent hash may match an old value, but the dangling write
    entry unbalances the epoch sets."""
    record = _record(db, key)
    aux = Aux.unpack(record.aux)
    if aux.state is not Protection.DEFERRED:
        raise ProtocolError("cross-mode attack needs a deferred record")
    record.aux = Aux.merkle().pack()
    _writeback(db, record)
    db.deferred_index.pop(db.data_key(key), None)
    return "deferred record relabelled as merkle"


def corrupt_merkle_pointer(db: FastVer, key: int) -> str:
    """Corrupt a hash along the Merkle chain guarding a cold record.

    Walks from the leaf upward and flips the pointer hash at the first
    ancestor whose record is *not* verifier-cached (a cached holder's
    store copy is never consulted, so corrupting it would be a no-op).
    """
    bk = db.data_key(key)
    from repro.merkle.sparse import FOUND, lookup
    result = lookup(db._host_value, bk)
    if result.kind != FOUND:
        raise ProtocolError("target not in tree")
    chain = list(result.path)  # root ... terminal
    child = bk
    for holder in reversed(chain):
        # A meaningful corruption needs the child's next add_merkle to be
        # checked against this holder's stored hash: both must be uncached
        # and the child must be Merkle-protected.
        child_ok = (child not in db.cached_where
                    and db.store.read_record(child) is not None
                    and Aux.unpack(db.store.read_record(child).aux).state
                    is Protection.MERKLE)
        if holder in db.cached_where or not child_ok:
            child = holder
            continue
        record = db.store.read_record(holder)
        value = record.value
        assert isinstance(value, MerkleValue)
        side = child.direction_from(holder)
        ptr = value.pointer(side)
        record.value = value.with_pointer(side, Pointer(ptr.key, b"\xff" * 32))
        _writeback(db, record)
        return f"merkle hash corrupted at {holder!r}"
    raise ProtocolError("chain effectively cache-protected; nothing to corrupt")


def skip_migration(db: FastVer, key: int) -> str:
    """'Forget' to migrate a deferred record at epoch close: its write
    entry stays unmatched, so the close must fail."""
    bk = db.data_key(key)
    if bk not in db.deferred_index:
        raise ProtocolError("skip-migration attack needs a deferred record")
    del db.deferred_index[bk]
    return "record dropped from the migration index"


def duplicate_read_entry(db: FastVer, key: int) -> str:
    """Present the same deferred record to two verifier caches at once —
    the double-add that a multiset-secure combiner must catch."""
    bk = db.data_key(key)
    record = _record(db, key)
    aux = Aux.unpack(record.aux)
    if aux.state is not Protection.DEFERRED:
        raise ProtocolError("double-add attack needs a deferred record")
    vid = 0
    # The attacker controls the host, so it keeps its own mirrors and
    # prediction audit consistent with the injection (§5.3: verifier
    # clocks are predictable by anyone seeing the command stream).
    db._make_room(vid, 1, {bk})
    mirror = db.mirrors[vid]
    mirror.observe_add(aux.timestamp)
    ts_new = mirror.predict_evict()
    db.logs[vid].append("add_deferred", bk, record.value, aux.timestamp,
                        aux.epoch)
    db.logs[vid].append("evict_deferred", bk)
    db._expected_evicts[vid].append((ts_new, db.current_epoch))
    # The extra (add, evict) pair leaves the epoch's sets unbalanced:
    # one surplus read entry and one surplus write entry with a *different*
    # timestamp, plus the original write entry now double-consumed.
    return "record double-added through the verifier log"


def forge_receipt_payload(receipt) -> None:
    """Flip a receipt's payload in transit (client-side MAC must catch)."""
    receipt.payload = b"__forged__"


# ----------------------------------------------------------------------
# Receipt-channel attacks: the adversary owns the host→client wire.
# These install a FaultPlan on ``db.receipt_channel`` and return a
# description; the guarantee under test is that none of them can settle a
# wrong answer — drops only degrade availability (the op never settles),
# duplicates and reorders are absorbed by idempotent, order-insensitive
# acceptance.
# ----------------------------------------------------------------------

def drop_receipts(db: FastVer, client) -> str:
    """Swallow every receipt in transit: ops never settle, never lie."""
    from repro.faults import FaultPlan
    db.receipt_channel.faults = FaultPlan(seed=0, specs={"receipt.drop": 1.0})
    return "all receipts dropped in transit"


def duplicate_receipts(db: FastVer, client) -> str:
    """Deliver every receipt twice (replay by the transport)."""
    from repro.faults import FaultPlan
    db.receipt_channel.faults = FaultPlan(
        seed=0, specs={"receipt.duplicate": 1.0})
    return "all receipts duplicated in transit"


def reorder_receipts(db: FastVer, client) -> str:
    """Withhold receipts and deliver them late, in reversed order."""
    from repro.faults import FaultPlan
    db.receipt_channel.faults = FaultPlan(
        seed=0, specs={"receipt.reorder": 1.0})
    return "all receipts delivered late and reversed"


#: Attacks runnable generically over a warm (deferred) target key.
WARM_ATTACKS = {
    "tamper_value": tamper_value,
    "tamper_timestamp": tamper_timestamp,
    "cross_mode_confusion": cross_mode_confusion,
    "skip_migration": skip_migration,
    "duplicate_read_entry": duplicate_read_entry,
}

#: Attacks over a cold (merkle) target key.
COLD_ATTACKS = {
    "tamper_value": tamper_value,
    "corrupt_merkle_pointer": corrupt_merkle_pointer,
}

#: Attacks on the untrusted receipt transport, ``attack(db, client) -> str``.
RECEIPT_ATTACKS = {
    "drop_receipts": drop_receipts,
    "duplicate_receipts": duplicate_receipts,
    "reorder_receipts": reorder_receipts,
}

"""The distributed red-team engine: active, stateful byzantine attacks.

Where :mod:`repro.faults.chaos` models an *accident-prone* host (random
drops, reboots, torn writes), this module models a *malicious* one. Each
attack here is a choreographed campaign against the distributed surface
grown around the verifier — checkpoints, log shipping, failover, group
commit, and the idempotency table — exploiting exactly the levers a real
byzantine host holds: it runs the scheduler, it carries every message,
and it owns every byte outside the enclave.

The attacks (the ``REDTEAM_ATTACKS`` registry):

* ``rollback_fork`` — restart the host from a stale-but-genuine
  checkpoint (a forked timeline with a replayed log prefix) and try to
  keep serving. Caught by the enclave's sealed anti-rollback slot.
* ``receipt_replay`` — capture genuine epoch receipts and replay them
  later: pre-fence receipts after a failover (caught by the client's
  epoch fence), or already-accepted receipts to re-settle a forked
  timeline (caught by the client's (epoch, chain) dedup).
* ``split_brain`` — skip the deposed primary's teardown at promotion and
  keep it answering under its old generation alongside the new leader.
  Caught by the SDK's generation-monotonicity check.
* ``double_lease`` — the lease-layer variant of split-brain: the deposed
  primary's host courts a group member for a lease grant at the old
  generation, then forges the grant tag outright. Caught by the member
  enclave's pinned generation floor (the promoted leader re-acquired the
  lease at the new generation) and by the channel MAC on the grant.
* ``stale_replica_replay`` — a byzantine replica answers a budgeted
  stale read with a genuine-but-superseded value while claiming it is
  fresh. Caught by the SDK vetting stale answers against its own settled
  receipt history.
* ``shipping_fork`` — feed the standby a divergent-but-internally-
  consistent log suffix sealed with a *valid* channel MAC (the host can
  invoke ``repl_sign``). Caught by the standby enclave re-validating
  every entry: the replayed put trips its anti-replay window.
* ``dedup_tamper`` — rewrite a recorded answer in the idempotency table
  between the response-wire loss and the client's dedup query. Caught by
  the SDK cross-checking the dedup answer against the verifier-signed op
  receipt the client already holds.
* ``batch_tamper`` — mutate a staged operation between admission and
  flush (group commit) or just before apply (legacy path). Caught by the
  enclave's client-MAC validation.
* ``scrub_evasion`` — rot a device page but serve the background
  scrubber pristine bytes (keying on its access-pattern hint), so the
  scrub pass comes back clean. Caught by the enclave's cold-path hash
  check on first client touch: the scrubber is an early-warning mirror,
  never the trust anchor.
* ``settle_swap`` — in the pipelined topology, swap two in-flight
  streamed receipts between flush and settle so each ticket resolves
  with the other op's genuine result. Caught by the SDK binding every
  result to its request's nonce.

Every campaign yields a typed :class:`AttackVerdict` — detected or
escaped, which detector fired, and the detection latency in simulated
ticks — and leaves an ``attack``/``detect`` event pair in the
:mod:`repro.obs` ring so the forensic story is reconstructable from the
trace alone. ``run_redteam`` drives the full attack × topology matrix;
the zero-escape gate (tests + the CI ``redteam-smoke`` job) requires
every cell to come back detected.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.backoff import BackoffPolicy
from repro.client import RetryingClient
from repro.core.fastver import FastVer, FastVerConfig
from repro.core.protocol import Client
from repro.crypto.mac import MacKey
from repro.errors import (
    IntegrityError,
    ReceiptBindingError,
    ReplayError,
    RollbackError,
    SignatureError,
    SplitBrainError,
    StaleReplayError,
)
from repro.faults.plan import FaultPlan
from repro.obs import TRACER
from repro.obs import reset as obs_reset
from repro.replication.shipper import body_digest, encode_body
from repro.server import FastVerServer, ServerConfig


@dataclass
class AttackVerdict:
    """The outcome of one attack campaign in one topology."""

    attack: str
    topology: str
    seed: int
    detected: bool
    #: Which check fired: ``sealed_slot``, ``client_fence``,
    #: ``client_chain``, ``sdk_generation``, ``lease_generation``,
    #: ``sdk_stale_replay``, ``standby_revalidation``,
    #: ``sdk_receipt_binding``, ``client_mac``, ``enclave_merkle`` — or
    #: "" on an escape.
    detector: str
    #: Simulated ticks between injection and detection (0 in direct mode,
    #: whose ops are instantaneous).
    latency_ticks: float
    #: Human-readable evidence summary.
    note: str
    #: Trace id of this campaign's span in the repro.obs ring.
    trace: str

    @property
    def escaped(self) -> bool:
        return not self.detected

    def as_dict(self) -> dict:
        return {
            "attack": self.attack,
            "topology": self.topology,
            "seed": self.seed,
            "detected": self.detected,
            "detector": self.detector,
            "latency_ticks": self.latency_ticks,
            "note": self.note,
            "trace": self.trace,
        }


@dataclass
class RedTeamReport:
    """Aggregated verdicts for one seeded red-team run."""

    seed: int
    verdicts: list[AttackVerdict] = field(default_factory=list)
    #: Ring-buffer forensics, captured when any campaign escapes (same
    #: shape the chaos harness emits, so CI tooling is shared).
    forensics: dict | None = None

    @property
    def escapes(self) -> int:
        return sum(1 for v in self.verdicts if v.escaped)

    @property
    def ok(self) -> bool:
        return self.escapes == 0

    def digest(self) -> str:
        """Stable digest of the verdict matrix (reproducibility check)."""
        h = hashlib.sha256()
        for v in self.verdicts:
            h.update(repr((v.attack, v.topology, v.seed, v.detected,
                           v.detector, round(v.latency_ticks, 6))).encode())
        return h.hexdigest()

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "verdicts": [v.as_dict() for v in self.verdicts],
            "escapes": self.escapes,
            "ok": self.ok,
            "digest": self.digest(),
        }


# ======================================================================
# Per-campaign context
# ======================================================================
class _Campaign:
    """One fresh system under attack: a small loaded FastVer, optionally
    fronted by the serving pipeline, standby replication, and the
    retrying SDK — mirroring the chaos harness's provisioning so the
    attacks run against exactly the stack the soaks exercise."""

    RECORDS = 48

    def __init__(self, seed: int, topology: str):
        self.seed = seed
        self.topology = topology
        items = [(k, b"seed-%d" % k) for k in range(self.RECORDS)]
        db = FastVer(
            FastVerConfig(key_width=16, n_workers=2, partition_depth=3,
                          cache_capacity=64),
            items=items,
        )
        self.client = Client(1, MacKey.generate(f"redteam-{seed}"))
        db.register_client(self.client)
        db.verify()
        db.checkpoint()
        self.server: FastVerServer | None = None
        self.sdk: RetryingClient | None = None
        self._db = db
        if topology == "direct":
            return
        if topology in ("batched", "pipelined"):
            cfg = ServerConfig(group_commit=True, max_batch_ops=4,
                               max_batch_ticks=16.0,
                               pipeline=(topology == "pipelined"))
        else:
            cfg = ServerConfig()
        self.server = FastVerServer(db, cfg, warm=items)
        # Every served topology runs with a warm standby attached: the
        # split-brain and shipping-fork campaigns need one, and a real
        # deployment of the failover stack always has one.
        self.server.attach_standby()
        self.sdk = RetryingClient(
            self.server, self.client,
            policy=BackoffPolicy(max_attempts=5, base_delay=2.0,
                                 max_delay=16.0, seed=seed))
        if topology == "failover":
            # Attacks in this topology run *post-promotion*: a failover
            # already happened, the client adopted its fence, and
            # auto_reattach has bootstrapped a fresh standby.
            self.sdk.put(0, b"pre-failover")
            self.server.maintain()
            self.server.replication.promote()
            self.sdk.get(0)  # follow the redirect, adopt the fence

    @property
    def db(self) -> FastVer:
        return self.server.db if self.server is not None else self._db

    @property
    def now(self) -> float:
        return self.server.now if self.server is not None else 0.0

    # -- plumbing shared by several campaigns ---------------------------
    def op(self, key: int, payload: bytes | None = None):
        """One honest operation through whatever stack the topology has."""
        if self.server is None:
            if payload is None:
                return self._db.get(self.client, key)
            return self._db.put(self.client, key, payload)
        if payload is None:
            return self.sdk.get(key)
        return self.sdk.put(key, payload)

    def close_epoch(self) -> None:
        """Honest epoch close + checkpoint (maintain(), or its direct-mode
        equivalent)."""
        if self.server is None:
            self._db.verify()
            self._db.flush()
            self._db.checkpoint()
        else:
            self.server.maintain()

    def sync_standby(self) -> None:
        """Pump the shipping channel until the standby fully caught up."""
        mgr = self.server.replication
        for _ in range(16):
            mgr.pump()
            if not mgr.shipper.outbox and not mgr.shipper.unacked:
                return
        raise RuntimeError("standby failed to catch up (harness bug)")


# ======================================================================
# The attacks. Each takes a fresh campaign and returns
# (detected, detector, note); an uncaught exception is a harness bug and
# is surfaced as an escape by the scheduler (failing loud beats failing
# silent in a zero-escape gate).
# ======================================================================
def attack_rollback_fork(c: _Campaign):
    """Fork the timeline: keep serving from a stale checkpoint whose log
    prefix the host replays. The enclave's sealed slot moved on with the
    later checkpoint, so restoring the stale blob must be refused."""
    c.op(5, b"fork-base")
    c.close_epoch()
    stale = c.db.last_checkpoint
    # The honest timeline continues: more writes, another sealed advance.
    c.op(5, b"fork-tip")
    c.op(6, b"fork-tip-2")
    c.close_epoch()
    settled_before = c.client.settled_epoch
    try:
        c.db.recover(stale)
    except RollbackError as exc:
        return True, "sealed_slot", f"restore refused: {exc}"
    # The fork took: the host is now serving the stale timeline.
    return False, "", (
        "stale checkpoint restored without a rollback alarm "
        f"(settled epoch {settled_before})")


def attack_receipt_replay(c: _Campaign):
    """Capture genuine epoch receipts, then replay them. Across a
    failover the replays are pre-fence (client_fence drops them); on a
    stable leader they are exact duplicates (client_chain dedups them).
    Either way nothing may (re-)settle."""
    captured = []
    original = c.client.accept_epoch

    def spy(receipt):
        captured.append(replace(receipt))
        original(receipt)

    c.client.accept_epoch = spy
    try:
        c.op(7, b"replay-bait")
        c.close_epoch()
        c.op(8, b"replay-bait-2")
        c.close_epoch()
    finally:
        c.client.accept_epoch = original
    if not captured:
        return False, "", "harness bug: no epoch receipts captured"
    if c.topology == "failover":
        # Promote again: the captured receipts become pre-fence.
        c.sync_standby()
        c.server.replication.promote()
        c.sdk.get(7)  # adopt the new fence
        expected_counter = "fenced_receipts"
        detector = "client_fence"
    else:
        expected_counter = "replayed_epoch_receipts"
        detector = "client_chain"
    settled_before = c.client.settled_epoch
    before = getattr(c.client, expected_counter)
    for receipt in captured:
        c.client.accept_epoch(receipt)
    rejected = getattr(c.client, expected_counter) - before
    if rejected == len(captured) and \
            c.client.settled_epoch == settled_before:
        return True, detector, (
            f"{rejected}/{len(captured)} replayed receipts dropped; "
            f"settled epoch pinned at {settled_before}")
    return False, "", (
        f"only {rejected}/{len(captured)} replays rejected; settled "
        f"epoch moved {settled_before} -> {c.client.settled_epoch}")


def attack_split_brain(c: _Campaign):
    """Double-serving: the byzantine host skips the deposed primary's
    teardown at promotion and keeps it answering under the old
    generation. The SDK must refuse to walk back to it."""
    old_db = c.server.db
    # The host runs the teardown choreography — so it can simply not.
    old_db.enclave.teardown = lambda: None
    c.sync_standby()
    c.server.replication.promote()
    c.sdk.get(1)  # honest client observes the failover, adopts the fence
    assert old_db.enclave.probe()["alive"], "harness bug: primary died"
    # The rogue host now fronts the live deposed enclave with its own
    # serving loop, still announcing the old (pre-promotion) generation,
    # and hijacks the client's connection.
    rogue = FastVerServer(old_db, ServerConfig())
    real = c.sdk.server
    c.sdk.server = rogue
    try:
        result = c.sdk.get(2)
    except SplitBrainError as exc:
        return True, "sdk_generation", f"rogue leader refused: {exc}"
    finally:
        c.sdk.server = real
    return False, "", (
        f"deposed primary answered get(2) -> {result.payload!r} under a "
        f"regressed generation")


def attack_shipping_fork(c: _Campaign):
    """Feed the standby a divergent-but-internally-consistent log
    suffix. The channel framing is *valid* — the host can call
    ``repl_sign`` — so the channel checks pass; the standby enclave's
    per-entry re-validation is the wall: the replayed put's nonce trips
    its anti-replay window."""
    mgr = c.server.replication
    # A genuine, shipped, acknowledged put whose request the host kept.
    genuine = c.client.make_put(c.server.bitkey(9), b"genuine")
    from repro.server.pipeline import ServerRequest
    request = ServerRequest(
        "put", genuine, c.server.now + c.server.config.default_deadline,
        worker=genuine.key.bits, generation=c.sdk.generation)
    c.server.handle(request)
    c.close_epoch()
    c.sync_standby()
    # Forge the fork: a fresh shipment whose body replays the applied
    # put, signed with a *legitimately minted* channel MAC.
    entries = [("put", genuine)]
    body = encode_body(entries)
    seq, chain = mgr.shipper.next_seq, mgr.shipper._chain
    tag = mgr._sign(seq, chain, body_digest(body))
    try:
        admitted = mgr.standby.admit(seq, chain, body, tag, entries)
    except (ReplayError, SignatureError) as exc:
        return True, "standby_revalidation", f"forged suffix refused: {exc}"
    if not admitted:
        return False, "", ("standby rejected the shipment at the channel "
                           "layer only (availability, not detection)")
    # The poisoned entry sits in the standby's log buffer (per-op checks
    # are deferred into the batched ecall, §7). The fork only matters if
    # the replica can ever be *promoted* — and promotion closes epochs,
    # which flushes the buffer through the standby enclave's validation.
    try:
        mgr.promote()
    except (ReplayError, SignatureError) as exc:
        return True, "standby_revalidation", (
            f"forked standby refused at promotion: {exc}")
    return False, "", ("standby with a forked log suffix was promoted "
                       "and can now serve")


def attack_double_lease(c: _Campaign):
    """Split-brain through the lease layer: the byzantine host skips the
    deposed primary's teardown at promotion and then tries to keep its
    leadership lease alive — first by courting a group member for a grant
    at the deposed generation, then by forging the grant tag outright.
    The member enclaves pinned the new generation when the promoted
    leader re-acquired its lease, so the regressed request must be
    refused; the forged tag cannot carry the channel MAC."""
    mgr = c.server.replication
    old_db = c.server.db
    old_generation = c.server.generation
    # The host runs the teardown choreography — so it can simply not.
    old_db.enclave.teardown = lambda: None
    c.sync_standby()
    mgr.promote()
    c.sdk.get(1)  # honest client observes the failover, adopts the fence
    assert old_db.enclave.probe()["alive"], "harness bug: primary died"
    member = mgr.standby
    if member is None:
        return False, "", "harness bug: no group member after promotion"
    horizon = c.server.now + 10_000.0
    # Prong 1: court a member for a lease grant at the deposed
    # generation (the request travels through the host, so the host can
    # just send it).
    try:
        member.grant_lease(old_generation, horizon)
        return False, "", (
            f"member co-signed a lease at deposed generation "
            f"{old_generation}; both leaders can now hold a lease")
    except SplitBrainError as exc:
        evidence = f"regressed-generation grant refused: {exc}"
    # Prong 2: no member will sign, so the host forges the grant tag and
    # feeds it to the deposed enclave's verify path.
    forged = bytes(16)
    try:
        old_db._ecall("repl_verify_lease", old_generation, horizon, forged)
        return False, "", (
            "deposed enclave accepted a forged lease grant; it would "
            "serve past expiry")
    except SignatureError as exc:
        return True, "lease_generation", (
            f"{evidence}; forged grant tag refused: {exc}")


def attack_stale_replica_replay(c: _Campaign):
    """A byzantine replica host answers a budgeted stale read with a
    *superseded* value while claiming it is fresh: the payload is
    genuine (it really was committed once), the staleness it reports is
    within the client's budget, and no MAC is broken — only the
    freshness claim is a lie. The SDK's stale-read vetting holds the
    answer against the client's own receipt history: a settled
    overwrite older than the claimed as-of epoch cannot reappear."""
    mgr = c.server.replication
    superseded = b"v1-superseded"
    c.op(14, superseded)
    c.close_epoch()
    c.op(14, b"v2-current")
    c.close_epoch()
    c.sync_standby()
    fresh_epoch = c.server.db.current_epoch

    # The replica host owns the read path; it serves the old value under
    # a fresh-looking verification claim.
    mgr.replica_read = lambda key_bits: (superseded, fresh_epoch, 0)
    try:
        result = c.sdk.get_stale(14, budget_epochs=2)
    except StaleReplayError as exc:
        return True, "sdk_stale_replay", f"superseded replay refused: {exc}"
    return False, "", (
        f"client accepted the superseded value {result.payload!r} as "
        f"fresh-as-of epoch {result.as_of_epoch}")


def attack_dedup_tamper(c: _Campaign):
    """Rewrite the idempotency table between admission and the client's
    dedup query: lose the response on the wire, then answer the retry
    with a doctored recorded result. The client holds the verifier's op
    receipt for that nonce, so the lie cannot bind."""
    server = c.server
    # The host drops exactly the first response off the wire...
    server.faults = FaultPlan(c.seed, {"server.wire.response": [0]})
    original_query = server.query

    def evil_query(client_id, nonce):
        # ...delivers the verifier's receipts faithfully (it wants the
        # client happy), then rewrites the recorded answer.
        server.db.flush()
        hit = server.completed.get((client_id, nonce))
        if hit is not None:
            hit.result = replace(hit.result, payload=b"doctored")
        return original_query(client_id, nonce)

    server.query = evil_query
    try:
        result = c.sdk.put(11, b"the-truth")
    except ReceiptBindingError as exc:
        return True, "sdk_receipt_binding", f"doctored dedup refused: {exc}"
    finally:
        server.query = original_query
        server.faults = None
    return False, "", (
        f"client accepted a rewritten recorded answer {result.payload!r}")


def attack_batch_tamper(c: _Campaign):
    """Mutate a staged operation between admission and flush (group
    commit) or just before apply (legacy path). The client's MAC binds
    (key, value, nonce), so the doctored payload cannot validate."""
    server = c.server
    if server.config.group_commit:
        original = server._flush_shard

        def evil_flush(shard):
            for ticket in server._shard_batches.get(shard, []):
                if ticket.request.kind == "put":
                    ticket.request.op.payload = b"doctored"
            return original(shard)

        server._flush_shard = evil_flush
        restore = lambda: setattr(server, "_flush_shard", original)
    else:
        original = server._apply

        def evil_apply(request):
            if request.kind == "put":
                request.op.payload = b"doctored"
            return original(request)

        server._apply = evil_apply
        restore = lambda: setattr(server, "_apply", original)
    try:
        result = c.sdk.put(12, b"the-truth")
    except SignatureError as exc:
        return True, "client_mac", f"doctored op refused in-enclave: {exc}"
    finally:
        restore()
    # On the legacy path the validation is deferred into the next batched
    # ecall (§7): the ack above is *provisional* — no op receipt exists
    # yet, so nothing can settle. The epoch close runs the check.
    try:
        c.close_epoch()
    except SignatureError as exc:
        if not c.client.settled(result.nonce):
            return True, "client_mac", (
                f"doctored op refused at flush, before any receipt: {exc}")
        return False, "", (
            f"alarm fired but the tampered op had already settled: {exc}")
    return False, "", (
        f"tampered staged put applied and acknowledged "
        f"({result.payload!r})")


def attack_scrub_evasion(c: _Campaign):
    """Game the background scrubber's access pattern: scrub reads are
    distinguishable from serving reads (the device-level
    ``scrub_reading`` hint the scrubber sets around its walk), so a
    byzantine host serves *pristine* bytes whenever the scrubber looks
    and the rotted page to everyone else. The scrub pass comes back
    clean — the evasion works — but the scrubber was never the trust
    anchor: it is an early-warning mirror of the enclave's cold-path
    hash check, which re-runs the same comparison on first client touch
    and must refuse the rot before anything settles."""
    server = c.server
    server.config.scrub_enabled = True
    c.close_epoch()  # everything device-resident, merkle-at-rest
    db = c.db
    target = t_address = None
    for key, address in sorted(db.store.index.snapshot().items(),
                               key=lambda kv: (kv[0].length, kv[0].bits)):
        if (key.length == db.config.key_width
                and not db.store.log.in_memory(address)
                and key not in db.cached_where
                and key not in db.deferred_index):
            target, t_address = key, address
            break
    if target is None:
        return False, "", "harness bug: no device-resident merkle record"
    device = db.store.log.device
    pristine = device.read(t_address)
    rotted = pristine[:-2] + bytes([pristine[-2] ^ 0x40]) + pristine[-1:]
    device.write(t_address, rotted)
    real_read = device.read

    def two_faced_read(address):
        if address == t_address and getattr(device, "scrub_reading", False):
            return pristine  # the clean face, shown only to the scrubber
        return real_read(address)

    device.read = two_faced_read
    try:
        scrub = server.scrubber()
        target_pass = scrub.full_passes + 1
        for _ in range(4096):
            if scrub.full_passes >= target_pass:
                break
            scrub.pump()
        evaded = (scrub.mismatches_found == 0
                  and not db.store.quarantined_addresses)
        # The serving path reads the rotted bytes; the enclave's hash
        # check must fire before any answer can settle.
        scrub_face = ("scrub pass clean (evasion worked)" if evaded
                      else "scrub alarmed despite the clean face")
        try:
            result = c.sdk.get(target.bits)
        except IntegrityError as exc:
            # Group commit validated the read inside the flush ecall.
            return True, "enclave_merkle", (
                f"{scrub_face}; cold-path hash check refused the rot on "
                f"first touch: {exc}")
        # On the legacy path the answer above is *provisional* — per-op
        # checks are deferred into the next batched ecall (§7), so no op
        # receipt exists yet and nothing can settle. The epoch close
        # runs the deferred add_merkle check.
        try:
            c.close_epoch()
        except IntegrityError as exc:
            if not c.client.settled(result.nonce):
                return True, "enclave_merkle", (
                    f"{scrub_face}; rot refused at epoch close, before "
                    f"any receipt: {exc}")
            return False, "", (
                f"alarm fired but the rotted read had already settled: "
                f"{exc}")
    finally:
        device.read = real_read
    return False, "", (
        f"rotted value {result.payload!r} served and settled while the "
        f"scrubber was shown only pristine bytes")


def attack_settle_swap(c: _Campaign):
    """The streamed-settlement window is new byzantine surface: between
    a pipelined flush and its settle pump, the batch's receipts sit in
    host memory. Swap two of them so each ticket resolves with the
    *other* op's genuine result — every MAC is intact and both results
    really were issued by the verifier; only the pairing lies. The SDK
    binds each result to its request's nonce, so the mis-paired receipt
    cannot validate."""
    server = c.server
    from repro.server.pipeline import ServerRequest
    original = server._settle_inflight
    swapped = []

    def evil_settle(force=False):
        for record in server._inflight:
            resolved = [i for i, (_, res, err) in enumerate(record.entries)
                        if err is None and res is not None]
            if len(resolved) >= 2 and not swapped:
                i, j = resolved[:2]
                ti, ri, ei = record.entries[i]
                tj, rj, ej = record.entries[j]
                record.entries[i] = (ti, rj, ei)
                record.entries[j] = (tj, ri, ej)
                swapped.append((i, j))
        return original(force)

    server._settle_inflight = evil_settle
    # A background op submitted straight to the server lands in the same
    # shard batch as the SDK's op (n_workers=2: even keys share a shard),
    # giving the host two in-flight receipts to mis-pair.
    bait = c.client.make_put(server.bitkey(20), b"bait")
    server.submit(ServerRequest(
        "put", bait, server.now + server.config.default_deadline,
        worker=bait.key.bits, generation=c.sdk.generation))
    try:
        result = c.sdk.put(22, b"the-truth")
    except ReceiptBindingError as exc:
        return True, "sdk_receipt_binding", (
            f"mis-paired streamed receipt refused: {exc}")
    finally:
        server._settle_inflight = original
    if not swapped:
        return False, "", ("harness bug: the two ops never shared an "
                           "in-flight batch, nothing was swapped")
    return False, "", (
        f"client accepted another op's receipt as its own "
        f"({result.payload!r})")


#: name -> attack(campaign) -> (detected, detector, note)
REDTEAM_ATTACKS = {
    "rollback_fork": attack_rollback_fork,
    "receipt_replay": attack_receipt_replay,
    "split_brain": attack_split_brain,
    "double_lease": attack_double_lease,
    "stale_replica_replay": attack_stale_replica_replay,
    "shipping_fork": attack_shipping_fork,
    "dedup_tamper": attack_dedup_tamper,
    "batch_tamper": attack_batch_tamper,
    "scrub_evasion": attack_scrub_evasion,
    "settle_swap": attack_settle_swap,
}

REDTEAM_TOPOLOGIES = ("direct", "server", "batched", "failover",
                      "pipelined")

#: Attack set for the synchronous-settlement topologies: everything but
#: the streamed-settlement campaign (their ``_inflight`` deque is always
#: empty, so there is no window to attack).
_SYNC_ATTACKS = tuple(sorted(a for a in REDTEAM_ATTACKS
                             if a != "settle_swap"))

#: Which attacks make sense per topology. Direct mode has no serving
#: layer, replication, or idempotency table: only the store-level
#: campaigns apply there. The pipelined topology runs the full set —
#: every synchronous-era attack must stay detected under streamed
#: settlement, plus the settlement-window swap that only exists there.
APPLICABLE = {
    "direct": ("receipt_replay", "rollback_fork"),
    "server": _SYNC_ATTACKS,
    "batched": _SYNC_ATTACKS,
    "failover": _SYNC_ATTACKS,
    "pipelined": tuple(sorted(REDTEAM_ATTACKS)),
}


def matrix(topologies=None, attacks=None):
    """The (attack, topology) cells a run will schedule."""
    cells = []
    for topology in (topologies or REDTEAM_TOPOLOGIES):
        if topology not in APPLICABLE:
            raise ValueError(f"unknown red-team topology {topology!r}")
        for attack in APPLICABLE[topology]:
            if attacks is None or attack in attacks:
                cells.append((attack, topology))
    return cells


def run_redteam(seed: int = 7, topologies=None,
                attacks=None) -> RedTeamReport:
    """Drive the full attack × topology matrix; every cell gets a fresh
    system, an ``attack`` trace event at injection, and a ``detect``
    trace event at verdict time."""
    obs_reset()
    # Spool-backed forensics: an escape's dump must cover the whole
    # matrix run, not the ring's tail — a 30-cell sweep records far more
    # than 4096 events, and the cell that escaped may be long evicted.
    from repro.obs.sink import TraceSpool
    TRACER.attach_sink(TraceSpool())
    report = RedTeamReport(seed=seed)
    for attack, topology in matrix(topologies, attacks):
        trace = f"redteam-{attack}-{topology}"
        campaign = _Campaign(seed, topology)
        injected_at = campaign.now
        TRACER.record("attack", injected_at, trace, attack=attack,
                      topology=topology, seed=seed)
        try:
            detected, detector, note = REDTEAM_ATTACKS[attack](campaign)
        except IntegrityError as exc:
            # An alarm the campaign didn't classify still counts: the
            # system detected *something*, and the type names the check.
            detected, detector = True, type(exc).__name__
            note = f"unclassified alarm: {exc}"
        except Exception as exc:  # harness bug -> loud escape
            detected, detector = False, ""
            note = f"attack harness error: {type(exc).__name__}: {exc}"
        latency = max(0.0, campaign.now - injected_at)
        TRACER.record("detect", campaign.now, trace, detector=detector,
                      detected=detected, latency=latency)
        report.verdicts.append(AttackVerdict(
            attack=attack, topology=topology, seed=seed,
            detected=detected, detector=detector, latency_ticks=latency,
            note=note, trace=trace))
    if report.escapes:
        spool = TRACER.sink
        source = spool if spool is not None else TRACER
        report.forensics = {
            "seed": seed,
            "ring_dropped": TRACER.dropped,
            "source": "spool" if spool is not None else "ring",
            "spool": spool.stats() if spool is not None else None,
            "events": [e.as_dict() for e in (
                source.events() if spool is not None
                else TRACER.last(200))],
        }
    return report

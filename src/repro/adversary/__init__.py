"""Byzantine host attack harness (threat model of §2.2).

Two tiers: :mod:`repro.adversary.host` mutates single-node state on the
direct path; :mod:`repro.adversary.redteam` runs distributed campaigns
(rollback/fork, receipt replay, split-brain, shipping fork, dedup and
batch tampering) against the full serving/replication stack."""

from repro.adversary.host import (
    COLD_ATTACKS,
    RECEIPT_ATTACKS,
    WARM_ATTACKS,
    corrupt_merkle_pointer,
    cross_mode_confusion,
    drop_receipts,
    duplicate_read_entry,
    duplicate_receipts,
    forge_receipt_payload,
    reorder_receipts,
    rollback_record,
    skip_migration,
    tamper_timestamp,
    tamper_value,
)
from repro.adversary.redteam import (
    APPLICABLE,
    REDTEAM_ATTACKS,
    REDTEAM_TOPOLOGIES,
    AttackVerdict,
    RedTeamReport,
    run_redteam,
)

__all__ = [
    "APPLICABLE",
    "REDTEAM_ATTACKS",
    "REDTEAM_TOPOLOGIES",
    "AttackVerdict",
    "RedTeamReport",
    "run_redteam",
    "COLD_ATTACKS",
    "RECEIPT_ATTACKS",
    "WARM_ATTACKS",
    "corrupt_merkle_pointer",
    "cross_mode_confusion",
    "drop_receipts",
    "duplicate_read_entry",
    "duplicate_receipts",
    "forge_receipt_payload",
    "reorder_receipts",
    "rollback_record",
    "skip_migration",
    "tamper_timestamp",
    "tamper_value",
]

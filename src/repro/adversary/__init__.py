"""Byzantine host attack harness (threat model of §2.2)."""

from repro.adversary.host import (
    COLD_ATTACKS,
    RECEIPT_ATTACKS,
    WARM_ATTACKS,
    corrupt_merkle_pointer,
    cross_mode_confusion,
    drop_receipts,
    duplicate_read_entry,
    duplicate_receipts,
    forge_receipt_payload,
    reorder_receipts,
    rollback_record,
    skip_migration,
    tamper_timestamp,
    tamper_value,
)

__all__ = [
    "COLD_ATTACKS",
    "RECEIPT_ATTACKS",
    "WARM_ATTACKS",
    "corrupt_merkle_pointer",
    "cross_mode_confusion",
    "drop_receipts",
    "duplicate_read_entry",
    "duplicate_receipts",
    "forge_receipt_payload",
    "reorder_receipts",
    "rollback_record",
    "skip_migration",
    "tamper_timestamp",
    "tamper_value",
]

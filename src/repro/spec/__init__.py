"""Executable specification of the verifier (differential-testing model)."""

from repro.spec.model import SpecVerifier, spec_epoch_balanced

__all__ = ["SpecVerifier", "spec_epoch_balanced"]

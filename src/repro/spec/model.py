"""An executable specification of the verifier state machine.

The paper's distinguishing contribution is a machine-checked proof (in F*,
~20K lines) that the hybrid verifier is correct. We cannot port a proof,
but we can port its *method*: a high-level model that is obviously correct
by construction, against which the optimized implementation is checked on
randomized honest and byzantine traces (differential testing — the
executable analogue of the refinement the proof establishes).

:class:`SpecVerifier` implements the same API as
:class:`~repro.core.verifier.VerifierThread` but with none of the
engineering: it materializes the *full* read and write multisets (real
``Counter`` objects, no hashing), stores cached records in a plain dict,
and re-derives every structural judgment from first principles on each
call. Where the production verifier compares 16-byte set hashes, the spec
compares actual multisets; where production checks one parent pointer, the
spec re-validates the whole claim. Every method returns/raises exactly
like production — the differential tests in
``tests/test_spec_equivalence.py`` drive both with identical call
sequences and demand identical observable behaviour.
"""

from __future__ import annotations

from collections import Counter

from repro.core.epochs import EpochController
from repro.core.keys import BitKey
from repro.core.records import (
    DataValue,
    MerkleValue,
    Pointer,
    Value,
    encode_value,
    entry_fields,
    value_hash,
)
from repro.crypto.hashing import encode_fields
from repro.errors import (
    CacheStateError,
    CapacityError,
    EpochError,
    HashMismatchError,
    ParentNotInCacheError,
    StructuralError,
)


def _entry(key: BitKey, value: Value, ts: int, epoch: int) -> bytes:
    """Canonical multiset element (same identity as production hashes)."""
    return encode_fields(*entry_fields(key, value, ts, epoch))


class SpecVerifier:
    """The obviously-correct reference verifier (one thread)."""

    def __init__(self, verifier_id: int, epochs: EpochController,
                 cache_capacity: int = 512):
        self.verifier_id = verifier_id
        self.epochs = epochs
        self.cache_capacity = cache_capacity
        self.clock = 0
        self.cache: dict[BitKey, Value] = {}
        self.pinned: set[BitKey] = set()
        # Materialized multisets, per epoch.
        self.read_sets: dict[int, Counter] = {}
        self.write_sets: dict[int, Counter] = {}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_free_slot(self) -> None:
        if len(self.cache) >= self.cache_capacity:
            raise CapacityError("spec cache full")

    def _require_absent(self, key: BitKey) -> None:
        if key in self.cache:
            raise CacheStateError(f"spec: duplicate add of {key!r}")

    def _parent_pointer(self, key: BitKey, parent_key: BitKey):
        if parent_key not in self.cache:
            raise ParentNotInCacheError(f"spec: parent {parent_key!r} not cached")
        if not parent_key.is_proper_ancestor_of(key):
            raise StructuralError(f"spec: {parent_key!r} not ancestor of {key!r}")
        parent_value = self.cache[parent_key]
        if not isinstance(parent_value, MerkleValue):
            raise StructuralError(f"spec: parent {parent_key!r} not merkle")
        side = key.direction_from(parent_key)
        return parent_value, side, parent_value.pointer(side)

    # ------------------------------------------------------------------
    # API mirror
    # ------------------------------------------------------------------
    def pin_root(self, root_value: MerkleValue) -> int:
        self._require_absent(BitKey.root())
        self._require_free_slot()
        self.cache[BitKey.root()] = root_value
        self.pinned.add(BitKey.root())
        return 0

    def add_merkle(self, key: BitKey, value: Value, parent_key: BitKey) -> int:
        # Check order mirrors production exactly, so hostile inputs draw
        # the same error class from both implementations.
        self._require_absent(key)
        self._require_free_slot()
        _, _, ptr = self._parent_pointer(key, parent_key)
        if ptr is None or ptr.key != key:
            raise StructuralError("spec: parent does not point at key")
        if value_hash(value) != ptr.hash:
            raise HashMismatchError("spec: hash mismatch")
        self.cache[key] = value
        return 0

    def evict_merkle(self, key: BitKey, parent_key: BitKey) -> None:
        parent_value, side, ptr = self._parent_pointer(key, parent_key)
        if ptr is None or ptr.key != key:
            raise StructuralError("spec: parent does not point at key")
        if key in self.pinned:
            raise CacheStateError("spec: pinned")
        if key not in self.cache:
            raise CacheStateError("spec: not cached")
        value = self.cache.pop(key)
        self.cache[parent_key] = parent_value.with_pointer(
            side, ptr.with_hash(value_hash(value)))

    def add_deferred(self, key: BitKey, value: Value, timestamp: int,
                     epoch: int) -> int:
        self.epochs.check_addable(epoch)
        self._require_absent(key)
        self._require_free_slot()
        self.read_sets.setdefault(epoch, Counter())[
            _entry(key, value, timestamp, epoch)] += 1
        if timestamp > self.clock:
            self.clock = timestamp
        self.cache[key] = value
        return 0

    def evict_deferred(self, key: BitKey) -> tuple[int, int]:
        if key in self.pinned:
            raise CacheStateError("spec: pinned")
        if key not in self.cache:
            raise CacheStateError("spec: not cached")
        value = self.cache.pop(key)
        self.clock += 1
        epoch = self.epochs.stamp()
        self.write_sets.setdefault(epoch, Counter())[
            _entry(key, value, self.clock, epoch)] += 1
        return self.clock, epoch

    def refresh_hash(self, key: BitKey, parent_key: BitKey) -> None:
        parent_value, side, ptr = self._parent_pointer(key, parent_key)
        if ptr is None or ptr.key != key:
            raise StructuralError("spec: parent does not point at key")
        if key not in self.cache:
            raise CacheStateError("spec: not cached")
        self.cache[parent_key] = parent_value.with_pointer(
            side, ptr.with_hash(value_hash(self.cache[key])))

    def insert_extend(self, key: BitKey, value: DataValue,
                      parent_key: BitKey) -> int:
        self._require_absent(key)
        self._require_free_slot()
        parent_value, side, ptr = self._parent_pointer(key, parent_key)
        if ptr is not None:
            raise StructuralError("spec: side not null")
        if not isinstance(value, DataValue):
            raise StructuralError("spec: leaf must be data")
        self.cache[parent_key] = parent_value.with_pointer(
            side, Pointer(key, value_hash(value)))
        self.cache[key] = value
        return 0

    def insert_split(self, key: BitKey, value: DataValue,
                     parent_key: BitKey) -> tuple[BitKey, int, int]:
        self._require_absent(key)
        if len(self.cache) + 2 > self.cache_capacity:
            raise CapacityError("spec cache full")
        parent_value, side, ptr = self._parent_pointer(key, parent_key)
        if ptr is None:
            raise StructuralError("spec: nothing to split")
        other = ptr.key
        if other == key:
            raise StructuralError("spec: key exists")
        mid = key.lca(other)
        self._require_absent(mid)
        if not (mid.is_proper_ancestor_of(key)
                and mid.is_proper_ancestor_of(other)):
            raise StructuralError("spec: must descend")
        if not parent_key.is_proper_ancestor_of(mid):
            raise StructuralError("spec: split escapes parent")
        if not isinstance(value, DataValue):
            raise StructuralError("spec: leaf must be data")
        mid_value = MerkleValue()
        mid_value = mid_value.with_pointer(other.direction_from(mid), ptr)
        mid_value = mid_value.with_pointer(
            key.direction_from(mid), Pointer(key, value_hash(value)))
        self.cache[mid] = mid_value
        self.cache[key] = value
        self.cache[parent_key] = parent_value.with_pointer(
            side, Pointer(mid, value_hash(mid_value)))
        return mid, 0, 0

    def read(self, key: BitKey) -> Value:
        if key not in self.cache:
            raise CacheStateError("spec: not cached")
        return self.cache[key]

    def update(self, key: BitKey, value: Value) -> None:
        if key not in self.cache:
            raise CacheStateError("spec: not cached")
        if isinstance(self.cache[key], MerkleValue) or \
                not isinstance(value, DataValue):
            raise StructuralError("spec: update is data-only")
        self.cache[key] = value

    def check_absent(self, key: BitKey, ancestor_key: BitKey) -> None:
        _, _, ptr = self._parent_pointer(key, ancestor_key)
        if ptr is None:
            return
        if ptr.key == key:
            raise StructuralError("spec: key exists")
        if ptr.key.is_proper_ancestor_of(key):
            raise StructuralError("spec: undecided, descend")

    # ------------------------------------------------------------------
    # Epoch settlement (materialized comparison, no hashing)
    # ------------------------------------------------------------------
    def take_epoch_sets(self, epoch: int) -> tuple[Counter, Counter]:
        return (self.read_sets.pop(epoch, Counter()),
                self.write_sets.pop(epoch, Counter()))


def spec_epoch_balanced(specs: list[SpecVerifier], epoch: int) -> bool:
    """Aggregate materialized multisets across threads and compare —
    the ground truth the production set-hash equality approximates."""
    reads: Counter = Counter()
    writes: Counter = Counter()
    for spec in specs:
        r, w = spec.take_epoch_sets(epoch)
        reads += r
        writes += w
    return reads == writes

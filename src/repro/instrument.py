"""Global instrumentation counters.

The reproduction's performance story rests on *counting real work*: the
actual verifier/store/crypto code paths bump these counters as they execute,
and :mod:`repro.sim.costs` converts counts into simulated time using rates
calibrated to the paper (§8.5). Keeping the counters in one flat object makes
the accounting auditable — every figure's numbers trace back to counts you
can print.

Usage::

    from repro.instrument import COUNTERS
    with COUNTERS.scoped() as snap:
        ... run workload ...
    print(snap.merkle_hashes, snap.multiset_updates)

The default instance is process-global (the library is single-process; the
paper's multi-threading is reproduced by the simulated executor, which gives
each logical worker its own ``Counters``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields


def gauge_max(group: str | None = None) -> int:
    """Declare a gauge-style counter that merges as a running *maximum*
    (a peak observed by any worker is the peak of the merged bag) rather
    than a sum. The merge rule lives in the field's metadata so every
    consumer — ``add``, ``diff``, ``RunMetrics`` assembly — derives it
    from one place and a new gauge can't silently sum."""
    meta = {"merge": "max"}
    if group:
        meta["group"] = group
    return field(default=0, metadata=meta)


def grouped(group: str) -> int:
    """Declare an ordinary summing counter tagged with an export group
    (see :meth:`Counters.group_dict`)."""
    return field(default=0, metadata={"group": group})


@dataclass
class Counters:
    """Flat bag of monotonically increasing work counters."""

    # Crypto work
    merkle_hashes: int = 0          # collision-resistant hash invocations
    merkle_hash_bytes: int = 0      # bytes fed to the Merkle hash
    multiset_updates: int = 0       # multiset-hash element insertions
    multiset_hash_bytes: int = 0    # bytes fed to the multiset PRF
    mac_ops: int = 0                # MAC sign/verify operations

    # Enclave interaction
    enclave_entries: int = 0        # call-gate crossings into the enclave
    log_entries: int = 0            # records serialized to a verification log
    ecall_retries: int = 0          # call-gate crossings retried after EAGAIN

    # Host store work
    store_reads: int = 0            # record lookups in the host store
    store_writes: int = 0           # record installs/updates in the host store
    cas_attempts: int = 0           # optimistic value+aux update attempts
    cas_failures: int = 0           # attempts that lost a race and retried

    # Verifier work
    cache_hits: int = 0             # operation found its record verifier-cached
    cache_misses: int = 0           # record had to be added to a verifier cache
    merkle_adds: int = 0            # cache adds checked via the Merkle parent
    merkle_evicts: int = 0          # evicts that wrote a hash into the parent
    deferred_adds: int = 0          # cache adds checked via read-set bookkeeping
    deferred_evicts: int = 0        # evicts recorded in the write-set
    scan_records: int = 0           # records migrated by verification scans
    epoch_verifications: int = 0    # completed epoch verifications

    # Host-side bookkeeping crypto (untrusted mirror of verifier hashing;
    # runs outside the enclave and in parallel with it)
    host_merkle_hashes: int = 0
    host_merkle_hash_bytes: int = 0

    # Workload
    ops: int = 0                    # client-level key-value operations

    # Serving layer (repro.server / repro.client), one counter per
    # pipeline stage so a dashboard can read the request lifecycle off
    # this bag directly.
    admitted: int = 0               # requests accepted into the pipeline
    shed: int = 0                   # requests rejected at admission (overload)
    deadline_expired: int = 0       # requests that timed out before execution
    retried: int = 0                # client-SDK retry attempts
    broken: int = 0                 # requests rejected by an open breaker
    degraded: int = 0               # ops served/queued in degraded mode
    recovered: int = 0              # successful supervisor recoveries
    wire_drops: int = 0             # request/response messages lost in transit

    # Replication / failover (repro.replication, server supervisor)
    failovers: int = grouped("replication")        # standby promotions completed
    shipped_batches: int = grouped("replication")  # log shipments packaged
    # Peak unshipped+unacked backlog (entries) — a gauge, merged as max.
    replication_lag_max: int = gauge_max("replication")
    recovery_ticks: int = grouped("replication")   # ticks spent in heal sessions
    # Quorum HA (replication group, leases, delta resync, read replicas)
    delta_resyncs: int = grouped("replication")    # standbys rejoined via tail redelivery
    snapshot_resyncs: int = grouped("replication")  # standbys rebuilt from a snapshot
    lease_expiries: int = grouped("replication")   # lease lapses observed at admission
    epoch_markers: int = grouped("replication")    # size/time-triggered epoch closes
    replica_reads: int = grouped("replication")    # verified-stale reads served by replicas
    # Worst staleness (in epoch closes) a served replica read carried.
    replica_staleness_max: int = gauge_max("replication")
    # Deepest retained-tail window the adaptive shipper grew to (entries).
    replication_retain_depth: int = gauge_max("replication")

    # Background scrub & verified repair (repro.scrub)
    scrubbed_pages: int = grouped("scrub")       # device pages re-verified
    scrub_mismatches: int = grouped("scrub")     # pages caught corrupt, quarantined
    scrub_repairs: int = grouped("scrub")        # pages repaired and re-vetted
    repair_failures: int = grouped("scrub")      # repair attempts that died (retried)
    repair_forgeries: int = grouped("scrub")     # forged repair candidates rejected
    scrub_checkpoint_refreshes: int = grouped("scrub")  # rotted retained blobs caught
    repair_ticks: int = grouped("scrub")         # simulated ticks spent in repair
    # Peak quarantine depth observed (pages) — a gauge, merged as max.
    quarantined_pages: int = gauge_max("scrub")

    # Group-commit batching (server/pipeline.py + core/fastver.py)
    batches: int = 0                # apply_batch group commits flushed
    batch_ops_total: int = 0        # client ops carried by those batches
    crossings_saved: int = 0        # ecalls avoided vs. one-crossing-per-op

    # Pipelined settlement & latency-budget controller (server/pipeline.py,
    # server/controller.py)
    settlement_overflow: int = 0    # oldest pending receipt observations dropped
    controller_grows: int = grouped("controller")    # AIMD additive increases
    controller_shrinks: int = grouped("controller")  # AIMD multiplicative decreases
    # Deepest the pipelined receipt stream ever got (in-flight batches).
    inflight_batches_max: int = gauge_max("controller")

    # SLO burn-rate engine (repro.obs.slo, armed via ServerConfig.slo).
    # Bumped by the *server* wiring, never by the obs layer itself, and
    # unpriced by the cost model (observability stays modeled-time free).
    slo_evaluations: int = grouped("slo")    # per-epoch engine evaluations
    slo_alerts: int = grouped("slo")         # objectives that started firing
    slo_proactive_repairs: int = grouped("slo")  # repair pumps run on alert

    @property
    def batch_fill_avg(self) -> float:
        """Mean ops per group-commit batch (derived, so per-worker merges
        and diffs stay exact — an average cannot be summed)."""
        if not self.batches:
            return 0.0
        return self.batch_ops_total / self.batches

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "Counters":
        """An independent copy of the current values."""
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, baseline: "Counters") -> "Counters":
        """Per-field difference ``self - baseline`` (for scoped measurement).

        Gauge fields (``merge: max``) do not subtract — a peak minus a
        baseline peak is meaningless (and can go negative). The diff
        carries the observed value when the gauge moved during the scope
        and 0 when it did not, mirroring the ``add()`` max-merge rule so
        ``scoped()`` round-trips gauges exactly."""
        out = {}
        for f in fields(self):
            mine, base = getattr(self, f.name), getattr(baseline, f.name)
            if f.name in self._MAX_MERGE:
                out[f.name] = mine if mine != base else 0
            else:
                out[f.name] = mine - base
        return Counters(**out)

    def add(self, other: "Counters") -> None:
        """Accumulate another counter bag into this one (per-worker merge)."""
        for f in fields(self):
            if f.name in self._MAX_MERGE:
                setattr(self, f.name,
                        max(getattr(self, f.name), getattr(other, f.name)))
            else:
                setattr(self, f.name,
                        getattr(self, f.name) + getattr(other, f.name))

    @classmethod
    def merge_mode(cls, name: str) -> str:
        """``"max"`` for gauge fields, ``"sum"`` otherwise."""
        return "max" if name in cls._MAX_MERGE else "sum"

    def group_dict(self, group: str) -> dict[str, int]:
        """The fields tagged with an export ``group``, as a dict — the
        single source for grouped exports like ``RunMetrics.replication``."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.metadata.get("group") == group}

    @contextmanager
    def scoped(self):
        """Yield a ``Counters`` that, after the block, holds the block's work."""
        before = self.snapshot()
        delta = Counters()
        try:
            yield delta
        finally:
            current = self.snapshot().diff(before)
            delta.add(current)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"Counters({nonzero})"


#: Fields that merge as a running maximum, not a sum — derived from the
#: field metadata (:func:`gauge_max`), never hand-maintained.
Counters._MAX_MERGE = frozenset(
    f.name for f in fields(Counters) if f.metadata.get("merge") == "max")


#: Process-global default counter bag.
COUNTERS = Counters()

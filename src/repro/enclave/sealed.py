"""Sealed persistent verifier state and anti-rollback protection (§2.2, §7).

The threat model lets the adversary reboot the enclave, resetting the
verifier to its initial state, and also destroy or replay old checkpoints.
The paper defends with "a small amount of persistent state to hold a single
hash value" (implementable with a TPM monotonic counter or Memoir).

:class:`SealedSlot` models that facility: a tamper-proof cell holding a
(version, hash) pair that only the enclave can advance. On restore, the
verifier compares the checkpoint it is given against the sealed hash; an
old (rolled-back) checkpoint fails the comparison.
"""

from __future__ import annotations

from repro.crypto.hashing import hash_fields
from repro.errors import RollbackError


class SealedSlot:
    """A monotonic, tamper-proof (version, hash) cell outside the enclave.

    The adversary can *read* it (it holds no secrets) but cannot write it;
    only :meth:`advance` — called from inside the enclave — mutates it.
    """

    __slots__ = ("version", "state_hash")

    def __init__(self):
        self.version = 0
        self.state_hash = b"\x00" * 32

    def advance(self, state_hash: bytes) -> int:
        """Record a new sealed state hash; returns the new version."""
        self.version += 1
        self.state_hash = state_hash
        return self.version

    def check(self, version: int, state_hash: bytes) -> None:
        """Validate a checkpoint the host claims is the latest.

        Raises :class:`RollbackError` unless (version, hash) matches the
        sealed cell exactly — an older checkpoint has an older version, a
        forged one has the wrong hash.
        """
        if version != self.version or state_hash != self.state_hash:
            raise RollbackError(
                f"checkpoint (v{version}) does not match sealed state "
                f"(v{self.version}): rollback or forgery"
            )

    def check_latest(self, state_hash: bytes) -> None:
        """Validate that a blob hash IS the sealed latest (rollback gate)."""
        if state_hash != self.state_hash:
            raise RollbackError(
                f"presented checkpoint is not the sealed latest "
                f"(sealed v{self.version}): rollback or forgery"
            )


def seal_hash(*fields: bytes) -> bytes:
    """Hash a tuple of serialized verifier-state fields for sealing."""
    return hash_fields(*fields)

"""Enclave cost profiles (§8, "Systems Evaluated" and Fig 13b).

The paper evaluates FastVer mostly on *simulated* enclaves — verifier calls
are regular function calls with added delays modelling enclave switching —
and separately on a real SGX machine, observing real-enclave throughput at
~90% of simulated (Fig 13b), attributed to unmodelled memory-access
overheads inside the EPC.

We reproduce both as cost profiles. The numbers feed the simulated-time
executor (:mod:`repro.sim`); they never gate correctness.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnclaveCostProfile:
    """Cost parameters for one enclave technology."""

    name: str
    #: Cost of one call-gate crossing (world switch), in nanoseconds.
    crossing_ns: float
    #: Multiplier applied to all in-enclave compute, modelling EPC memory
    #: overheads (1.0 = none). Fig 13b's ~90% real-vs-simulated throughput
    #: corresponds to ~1.11x compute inside the enclave.
    compute_multiplier: float
    #: Trusted memory available to the verifier, in bytes. Intel Coffee
    #: Lake SGX exposes <200 MB for code+data (§3).
    trusted_memory_bytes: int


#: The paper's simulated enclave: crossings cost ~microseconds, compute
#: runs at native speed, memory modelled as plentiful (512 GB host RAM).
SIMULATED = EnclaveCostProfile(
    name="simulated",
    crossing_ns=8_000.0,
    compute_multiplier=1.0,
    trusted_memory_bytes=8 << 30,
)

#: Intel SGX (Coffee Lake-era, as on the Azure DC8_v2 VM of §8.2).
SGX = EnclaveCostProfile(
    name="sgx",
    crossing_ns=12_000.0,
    compute_multiplier=1.11,
    trusted_memory_bytes=192 << 20,
)

#: No enclave at all — used by the FASTER baseline, where verifier work is
#: absent and the profile only exists so code paths stay uniform.
NONE = EnclaveCostProfile(
    name="none",
    crossing_ns=0.0,
    compute_multiplier=1.0,
    trusted_memory_bytes=1 << 62,
)

PROFILES = {p.name: p for p in (SIMULATED, SGX, NONE)}

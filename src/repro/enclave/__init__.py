"""Simulated Trusted Execution Environment (enclave) substrate.

Provides the trusted location of Figure 1: bounded trusted memory, a call
gate with modelled crossing costs, adversarial reboot, and sealed
anti-rollback state.
"""

from repro.enclave.costmodel import NONE, PROFILES, SGX, SIMULATED, EnclaveCostProfile
from repro.enclave.enclave import SimulatedEnclave
from repro.enclave.sealed import SealedSlot, seal_hash

__all__ = [
    "NONE",
    "PROFILES",
    "SGX",
    "SIMULATED",
    "EnclaveCostProfile",
    "SimulatedEnclave",
    "SealedSlot",
    "seal_hash",
]

"""A simulated Trusted Execution Environment (§1, §2.2).

The enclave is a protected region holding code and data behind a narrow
call gate. We simulate exactly the properties the paper uses:

* **Isolation** — the host reaches the resident program only through
  :meth:`SimulatedEnclave.ecall`; the program object itself is created by a
  factory inside the enclave and never escapes (tests enforce access
  discipline through this API).
* **Bounded trusted memory** — the program reports its memory footprint and
  the enclave refuses to exceed the profile's EPC size (this is what makes
  the trusted-database approach of §3 fail performance goal P1).
* **Crossing costs** — every ecall bumps the ``enclave_entries`` counter;
  the cost model charges the profile's crossing cost, which is why FastVer
  batches verifier calls in a log buffer (§7).
* **Reboot** — the adversary can reset the enclave; the resident program is
  rebuilt from scratch by its factory, keeping only the sealed slot, and
  must detect rollback on restore (§2.2).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.enclave.costmodel import SIMULATED, EnclaveCostProfile
from repro.enclave.sealed import SealedSlot
from repro.errors import (
    CapacityError,
    EnclaveDeadError,
    EnclaveError,
    EnclaveRebootError,
    EnclaveUnavailableError,
)
from repro.instrument import COUNTERS


class SimulatedEnclave:
    """Hosts one trusted program behind a call gate.

    ``program_factory`` builds the resident program; it receives the
    enclave's :class:`SealedSlot` so the program can implement rollback
    protection across reboots.
    """

    def __init__(self, program_factory: Callable[[SealedSlot], Any],
                 profile: EnclaveCostProfile = SIMULATED):
        self.profile = profile
        self.sealed = SealedSlot()
        self._factory = program_factory
        self._program = program_factory(self.sealed)
        self._alive = True
        self.reboots = 0
        self.faults = None

    # ------------------------------------------------------------------
    # Call gate
    # ------------------------------------------------------------------
    def ecall(self, method: str, *args, **kwargs):
        """Cross into the enclave and invoke ``method`` on the program.

        One ecall is one world switch; FastVer amortizes these by batching
        many verifier operations per call (§7), so counters here directly
        expose the batching benefit.
        """
        if not self._alive:
            raise EnclaveDeadError(
                "enclave has been torn down; only failover to a standby "
                "or a full re-provision can restore service")
        if self.faults is not None:
            if self.faults.fire("ecall.reboot"):
                # Surprise power loss: the call never dispatches and the
                # resident program is rebuilt from its factory (volatile
                # state gone, sealed slot intact).
                self.reboot()
                raise EnclaveRebootError(
                    f"enclave rebooted before dispatching {method!r}")
            if self.faults.fire("ecall.transient"):
                raise EnclaveUnavailableError(
                    f"call gate failed transiently for {method!r} (EAGAIN)")
            if method == "apply_batch" and \
                    self.faults.fire("batch.reboot_mid_batch"):
                # Power loss while a group commit executes. However many
                # entries ran, the reboot wipes ALL volatile verifier
                # state, so "mid-batch" and "pre-dispatch" are
                # observationally identical to the host: it reinstates
                # the whole batch and recovers from the sealed checkpoint.
                self.reboot()
                raise EnclaveRebootError(
                    "enclave rebooted while executing a group-commit "
                    "batch; the batch was not settled")
        COUNTERS.enclave_entries += 1
        fn = getattr(self._program, method, None)
        if fn is None or method.startswith("_"):
            raise EnclaveError(f"no such enclave entry point: {method!r}")
        result = fn(*args, **kwargs)
        self._check_memory()
        return result

    def _check_memory(self) -> None:
        usage = getattr(self._program, "trusted_memory_bytes", None)
        if usage is None:
            return
        used = usage() if callable(usage) else usage
        if used > self.profile.trusted_memory_bytes:
            raise CapacityError(
                f"trusted program uses {used} bytes, enclave provides "
                f"{self.profile.trusted_memory_bytes}"
            )

    # ------------------------------------------------------------------
    # Health surface (read by the serving layer's watchdog)
    # ------------------------------------------------------------------
    def probe(self) -> dict:
        """Cheap liveness/readiness probe: no ecall is dispatched, no
        counters move, and no fault point is consulted — a watchdog may
        poll this at any frequency. ``loaded`` is False for a freshly
        rebooted enclave whose program has not had ``restore_state`` run,
        the state in which every integrity-bearing ecall would be refused.
        """
        return {
            "alive": self._alive,
            "loaded": bool(getattr(self._program, "_loaded", True)),
            "reboots": self.reboots,
        }

    # ------------------------------------------------------------------
    # Adversarial surface
    # ------------------------------------------------------------------
    def reboot(self) -> None:
        """Adversary resets the enclave; volatile program state is lost.

        The sealed slot survives — it is the only persistence the threat
        model grants the verifier (§2.2).
        """
        self.reboots += 1
        self._program = self._factory(self.sealed)

    def teardown(self) -> None:
        """Adversary destroys the enclave entirely (availability attack)."""
        self._alive = False

"""YCSB-style workload generation (§8 benchmark substrate)."""

from repro.workloads.distributions import (
    KeyDistribution,
    SequentialKeys,
    UniformKeys,
    ZipfianKeys,
    make_distribution,
)
from repro.workloads.ycsb import (
    OP_GET,
    OP_INSERT,
    OP_PUT,
    OP_SCAN,
    WORKLOADS,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_E,
    WorkloadSpec,
    YcsbGenerator,
    run_workload,
)

__all__ = [
    "KeyDistribution",
    "SequentialKeys",
    "UniformKeys",
    "ZipfianKeys",
    "make_distribution",
    "OP_GET",
    "OP_INSERT",
    "OP_PUT",
    "OP_SCAN",
    "WORKLOADS",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_E",
    "WorkloadSpec",
    "YcsbGenerator",
    "run_workload",
]

"""YCSB workload generation (Cooper et al., SoCC 2010), as used in §8.

The paper benchmarks with 8-byte keys and 8-byte values over databases of
N records (key domain 0..N-1), padding keys to 32 bytes — our ``FastVer``
does the same padding via its configurable key width.

Workload mixes reproduced:

* **YCSB-A** — update-heavy: 50% gets / 50% puts
* **YCSB-B** — read-heavy: 95% gets / 5% puts
* **YCSB-C** — read-only
* **YCSB-E** — scan-heavy: 95% scans (length ~100) / 5% inserts

Operations are generated as plain tuples so the same stream can drive
FastVer, the baselines, and the raw FASTER store identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.distributions import KeyDistribution, make_distribution

#: Operation kinds in a generated stream.
OP_GET = "get"
OP_PUT = "put"
OP_SCAN = "scan"
OP_INSERT = "insert"


@dataclass(frozen=True)
class WorkloadSpec:
    """Mix definition for one YCSB workload."""

    name: str
    get_fraction: float
    put_fraction: float
    scan_fraction: float = 0.0
    insert_fraction: float = 0.0
    scan_length: int = 100

    def __post_init__(self):
        total = (self.get_fraction + self.put_fraction
                 + self.scan_fraction + self.insert_fraction)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"fractions of {self.name} sum to {total}, not 1")


YCSB_A = WorkloadSpec("YCSB-A", get_fraction=0.5, put_fraction=0.5)
YCSB_B = WorkloadSpec("YCSB-B", get_fraction=0.95, put_fraction=0.05)
YCSB_C = WorkloadSpec("YCSB-C", get_fraction=1.0, put_fraction=0.0)
YCSB_E = WorkloadSpec("YCSB-E", get_fraction=0.0, put_fraction=0.0,
                      scan_fraction=0.95, insert_fraction=0.05)

WORKLOADS = {w.name: w for w in (YCSB_A, YCSB_B, YCSB_C, YCSB_E)}

#: One generated operation: (kind, key, payload-or-scanlength).
Operation = tuple[str, int, object]


class YcsbGenerator:
    """Generates an operation stream for one workload over N records.

    ``value_size`` controls put payload sizes (paper: 8 bytes). Inserts
    (YCSB-E) draw fresh keys just past the loaded range, as YCSB does.
    """

    def __init__(self, spec: WorkloadSpec, n_records: int,
                 distribution: str = "zipfian", theta: float = 0.9,
                 value_size: int = 8, seed: int = 0):
        self.spec = spec
        self.n_records = n_records
        self.value_size = value_size
        self._keys: KeyDistribution = make_distribution(
            distribution, n_records, theta=theta, seed=seed)
        self._rng = random.Random(seed ^ 0x5EED)
        self._next_insert = n_records
        self._counter = 0

    def initial_items(self) -> list[tuple[int, bytes]]:
        """The pre-loaded database: keys 0..N-1 with fixed-size values."""
        return [(k, self._value(k)) for k in range(self.n_records)]

    def _value(self, salt: int) -> bytes:
        self._counter += 1
        raw = (salt * 1_000_003 + self._counter).to_bytes(16, "big")
        return raw[-self.value_size:]

    def operations(self, count: int) -> Iterator[Operation]:
        """Yield ``count`` operations according to the mix."""
        spec = self.spec
        for _ in range(count):
            r = self._rng.random()
            if r < spec.get_fraction:
                yield (OP_GET, self._keys.sample(), None)
            elif r < spec.get_fraction + spec.put_fraction:
                key = self._keys.sample()
                yield (OP_PUT, key, self._value(key))
            elif r < (spec.get_fraction + spec.put_fraction
                      + spec.scan_fraction):
                yield (OP_SCAN, self._keys.sample(), spec.scan_length)
            else:
                key = self._next_insert
                self._next_insert += 1
                yield (OP_INSERT, key, self._value(key))

    def key_operations(self, count: int) -> int:
        """Expected per-key operations for ``count`` stream entries (§8.1:
        a scan of length L counts as ~L key operations)."""
        spec = self.spec
        per_entry = (spec.get_fraction + spec.put_fraction
                     + spec.insert_fraction
                     + spec.scan_fraction * spec.scan_length)
        return int(count * per_entry)


def run_workload(db, client, generator: YcsbGenerator, count: int,
                 n_workers: int = 1) -> int:
    """Drive a FastVer-like store with a generated stream; returns the
    number of key-level operations executed. Ops round-robin workers, as
    the paper's identical worker loops do."""
    executed = 0
    for i, (kind, key, arg) in enumerate(generator.operations(count)):
        worker = i % n_workers
        if kind == OP_GET:
            db.get(client, key, worker=worker)
            executed += 1
        elif kind in (OP_PUT, OP_INSERT):
            db.put(client, key, arg, worker=worker)
            executed += 1
        else:  # scan
            executed += len(db.scan(client, key, arg, worker=worker))
    return executed

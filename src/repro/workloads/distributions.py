"""Key-selection distributions for the YCSB-style benchmarks (§8).

The paper uses zipfian selection with θ = 0.9 (the YCSB default) for most
experiments, uniform for others, and a sequential pattern for the M1K(seq)
micro-benchmark of §8.5. The zipfian generator is the standard Gray et al.
rejection-free construction YCSB itself uses, so skew behaviour matches.
"""

from __future__ import annotations

import math
import random
from typing import Iterator


class KeyDistribution:
    """Interface: yields key indices in ``[0, n)``."""

    def sample(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def stream(self, count: int) -> Iterator[int]:
        for _ in range(count):
            yield self.sample()


class UniformKeys(KeyDistribution):
    """Uniform selection over ``[0, n)`` (zipf θ = 0)."""

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise ValueError("need a positive key-space size")
        self.n = n
        self._rng = random.Random(seed)

    def sample(self) -> int:
        return self._rng.randrange(self.n)


class ZipfianKeys(KeyDistribution):
    """Zipfian selection (Gray et al. / YCSB's ZipfianGenerator).

    ``theta`` is YCSB's skew constant; 0.99 would be YCSB stock, the paper
    uses 0.9. Popular items are scattered across the key space via a
    multiplicative hash, as YCSB's scrambled-zipfian does, so hot keys are
    not numerically adjacent.
    """

    def __init__(self, n: int, theta: float = 0.9, seed: int = 0,
                 scramble: bool = True):
        if n < 1:
            raise ValueError("need a positive key-space size")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self.n = n
        self.theta = theta
        self.scramble = scramble
        self._rng = random.Random(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta) if theta > 0 else 1.0
        self._eta = ((1 - (2.0 / n) ** (1 - theta))
                     / (1 - self._zeta2 / self._zetan)) if theta > 0 else 0.0

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler-Maclaurin approximation for large n so
        # construction is O(1)-ish instead of O(n) at 100M+ keys.
        if n <= 100_000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10_001))
        # integral of x^-theta from 10000 to n
        tail = (n ** (1 - theta) - 10_000 ** (1 - theta)) / (1 - theta)
        return head + tail

    def sample(self) -> int:
        if self.theta == 0.0:
            # Uniform needs no rank scatter (and the modular scramble is
            # not a bijection, so it would add spurious collisions).
            return self._rng.randrange(self.n)
        else:
            u = self._rng.random()
            uz = u * self._zetan
            if uz < 1.0:
                rank = 0
            elif uz < 1.0 + 0.5 ** self.theta:
                rank = 1
            else:
                rank = int(self.n * ((self._eta * u - self._eta + 1) ** self._alpha))
                if rank >= self.n:
                    rank = self.n - 1
        if not self.scramble:
            return rank
        # FNV-style scatter, as in YCSB's ScrambledZipfian.
        return (rank * 0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D) % self.n


class SequentialKeys(KeyDistribution):
    """Cycle through the key space in order (the §8.5 sequential workload)."""

    def __init__(self, n: int, start: int = 0):
        if n < 1:
            raise ValueError("need a positive key-space size")
        self.n = n
        self._next = start % n

    def sample(self) -> int:
        key = self._next
        self._next = (self._next + 1) % self.n
        return key


def make_distribution(name: str, n: int, theta: float = 0.9,
                      seed: int = 0) -> KeyDistribution:
    """Factory: ``uniform`` / ``zipfian`` / ``sequential``."""
    if name == "uniform":
        return UniformKeys(n, seed=seed)
    if name == "zipfian":
        return ZipfianKeys(n, theta=theta, seed=seed)
    if name == "sequential":
        return SequentialKeys(n)
    raise ValueError(f"unknown distribution {name!r}")

"""Cost-attribution profiling: counter deltas × the calibrated model.

The evaluation question (§8) is always "where did the time go" —
crossings vs. crypto vs. cache behaviour. :func:`attribute_costs`
decomposes a :class:`~repro.instrument.Counters` bag into the same
six subsystems the paper profiles, using exactly the rates of
:class:`~repro.sim.costs.CostModel`, so the parts sum to
``CostModel.total_ns`` for the same bag (to float rounding):

* **merkle** — collision-resistant hashing inside the verifier
* **multiset** — multiset-PRF updates inside the verifier
* **mac** — MAC sign/verify inside the verifier
* **crossings** — enclave call-gate entries at the profile's rate
* **store** — host store touches, CAS traffic, log serialization
* **host_mirror** — untrusted mirror hashing (charged 0 by default)

The flame report renders the breakdown as proportional bars, the
textual stand-in for a flame graph in a terminal-only harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enclave.costmodel import SIMULATED, EnclaveCostProfile
from repro.instrument import Counters
from repro.sim.costs import DEFAULT_COSTS, CostModel

#: Attribution order (verifier side first, then host side).
SUBSYSTEMS = ("merkle", "multiset", "mac", "crossings", "store",
              "host_mirror")


@dataclass(frozen=True)
class CostAttribution:
    """Per-subsystem modeled time for one counter bag."""

    parts: dict[str, float]          # subsystem -> ns
    model_total_ns: float            # CostModel.total_ns for the same bag

    @property
    def total_ns(self) -> float:
        """Sum of the parts — the attribution's own total."""
        return sum(self.parts.values())

    @property
    def consistent(self) -> bool:
        """True when the parts account for the model's total time."""
        scale = max(abs(self.model_total_ns), 1.0)
        return abs(self.total_ns - self.model_total_ns) <= 1e-6 * scale

    def fractions(self) -> dict[str, float]:
        total = self.total_ns
        if total <= 0:
            return {name: 0.0 for name in self.parts}
        return {name: ns / total for name, ns in self.parts.items()}

    def as_dict(self) -> dict:
        return {
            "parts_ns": {k: round(v, 1) for k, v in self.parts.items()},
            "fractions": {k: round(v, 4)
                          for k, v in self.fractions().items()},
            "total_ns": round(self.total_ns, 1),
            "model_total_ns": round(self.model_total_ns, 1),
            "consistent": self.consistent,
        }

    def flame_report(self, width: int = 40) -> str:
        """Proportional-bar breakdown, widest subsystem first."""
        lines = ["cost attribution (modeled ns)"]
        fracs = self.fractions()
        for name in sorted(self.parts, key=self.parts.get, reverse=True):
            ns, frac = self.parts[name], fracs[name]
            bar = "#" * max(1 if ns > 0 else 0, round(frac * width))
            lines.append(f"  {name:<12} {ns:>14.0f}  {frac:>6.1%}  {bar}")
        lines.append(f"  {'total':<12} {self.total_ns:>14.0f}  "
                     f"(model {self.model_total_ns:.0f}, "
                     f"{'consistent' if self.consistent else 'MISMATCH'})")
        return "\n".join(lines)


def attribute_costs(c: Counters, profile: EnclaveCostProfile = SIMULATED,
                    modeled_db_records: int = 0,
                    costs: CostModel = DEFAULT_COSTS) -> CostAttribution:
    """Decompose a counter bag into per-subsystem modeled time."""
    mult = profile.compute_multiplier
    mem = costs.mem_access_ns(modeled_db_records)
    parts = {
        "merkle": (c.merkle_hashes * costs.merkle_hash_fixed_ns
                   + c.merkle_hash_bytes * costs.merkle_hash_per_byte_ns)
                  * mult,
        "multiset": (c.multiset_updates * costs.multiset_fixed_ns
                     + c.multiset_hash_bytes * costs.multiset_per_byte_ns)
                    * mult,
        "mac": c.mac_ops * costs.mac_ns * mult,
        "crossings": c.enclave_entries * profile.crossing_ns,
        "store": ((c.store_reads + c.store_writes) * mem
                  + c.cas_attempts * costs.cas_ns
                  + c.cas_failures * costs.cas_retry_penalty_ns
                  + c.log_entries * costs.log_entry_ns),
        "host_mirror": (c.host_merkle_hashes * costs.host_hash_fixed_ns
                        + c.host_merkle_hash_bytes
                        * costs.host_hash_per_byte_ns),
    }
    model_total = costs.total_ns(c, profile, modeled_db_records)
    return CostAttribution(parts=parts, model_total_ns=model_total)

"""The measured run behind ``python -m repro metrics``.

Drives a seeded YCSB-A stream through the batched serving pipeline with
a periodic maintain (epoch close + checkpoint) cadence, with the whole
observability layer armed: the admission/batching/ecall histograms fill,
epoch closes settle end-to-end verified latencies, and the run's counter
totals feed both :class:`~repro.sim.metrics.RunMetrics` (throughput /
verification latency, via the op/verify phase split) and the
per-subsystem cost attribution. Deterministic for a given seed.

Imported lazily by the CLI: this module pulls in the server stack, which
``repro.obs`` itself must not (the core imports ``repro.obs``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fastver import FastVer, FastVerConfig
from repro.core.protocol import Client
from repro.crypto.mac import MacKey
from repro.instrument import COUNTERS, Counters
from repro.obs import LATENCIES, TRACER, attribute_costs
from repro.obs import reset as obs_reset
from repro.obs.export import metrics_payload
from repro.obs.sink import TraceSpool
from repro.obs.slo import SloConfig
from repro.server.pipeline import FastVerServer, ServerConfig, ServerRequest
from repro.sim.metrics import MetricsBuilder, RunMetrics
from repro.workloads.ycsb import OP_PUT, WORKLOADS, YcsbGenerator

#: A deadline that never expires (the metrics run measures latency, it
#: does not inject faults).
_FOREVER = float(10 ** 12)


@dataclass
class InstrumentedRun:
    """Everything one measured run produced."""

    metrics: RunMetrics
    counters: Counters
    records: int
    ops: int
    seed: int
    n_workers: int
    batch: int
    maintain_every: int
    #: The run's SLO engine (the metrics run always arms one, so the
    #: export exercises every v2 schema field).
    slo: object = None

    def run_params(self) -> dict:
        return {
            "records": self.records,
            "ops": self.ops,
            "seed": self.seed,
            "n_workers": self.n_workers,
            "batch": self.batch,
            "maintain_every": self.maintain_every,
        }

    def payload(self) -> dict:
        """The canonical metrics export for this run."""
        attribution = attribute_costs(
            self.counters, modeled_db_records=self.records)
        return metrics_payload(self.counters, attribution, LATENCIES,
                               metrics=self.metrics,
                               run=self.run_params(), slo=self.slo)


def run_instrumented(records: int = 400, ops: int = 2000, seed: int = 7,
                     n_workers: int = 4, batch: int = 8,
                     maintain_every: int = 250) -> InstrumentedRun:
    """One measured run: YCSB-A through the batched pipeline, maintain
    every ``maintain_every`` ops (each maintain settles the pending
    verified latencies), counters scoped per phase into a
    :class:`MetricsBuilder`."""
    obs_reset()
    # Full pipeline armed: the metrics export should exercise the spool
    # and SLO fields of the v2 schema, not emit nulls.
    TRACER.attach_sink(TraceSpool())
    items = [(k, b"seed-%d" % k) for k in range(records)]
    db = FastVer(
        FastVerConfig(key_width=32, n_workers=n_workers, partition_depth=3,
                      cache_capacity=256, log_capacity=2048,
                      batch_ops=None),
        items=items)
    client = Client(1, MacKey.generate(f"metrics-{seed}"))
    db.register_client(client)
    db.verify()
    db.checkpoint()
    server = FastVerServer(db, ServerConfig(
        group_commit=True, max_batch_ops=batch,
        max_batch_ticks=float(10 ** 9),
        queue_capacity=max(64, 4 * batch),
        default_deadline=_FOREVER, slo=SloConfig()), warm=items)
    generator = YcsbGenerator(WORKLOADS["YCSB-A"], records,
                              distribution="zipfian", theta=0.9, seed=seed)
    builder = MetricsBuilder(n_workers, records)
    COUNTERS.reset()

    requests = []
    for kind, k, payload in generator.operations(ops):
        bk = server.bitkey(k)
        op = (client.make_put(bk, payload) if kind == OP_PUT
              else client.make_get(bk))
        requests.append(ServerRequest(
            "put" if kind == OP_PUT else "get", op, _FOREVER,
            worker=bk.bits))

    wave = max(1, n_workers * batch)
    phase_start = COUNTERS.snapshot()
    since_maintain = 0
    i = 0
    while i < len(requests):
        chunk = requests[i:i + wave]
        for request in chunk:
            server.submit(request)
        server.pump()
        i += len(chunk)
        since_maintain += len(chunk)
        if since_maintain >= maintain_every or i >= len(requests):
            builder.add_ops(COUNTERS.snapshot().diff(phase_start),
                            since_maintain)
            with COUNTERS.scoped() as verify_scope:
                server.maintain()
            builder.add_verification(verify_scope)
            phase_start = COUNTERS.snapshot()
            since_maintain = 0

    metrics = builder.build()
    metrics.obs = {
        "trace_events": len(TRACER),
        "trace_dropped": TRACER.dropped,
        "spool": TRACER.sink.stats() if TRACER.sink is not None else None,
        "windows": LATENCIES.window_meta(),
        "exemplars": len(LATENCIES.exemplars()),
    }
    return InstrumentedRun(
        metrics=metrics, counters=COUNTERS.snapshot(),
        records=records, ops=ops, seed=seed, n_workers=n_workers,
        batch=batch, maintain_every=maintain_every, slo=server._slo)

"""repro.obs — observability for the verified serving stack.

Three instruments, all in simulated time, all on by default:

* :data:`TRACER` — a bounded ring of typed request-lifecycle events
  (``repro.obs.trace``), keyed by a trace id minted in the client SDK
  and propagated through admission, batching, the ecall gate, receipt
  settlement, replication, and failover redirects.
* :data:`LATENCIES` — named log-bucketed histograms
  (``repro.obs.histogram``): admission wait, batch residency, ecall
  service, end-to-end verified latency.
* :func:`attribute_costs` — per-subsystem cost attribution from counter
  deltas × the calibrated cost model (``repro.obs.profile``).

Two optional stages turn the instruments into a pipeline:

* :class:`TraceSpool` (``repro.obs.sink``) — a persistent, segment-
  rotated JSONL spool the tracer writes through to, so forensics cover
  the whole run instead of the ring's last 4096 events; read it cold
  with :class:`SpoolReader` (``python -m repro obs tail|replay``).
* :class:`SloEngine` (``repro.obs.slo``) — declared objectives with
  multi-window burn-rate alerts, armed per-server via
  ``ServerConfig.slo`` and surfaced in ``health()["slo"]``.

Tracing is designed to be free under the performance methodology:
modeled time derives *only* from ``repro.instrument.COUNTERS``, and the
observability layer never bumps a counter, so modeled throughput with
tracing on equals tracing off (pinned by tests/test_obs.py and the
``tracing_overhead`` section of ``BENCH_batching.json``).

This package must not import server/core modules at top level (the
core imports *us*); ``repro.obs.runner`` — the measured-run driver for
``python -m repro metrics`` — is imported lazily by the CLI.
"""

from repro.obs.histogram import (LATENCIES, Exemplar, LatencyRecorder,
                                 LogHistogram)
from repro.obs.profile import SUBSYSTEMS, CostAttribution, attribute_costs
from repro.obs.sink import SpoolReader, TraceSpool, replay_fidelity
from repro.obs.slo import SloConfig, SloEngine
from repro.obs.trace import TRACER, TraceEvent, Tracer

__all__ = [
    "TRACER", "Tracer", "TraceEvent",
    "LATENCIES", "LatencyRecorder", "LogHistogram", "Exemplar",
    "TraceSpool", "SpoolReader", "replay_fidelity",
    "SloConfig", "SloEngine",
    "attribute_costs", "CostAttribution", "SUBSYSTEMS",
    "set_enabled", "reset",
]


def set_enabled(flag: bool) -> None:
    """Turn the whole observability layer on or off (default: on)."""
    TRACER.enabled = flag
    LATENCIES.enabled = flag


def reset() -> None:
    """Clear recorded events and histograms (not the enabled flags)."""
    TRACER.reset()
    LATENCIES.reset()

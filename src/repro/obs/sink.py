"""Persistent trace spool: append-only, segment-rotated JSONL sink.

The trace ring (``repro.obs.trace.Tracer``) is a bounded cache — great
for live queries, useless for forensics on a long soak, where the 4096
most recent events have long since scrolled past the interesting ones.
The spool fixes that: every event the tracer records is also appended
here (the ring becomes a write-through cache), events accumulate into
fixed-size **segments**, full segments rotate out, and retention —
bounded by segment count and optionally by simulated-time age — decides
how far back the spool reaches. With a ``directory`` configured, each
closed segment is flushed to ``segment-NNNNNN.jsonl`` (one JSON object
per line, the flat ``TraceEvent.as_dict()`` shape), so the spool
survives the process and ``python -m repro obs tail|replay`` can query
it cold via :class:`SpoolReader`.

The replay contract: a reader over the spool reconstructs the same
``find_lifecycle`` spans as the in-memory ring — byte-identical when
the ring has not evicted, a superset (the ring's span is a suffix of
the spool's) once it has. ``tests/test_obs_pipeline.py`` pins both.

Retention and compaction run in *simulated* time (event timestamps),
never wall-clock — the spool is part of the deterministic run, and its
contents for a given seed are bit-for-bit reproducible.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.obs.trace import TraceEvent

#: Keys of the flattened event export that are *not* detail fields.
_CORE_KEYS = ("seq", "ts", "kind", "trace")


def event_to_line(event: TraceEvent) -> str:
    """One spool line: the flat ``as_dict()`` shape, stably serialized."""
    return json.dumps(event.as_dict(), sort_keys=True, default=repr)


def line_to_event(line: str) -> TraceEvent:
    """Inverse of :func:`event_to_line` (detail keys never collide with
    the core keys; the event schema guarantees it)."""
    raw = json.loads(line)
    detail = {k: v for k, v in raw.items() if k not in _CORE_KEYS}
    return TraceEvent(raw["seq"], raw["ts"], raw["kind"], raw["trace"],
                      detail)


class SpanQueries:
    """The ring's query surface, shared by every event source. Concrete
    classes provide :meth:`_all_events` (oldest first)."""

    def _all_events(self) -> list[TraceEvent]:  # pragma: no cover
        raise NotImplementedError

    def events(self, trace: str | None = None, kind: str | None = None,
               last: int | None = None) -> list[TraceEvent]:
        out = [e for e in self._all_events()
               if (trace is None or e.trace == trace)
               and (kind is None or e.kind == kind)]
        if last is not None:
            out = out[-last:]
        return out

    def last(self, n: int) -> list[TraceEvent]:
        return self.events(last=n)

    def lifecycle(self, trace: str) -> list[TraceEvent]:
        return self.events(trace=trace)

    def traces(self) -> list[str]:
        seen: dict[str, None] = {}
        for e in self._all_events():
            if e.trace is not None and e.trace not in seen:
                seen[e.trace] = None
        return list(seen)

    def find_lifecycle(self, kinds: set[str]) -> str | None:
        by_trace: dict[str, set[str]] = {}
        for e in self._all_events():
            if e.trace is None:
                continue
            got = by_trace.setdefault(e.trace, set())
            got.add(e.kind)
            if kinds <= got:
                return e.trace
        return None


@dataclass
class SpoolSegment:
    """One rotation unit: a contiguous run of events."""

    index: int
    events: list[TraceEvent] = field(default_factory=list)
    first_ts: float = 0.0
    last_ts: float = 0.0
    path: str | None = None

    def append(self, event: TraceEvent) -> None:
        if not self.events:
            self.first_ts = event.ts
        self.last_ts = max(self.last_ts, event.ts)
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class TraceSpool(SpanQueries):
    """The write side: an append-only sink the tracer writes through.

    ``segment_events`` sets the rotation size; ``max_segments`` bounds
    how many closed segments retention keeps (oldest compacted first);
    ``retention_ticks``, when set, additionally compacts any segment
    whose newest event is older than the current simulated time by more
    than that many ticks. ``directory`` (optional) persists each closed
    segment as JSONL and deletes compacted ones; :meth:`flush` writes
    the open segment too, so a finished run's spool is complete on disk.
    """

    DEFAULT_SEGMENT_EVENTS = 1024
    DEFAULT_MAX_SEGMENTS = 64

    def __init__(self, directory: str | None = None,
                 segment_events: int = DEFAULT_SEGMENT_EVENTS,
                 max_segments: int = DEFAULT_MAX_SEGMENTS,
                 retention_ticks: float | None = None):
        if segment_events < 1:
            raise ValueError("segment_events must be >= 1")
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.directory = directory
        self.segment_events = segment_events
        self.max_segments = max_segments
        self.retention_ticks = retention_ticks
        self.appended = 0
        self.dropped_events = 0
        self.dropped_segments = 0
        self._next_index = 0
        self._closed: list[SpoolSegment] = []
        self._active = SpoolSegment(self._claim_index())
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            # The spool owns its directory's segment files: a fresh spool
            # over a reused directory must not leave stale segments from
            # an earlier run behind a shorter one.
            for name in os.listdir(directory):
                if name.startswith("segment-") and name.endswith(".jsonl"):
                    os.unlink(os.path.join(directory, name))

    # ------------------------------------------------------------------
    def _claim_index(self) -> int:
        index = self._next_index
        self._next_index += 1
        return index

    def _segment_path(self, segment: SpoolSegment) -> str:
        assert self.directory is not None
        return os.path.join(self.directory,
                            f"segment-{segment.index:06d}.jsonl")

    def _write_segment(self, segment: SpoolSegment) -> None:
        if self.directory is None:
            return
        path = self._segment_path(segment)
        with open(path, "w") as fh:
            for event in segment.events:
                fh.write(event_to_line(event) + "\n")
        segment.path = path

    def _rotate(self) -> None:
        self._write_segment(self._active)
        self._closed.append(self._active)
        self._active = SpoolSegment(self._claim_index())

    def _compact(self, now_ts: float) -> None:
        while len(self._closed) > self.max_segments or (
                self.retention_ticks is not None and self._closed
                and now_ts - self._closed[0].last_ts > self.retention_ticks):
            stale = self._closed.pop(0)
            self.dropped_segments += 1
            self.dropped_events += len(stale)
            if stale.path is not None and os.path.exists(stale.path):
                os.unlink(stale.path)

    # ------------------------------------------------------------------
    def append(self, event: TraceEvent) -> None:
        """Write-through from the tracer: called once per recorded event."""
        self._active.append(event)
        self.appended += 1
        if len(self._active) >= self.segment_events:
            self._rotate()
            self._compact(event.ts)

    def flush(self) -> None:
        """Persist the open (partial) segment too. Idempotent; call at
        the end of a run so the on-disk spool matches the in-memory one."""
        if self.directory is not None and len(self._active):
            self._write_segment(self._active)

    # ------------------------------------------------------------------
    def _all_events(self) -> list[TraceEvent]:
        out: list[TraceEvent] = []
        for segment in self._closed:
            out.extend(segment.events)
        out.extend(self._active.events)
        return out

    def segments(self) -> list[SpoolSegment]:
        return [*self._closed, self._active]

    def __len__(self) -> int:
        return sum(len(s) for s in self._closed) + len(self._active)

    def stats(self) -> dict:
        """Gauge surface for ``health()`` and the metrics exposition."""
        return {
            "directory": self.directory,
            "segment_events": self.segment_events,
            "max_segments": self.max_segments,
            "retention_ticks": self.retention_ticks,
            "appended": self.appended,
            "retained": len(self),
            "segments": len(self._closed) + 1,
            "dropped_events": self.dropped_events,
            "dropped_segments": self.dropped_segments,
        }


class SpoolReader(SpanQueries):
    """The read side: replay a persisted spool directory cold.

    Reads every ``segment-*.jsonl`` in index order and reconstructs
    :class:`TraceEvent` objects; the span queries (``events``,
    ``lifecycle``, ``find_lifecycle``) then behave exactly like the
    in-memory ring's — that equivalence is the replay contract.
    """

    def __init__(self, directory: str):
        if not os.path.isdir(directory):
            raise FileNotFoundError(f"no spool directory at {directory}")
        self.directory = directory
        self._events: list[TraceEvent] = []
        for name in sorted(os.listdir(directory)):
            if not (name.startswith("segment-") and name.endswith(".jsonl")):
                continue
            with open(os.path.join(directory, name)) as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        self._events.append(line_to_event(line))

    def _all_events(self) -> list[TraceEvent]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)


def _spans_by_trace(events) -> dict[str, list[str]]:
    by_trace: dict[str, list[str]] = {}
    for e in events:
        if e.trace is not None:
            by_trace.setdefault(e.trace, []).append(event_to_line(e))
    return by_trace


def replay_fidelity(ring, source) -> bool:
    """The replay contract, checked: for every trace id the in-memory
    ring still holds, the ring's span must be a *suffix* of the spool's
    span (byte-identical on the serialized lines) — identical outright
    when the ring has never evicted. ``source`` is any
    :class:`SpanQueries` (a live spool or a cold reader)."""
    ring_spans = _spans_by_trace(ring.events())
    spool_spans = _spans_by_trace(source.events())
    for trace, ring_lines in ring_spans.items():
        spool_lines = spool_spans.get(trace, [])
        if ring.dropped == 0:
            if ring_lines != spool_lines:
                return False
        elif spool_lines[-len(ring_lines):] != ring_lines:
            return False
    return True

"""SLO burn-rate engine over the windowed latency histograms.

An SLO here is a declared objective with an error budget; the engine
evaluates each objective once per epoch (the pipeline calls
:meth:`SloEngine.observe_epoch` from ``maintain()``) and converts the
interval's badness into a **burn rate**: 1.0 means the run is consuming
its error budget exactly as fast as the objective allows, 10.0 means
ten times too fast. Burn rates feed two sliding windows — a **fast**
window (default 5 epochs) that catches sharp regressions within one
controller reaction time, and a **slow** window (default 50 epochs)
that catches sustained low-grade burn the fast window averages away.
An objective *fires* when a window's mean burn crosses its threshold:

==================== ================================================
objective            burn definition (per epoch)
==================== ================================================
verified_latency_p99 fraction of the interval's verified-latency
                     observations over ``verified_p99_budget``,
                     divided by the 1% the p99 objective allows
shed_rate            sheds / submissions this epoch, divided by
                     ``shed_rate_budget``
settlement_overflow  settlement-window overflow stalls this epoch,
                     divided by ``overflow_budget``
scrub_quarantine     0 while the quarantine is empty; 2.0 while it is
                     growing or holding (not converging), 0.5 while it
                     is draining
==================== ================================================

Alert state transitions (``ok -> fast_burn | slow_burn -> ok``) emit a
``slo`` trace event, land in ``health()["slo"]``, and surface through
the advisory hook: the latency-budget controller treats a firing
``verified_latency_p99`` as a breach (biasing its AIMD shrink path) and
the supervisor runs a proactive repair pump when ``scrub_quarantine``
fires. The engine itself never bumps ``repro.instrument.COUNTERS`` —
the zero-modeled-cost invariant of the obs layer — the *server* wiring
counts evaluations and alerts on its side.

Everything is deterministic: burn is computed from histograms and
counter deltas, never wall-clock, so for a seeded chaos run the alert
sequence is bit-for-bit reproducible and folds into the run digest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.histogram import LATENCIES
from repro.obs.trace import TRACER

#: Alert states (in escalation order).
OK = "ok"
FAST_BURN = "fast_burn"
SLOW_BURN = "slow_burn"


@dataclass(frozen=True)
class SloConfig:
    """Declared objectives and burn-rate windows.

    The defaults suit the metrics/bench scenarios; chaos arms a tighter
    ``verified_p99_budget`` so a seeded stress run demonstrably fires
    (see ``repro.faults.chaos``)."""

    #: p99 verified-latency objective, in ticks: at most 1% of verified
    #: ops per window may settle later than this.
    verified_p99_budget: float = 200.0
    #: Tolerable fraction of submissions shed at admission.
    shed_rate_budget: float = 0.05
    #: Tolerable settlement-window overflow stalls per epoch.
    overflow_budget: float = 1.0
    #: Fast window: epochs of burn averaged for the page-someone alert.
    fast_window: int = 5
    #: Slow window: epochs averaged for the sustained-burn alert.
    slow_window: int = 50
    #: Mean burn over the fast window that fires ``fast_burn``.
    fast_burn_threshold: float = 2.0
    #: Mean burn over the slow window that fires ``slow_burn``.
    slow_burn_threshold: float = 1.0

    def as_dict(self) -> dict:
        return {
            "verified_p99_budget": self.verified_p99_budget,
            "shed_rate_budget": self.shed_rate_budget,
            "overflow_budget": self.overflow_budget,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "fast_burn_threshold": self.fast_burn_threshold,
            "slow_burn_threshold": self.slow_burn_threshold,
        }


class _Objective:
    """One objective's burn history and alert state machine."""

    def __init__(self, name: str, cfg: SloConfig):
        self.name = name
        self.cfg = cfg
        self.burns: deque[float] = deque(maxlen=cfg.slow_window)
        self.state = OK
        self.transitions = 0

    def _mean(self, n: int) -> float:
        if not self.burns:
            return 0.0
        tail = list(self.burns)[-n:]
        return sum(tail) / len(tail)

    @property
    def fast_burn(self) -> float:
        return self._mean(self.cfg.fast_window)

    @property
    def slow_burn(self) -> float:
        return self._mean(self.cfg.slow_window)

    def push(self, burn: float, ts: float) -> bool:
        """Record one epoch's burn; returns True when the alert state
        changed (each transition emits a ``slo`` trace event)."""
        self.burns.append(burn)
        if self.fast_burn >= self.cfg.fast_burn_threshold:
            state = FAST_BURN
        elif (len(self.burns) >= self.cfg.fast_window
                and self.slow_burn >= self.cfg.slow_burn_threshold):
            state = SLOW_BURN
        else:
            state = OK
        if state == self.state:
            return False
        self.state = state
        self.transitions += 1
        TRACER.record("slo", ts, objective=self.name, state=state,
                      fast_burn=round(self.fast_burn, 3),
                      slow_burn=round(self.slow_burn, 3))
        return state != OK

    def snapshot(self) -> dict:
        return {"state": self.state,
                "fast_burn": round(self.fast_burn, 3),
                "slow_burn": round(self.slow_burn, 3),
                "epochs": len(self.burns),
                "transitions": self.transitions}


class SloEngine:
    """Evaluates the declared objectives once per epoch close.

    Owned by a ``VerifiedServer`` when ``ServerConfig.slo`` is set; the
    pipeline calls :meth:`observe_epoch` from ``maintain()`` *before*
    the latency-budget controller runs, so the controller can consume
    the advisory in the same epoch. The engine peeks at the
    verified-latency window (never takes it — the controller owns the
    reset-on-read) and diffs ``repro.instrument.COUNTERS`` snapshots for
    the rate objectives."""

    OBJECTIVES = ("verified_latency_p99", "shed_rate",
                  "settlement_overflow", "scrub_quarantine")

    def __init__(self, cfg: SloConfig):
        self.cfg = cfg
        self.epochs = 0
        self.alerts = 0
        self._objectives = {name: _Objective(name, cfg)
                            for name in self.OBJECTIVES}
        self._prev_submitted = 0
        self._prev_shed = 0
        self._prev_overflow = 0
        self._prev_quarantine = 0

    # ------------------------------------------------------------------
    def _latency_burn(self) -> float:
        """Fraction of the current window's verified-latency
        observations over budget, normalized by the 1% a p99 objective
        tolerates."""
        window = LATENCIES.window("verified_latency")
        if window.count == 0:
            return 0.0
        over = 0
        for idx, n in window.buckets.items():
            # A bucket is fully over budget when even its lower edge is;
            # the bucket holding the budget itself counts as within (the
            # same <=1/SUBBUCKETS tolerance every quantile here has).
            if idx > 0 and window._bucket_upper(idx - 1) \
                    >= self.cfg.verified_p99_budget:
                over += n
        return (over / window.count) / 0.01

    def observe_epoch(self, server) -> int:
        """Evaluate every objective for the epoch that just closed.
        Returns the number of objectives that *newly started firing*
        this epoch (the pipeline bumps ``COUNTERS.slo_alerts`` by it;
        the engine itself counts nothing into the cost model)."""
        from repro.instrument import COUNTERS

        ts = server.now
        self.epochs += 1
        fired = 0

        if self._objectives["verified_latency_p99"].push(
                self._latency_burn(), ts):
            fired += 1

        submitted = COUNTERS.admitted + COUNTERS.shed
        shed_delta = COUNTERS.shed - self._prev_shed
        submitted_delta = submitted - self._prev_submitted
        self._prev_shed, self._prev_submitted = COUNTERS.shed, submitted
        shed_burn = 0.0
        if submitted_delta > 0:
            shed_burn = (shed_delta / submitted_delta) \
                / self.cfg.shed_rate_budget
        if self._objectives["shed_rate"].push(shed_burn, ts):
            fired += 1

        overflow_delta = COUNTERS.settlement_overflow - self._prev_overflow
        self._prev_overflow = COUNTERS.settlement_overflow
        if self._objectives["settlement_overflow"].push(
                overflow_delta / self.cfg.overflow_budget, ts):
            fired += 1

        quarantine = len(getattr(server.db.store,
                                 "quarantined_addresses", ()))
        if quarantine == 0:
            q_burn = 0.0
        elif quarantine >= self._prev_quarantine:
            q_burn = 2.0  # growing or stuck: not converging
        else:
            q_burn = 0.5  # draining: converging, keep watching
        self._prev_quarantine = quarantine
        if self._objectives["scrub_quarantine"].push(q_burn, ts):
            fired += 1

        self.alerts += fired
        return fired

    # ------------------------------------------------------------------
    def firing(self) -> set[str]:
        """Names of objectives currently in a non-ok state — the
        advisory surface the controller and supervisor consult."""
        return {name for name, obj in self._objectives.items()
                if obj.state != OK}

    def advisory(self) -> dict:
        """Compact advisory for consumers and ``health()``."""
        return {"firing": sorted(self.firing()),
                "alerts": self.alerts,
                "epochs": self.epochs}

    def snapshot(self) -> dict:
        """Full export for metrics payloads and ``slo-report``."""
        return {
            "config": self.cfg.as_dict(),
            "epochs": self.epochs,
            "alerts": self.alerts,
            "firing": sorted(self.firing()),
            "objectives": {name: obj.snapshot()
                           for name, obj in self._objectives.items()},
        }

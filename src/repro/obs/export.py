"""Exposition: RunMetrics + histograms + attribution as JSON / Prometheus.

One payload dict (``metrics_payload``) feeds every consumer: the JSON
export, the Prometheus-style text exposition, the human-readable report,
and the CI schema check (``check_payload``) — so the formats cannot
drift apart.

The Prometheus rendering follows the text exposition format: counters as
``repro_counter_total{name=...}``, histograms as cumulative
``_bucket{le=...}`` series with ``_sum``/``_count`` plus quantile
gauges, attribution as ``repro_cost_ns{subsystem=...}``. Values are
simulated units (the ``unit`` label says which); this is exposition
*format* compatibility, not a claim of wall-clock time.
"""

from __future__ import annotations

from repro.instrument import Counters
from repro.obs.histogram import PERCENTILES, LatencyRecorder
from repro.obs.profile import CostAttribution
from repro.obs.trace import TRACER

#: v2 (this PR) adds: trace.capacity + trace.spool (sink stats), the
#: per-histogram ``windows`` metadata, the ``exemplars`` list +
#: ``exemplar_digest``, and the ``slo`` engine snapshot. v1 payloads
#: fail the schema check — regenerate, don't hand-edit.
SCHEMA = "repro.metrics.v2"


def metrics_payload(counters: Counters, attribution: CostAttribution,
                    latencies: LatencyRecorder, metrics=None,
                    run: dict | None = None, slo=None) -> dict:
    """The canonical metrics export. ``metrics`` is a
    :class:`~repro.sim.metrics.RunMetrics` (or None for callers that
    only have counters); ``run`` carries the run's parameters; ``slo``
    is an :class:`~repro.obs.slo.SloEngine` when the run armed one."""
    sink = TRACER.sink
    return {
        "schema": SCHEMA,
        "run": run or {},
        "metrics": metrics.as_dict() if metrics is not None else None,
        "latency": latencies.as_dict(full=True),
        "windows": latencies.window_meta(),
        "exemplars": [ex.as_dict() for ex in latencies.exemplars()],
        "exemplar_digest": latencies.exemplar_digest(),
        "attribution": attribution.as_dict(),
        "counters": counters.as_dict(),
        "trace": {"events": len(TRACER), "dropped": TRACER.dropped,
                  "capacity": TRACER.capacity,
                  "spool": sink.stats() if sink is not None else None},
        "slo": slo.snapshot() if slo is not None else None,
    }


def check_payload(payload: dict) -> list[str]:
    """Schema/consistency problems in a metrics payload (empty = ok).

    This is what the CI metrics-smoke job runs: required keys present,
    attribution parts summing to the model total, quantiles ordered,
    and — when a measured run is attached — a non-empty end-to-end
    verified-latency distribution.
    """
    problems = []
    for key in ("schema", "latency", "attribution", "counters",
                "windows", "exemplars", "exemplar_digest", "trace"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema != {SCHEMA}")
    trace = payload.get("trace") or {}
    for key in ("events", "dropped", "capacity"):
        if key not in trace:
            problems.append(f"trace missing key: {key}")
    for name, meta in (payload.get("windows") or {}).items():
        if not {"window_count", "resets"} <= set(meta):
            problems.append(f"window {name}: incomplete metadata")
    for ex in payload.get("exemplars") or []:
        if not {"name", "trace", "value", "at", "kind"} <= set(ex):
            problems.append("exemplar missing fields")
        elif ex["kind"] not in ("outlier", "baseline"):
            problems.append(f"exemplar kind {ex['kind']!r} unknown")
    slo = payload.get("slo")
    if slo is not None:
        for key in ("config", "epochs", "alerts", "firing", "objectives"):
            if key not in slo:
                problems.append(f"slo missing key: {key}")
        for name, obj in (slo.get("objectives") or {}).items():
            if obj.get("state") not in ("ok", "fast_burn", "slow_burn"):
                problems.append(f"slo objective {name}: bad state")
    att = payload.get("attribution") or {}
    if not att.get("consistent", False):
        problems.append("attribution parts do not sum to model total")
    for name, hist in (payload.get("latency") or {}).items():
        quantiles = [hist.get(f"p{str(p).rstrip('0').rstrip('.')}", 0.0)
                     for p in PERCENTILES]
        if any(a > b for a, b in zip(quantiles, quantiles[1:])):
            problems.append(f"histogram {name}: quantiles not monotone")
        if hist.get("count", 0) and not hist.get("buckets"):
            problems.append(f"histogram {name}: counted but no buckets")
    if payload.get("metrics") is not None:
        verified = (payload.get("latency") or {}).get("verified_latency")
        if not verified or verified.get("count", 0) <= 0:
            problems.append("measured run has no verified-latency samples")
        if payload["metrics"].get("key_ops", 0) <= 0:
            problems.append("measured run reports zero key ops")
    return problems


def _quantile_label(p: float) -> str:
    return str(p / 100.0)


def to_prometheus(payload: dict) -> str:
    """Render a metrics payload in the Prometheus text format."""
    lines = []

    def emit(name: str, value, labels: dict | None = None) -> None:
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
            lines.append(f"{name}{{{inner}}} {value}")
        else:
            lines.append(f"{name} {value}")

    lines.append("# HELP repro_counter_total work counters "
                 "(repro.instrument.Counters)")
    lines.append("# TYPE repro_counter_total counter")
    for name, value in sorted(payload.get("counters", {}).items()):
        emit("repro_counter_total", value, {"name": name})

    metrics = payload.get("metrics")
    if metrics:
        lines.append("# HELP repro_run run-level metrics (RunMetrics)")
        lines.append("# TYPE repro_run gauge")
        for key in ("key_ops", "throughput_mops", "verifier_fraction",
                    "verification_latency_s", "total_wall_ns"):
            emit("repro_run", metrics.get(key, 0), {"name": key})
        for name, value in sorted(
                (metrics.get("replication") or {}).items()):
            emit("repro_replication", value, {"name": name})
        for name, value in sorted((metrics.get("scrub") or {}).items()):
            emit("repro_scrub", value, {"name": name})

    att = payload.get("attribution") or {}
    lines.append("# HELP repro_cost_ns per-subsystem modeled time")
    lines.append("# TYPE repro_cost_ns gauge")
    for subsystem, ns in (att.get("parts_ns") or {}).items():
        emit("repro_cost_ns", ns, {"subsystem": subsystem})
    if att:
        emit("repro_cost_total_ns", att.get("total_ns", 0))

    lines.append("# HELP repro_latency latency distributions "
                 "(simulated units; see unit label)")
    lines.append("# TYPE repro_latency histogram")
    for name, hist in sorted((payload.get("latency") or {}).items()):
        base = {"hist": name, "unit": hist.get("unit", "ticks")}
        for le, cum in hist.get("buckets", []):
            emit("repro_latency_bucket", cum, {**base, "le": le})
        emit("repro_latency_bucket", hist.get("count", 0),
             {**base, "le": "+Inf"})
        emit("repro_latency_sum", hist.get("sum", 0), base)
        emit("repro_latency_count", hist.get("count", 0), base)
        for p in PERCENTILES:
            key = f"p{str(p).rstrip('0').rstrip('.')}"
            emit("repro_latency", hist.get(key, 0),
                 {**base, "quantile": _quantile_label(p)})

    trace = payload.get("trace") or {}
    emit("repro_trace_events", trace.get("events", 0))
    emit("repro_trace_dropped_total", trace.get("dropped", 0))
    emit("repro_trace_capacity", trace.get("capacity", 0))
    spool = trace.get("spool")
    if spool:
        lines.append("# HELP repro_spool persistent trace spool gauges")
        lines.append("# TYPE repro_spool gauge")
        for key in ("appended", "retained", "segments",
                    "dropped_events", "dropped_segments"):
            emit("repro_spool", spool.get(key, 0), {"name": key})

    for name, meta in sorted((payload.get("windows") or {}).items()):
        emit("repro_latency_window_count", meta.get("window_count", 0),
             {"hist": name})
        emit("repro_latency_window_resets", meta.get("resets", 0),
             {"hist": name})

    exemplars = payload.get("exemplars") or []
    emit("repro_exemplars_retained", len(exemplars))
    for ex in exemplars:
        emit("repro_exemplar", ex.get("value", 0),
             {"hist": ex.get("name", ""), "kind": ex.get("kind", ""),
              "trace": ex.get("trace", ""), "at": ex.get("at", 0)})

    slo = payload.get("slo")
    if slo:
        lines.append("# HELP repro_slo_burn SLO burn rates per objective")
        lines.append("# TYPE repro_slo_burn gauge")
        states = {"ok": 0, "slow_burn": 1, "fast_burn": 2}
        for name, obj in sorted((slo.get("objectives") or {}).items()):
            emit("repro_slo_burn", obj.get("fast_burn", 0),
                 {"objective": name, "window": "fast"})
            emit("repro_slo_burn", obj.get("slow_burn", 0),
                 {"objective": name, "window": "slow"})
            emit("repro_slo_state", states.get(obj.get("state"), 0),
                 {"objective": name})
        emit("repro_slo_alerts_total", slo.get("alerts", 0))
    return "\n".join(lines) + "\n"

"""Span-based request tracing in simulated time.

Every request carries a trace id — minted by the client SDK
(``c{client_id}-{seq}``) or, for requests submitted straight to the
server, derived from the idempotency key (``c{client_id}.n{nonce}``;
see ``ServerRequest.auto_trace``). Components along the path record
typed lifecycle events against that id into a bounded ring buffer:
the *span* of a request is simply its event sequence ordered by
``(ts, seq)``, which is enough to reconstruct admit → stage → flush →
fence → retry → receipt across a failover.

Event kinds (the full schema lives in ``docs/OBSERVABILITY.md``):

========== ==========================================================
kind        recorded when
========== ==========================================================
admit       request accepted into the admission queue
shed        rejected at admission (queue full / watchdog shed)
drop        wire fault ate the request or response
dedup       answered from the idempotency table
deadline    deadline expired before completion
degraded    served by degraded mode (cached read / queued write)
stage       staged into a shard's open group-commit batch
flush       the request's shard batch flushed to the verifier
ecall       an enclave crossing settled (batch apply / epoch close)
receipt     per-op result recorded (provisional completion)
settle      pipelined receipt streamed back; the ticket resolved on a
            later pump than the one that dispatched its batch (detail:
            shard, pumps in flight)
epoch       epoch receipt settled; pending verified ops became durable
controller  latency-budget controller evaluated a verified-latency
            window (detail: action=grow|shrink, window p99, budget,
            new batch/linger bounds)
fence       request rejected with ``NotLeaderError`` (stale generation)
redirect    client adopted a fence receipt and re-stamped generation
retry       client (or chaos burst loop) re-submitted after a failure
error       typed failure resolved a ticket (detail carries the type)
ship        replication shipment packaged for the standby
promote     standby promoted; generation bumped
quorum      promotion vote collected (detail: votes, winner, quorum)
lease       leadership lease renewed / expired / gated a request
resync      group member rejoined (detail: mode=delta|snapshot) or was
            detached as a laggard (mode=detach)
replica     verified-stale read served by a standby (detail: as_of
            epoch and staleness distance)
heal        supervisor recovery session concluded (detail: rung)
scrub       scrub pump concluded (detail: pages checked, mismatches,
            cursor) or a retained checkpoint blob was caught rotted
repair      one quarantined page's repair attempt concluded (detail:
            address, key, source, outcome=repaired|failed|forged)
attack      red-team campaign injected (detail: attack, topology, seed)
detect      red-team verdict: which detector fired, detected flag, and
            detection latency in ticks (escapes carry detected=False)
slo         SLO engine alert transition (detail: objective, state=
            ok|fast_burn|slow_burn, fast/slow burn rates; see
            ``repro.obs.slo``)
========== ==========================================================

The ring is bounded (default 4096 events) so tracing can stay on for
arbitrarily long soaks; ``dropped`` counts evictions. All timestamps
are the server's simulated clock.

A persistent sink (``repro.obs.sink.TraceSpool``) can be attached with
:meth:`Tracer.attach_sink`; every recorded event is then written
through to it, turning the bounded ring into a cache over the spool's
retention window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    """One typed lifecycle event. ``trace`` is None for run-scoped
    events (epoch closes, shipments, heals) that belong to no single
    request."""

    seq: int
    ts: float
    kind: str
    trace: str | None
    detail: dict

    def as_dict(self) -> dict:
        return {"seq": self.seq, "ts": self.ts, "kind": self.kind,
                "trace": self.trace, **self.detail}


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    DEFAULT_CAPACITY = 4096

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self.enabled = True
        self.dropped = 0
        self._seq = 0
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        #: Write-through sink (a ``repro.obs.sink.TraceSpool`` or
        #: anything with ``append(event)``); None keeps ring-only mode.
        self._sink = None

    # ------------------------------------------------------------------
    @property
    def sink(self):
        """The attached persistent sink (None when ring-only)."""
        return self._sink

    def attach_sink(self, sink) -> None:
        """Attach a persistent spool; every subsequent event is written
        through to it (the ring becomes a bounded cache over it)."""
        self._sink = sink

    def detach_sink(self):
        """Detach and return the current sink (None if none attached)."""
        sink, self._sink = self._sink, None
        return sink

    # ------------------------------------------------------------------
    def record(self, kind: str, ts: float, trace: str | None = None,
               **detail) -> None:
        if not self.enabled:
            return
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._seq += 1
        event = TraceEvent(self._seq, ts, kind, trace, detail)
        self._ring.append(event)
        if self._sink is not None:
            self._sink.append(event)

    # ------------------------------------------------------------------
    def events(self, trace: str | None = None, kind: str | None = None,
               last: int | None = None) -> list[TraceEvent]:
        """Events currently in the ring, oldest first, optionally
        filtered by trace id and/or kind, optionally only the last N
        (applied after filtering)."""
        out = [e for e in self._ring
               if (trace is None or e.trace == trace)
               and (kind is None or e.kind == kind)]
        if last is not None:
            out = out[-last:]
        return out

    def last(self, n: int) -> list[TraceEvent]:
        return self.events(last=n)

    def lifecycle(self, trace: str) -> list[TraceEvent]:
        """The span of one request: its events in recorded order."""
        return self.events(trace=trace)

    def traces(self) -> list[str]:
        """Distinct trace ids still in the ring, in first-seen order."""
        seen: dict[str, None] = {}
        for e in self._ring:
            if e.trace is not None and e.trace not in seen:
                seen[e.trace] = None
        return list(seen)

    def find_lifecycle(self, kinds: set[str]) -> str | None:
        """First trace id whose events cover every kind in ``kinds`` —
        how the chaos acceptance check locates a request that survived
        a fence redirect end to end."""
        by_trace: dict[str, set[str]] = {}
        for e in self._ring:
            if e.trace is None:
                continue
            got = by_trace.setdefault(e.trace, set())
            got.add(e.kind)
            if kinds <= got:
                return e.trace
        return None

    def reset(self) -> None:
        """Clear the ring (and detach any sink: a reset starts a new
        run, and the run owns its spool's lifecycle)."""
        self._ring.clear()
        self._seq = 0
        self.dropped = 0
        self._sink = None

    def __len__(self) -> int:
        return len(self._ring)


#: Process-global tracer (mirrors ``repro.instrument.COUNTERS``).
TRACER = Tracer()

"""Log-bucketed latency histograms (HDR-style) in simulated time.

The serving stack's latency story (P3: how stale may a provisional
result be before its epoch receipt lands) is a *distribution*, not an
average — the ROADMAP's traffic target makes p99/p99.9 the numbers that
matter. :class:`LogHistogram` records values into logarithmic buckets:
bucket boundaries are ``2^e * (1 + s/SUBBUCKETS)``, i.e. every power of
two is split into ``SUBBUCKETS`` linear sub-buckets, bounding the
relative quantile error at ``1/SUBBUCKETS`` while keeping the bucket
map tiny and mergeable. Values are whatever simulated unit the caller
declares (server ticks for queueing latencies, modeled nanoseconds for
ecall service time); the unit travels with the histogram so exports
stay honest.

:class:`LatencyRecorder` is the named bag of histograms the stack
records into (see ``docs/OBSERVABILITY.md`` for the schema); the
process-global :data:`LATENCIES` instance is what the pipeline,
supervisor, and cost-model gate use, and what ``python -m repro
metrics`` exports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Linear sub-buckets per power of two: relative quantile error <= 1/8.
SUBBUCKETS = 8

#: The percentiles every summary exports.
PERCENTILES = (50.0, 95.0, 99.0, 99.9)


@dataclass
class LogHistogram:
    """A mergeable log-bucketed histogram over non-negative values."""

    name: str
    unit: str = "ticks"
    count: int = 0
    total: float = 0.0
    min_value: float = math.inf
    max_value: float = 0.0
    #: bucket index -> count (sparse; see :func:`_bucket_index`).
    buckets: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @staticmethod
    def _bucket_index(value: float) -> int:
        """Bucket 0 holds [0, 1); bucket 1 + e*SUBBUCKETS + s holds
        ``[2^e * (1 + s/S), 2^e * (1 + (s+1)/S))``."""
        if value < 1.0:
            return 0
        e = int(math.floor(math.log2(value)))
        base = 2.0 ** e
        s = int((value / base - 1.0) * SUBBUCKETS)
        if s >= SUBBUCKETS:  # float edge: value == 2^(e+1) - epsilon
            s = SUBBUCKETS - 1
        return 1 + e * SUBBUCKETS + s

    @staticmethod
    def _bucket_upper(index: int) -> float:
        """Exclusive upper edge of a bucket (the ``le`` of exports)."""
        if index == 0:
            return 1.0
        e, s = divmod(index - 1, SUBBUCKETS)
        return 2.0 ** e * (1.0 + (s + 1) / SUBBUCKETS)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        idx = self._bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: "LogHistogram") -> None:
        """Accumulate another histogram (same unit) into this one."""
        if other.unit != self.unit:
            raise ValueError(
                f"cannot merge {other.unit!r} into {self.unit!r}")
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0..100): the upper edge of the
        bucket holding that rank, clamped to the exact observed max."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= rank:
                return min(self._bucket_upper(idx), self.max_value)
        return self.max_value

    def summary(self) -> dict:
        """The compact export every consumer embeds (bench JSON, CLI)."""
        out = {
            "unit": self.unit,
            "count": self.count,
            "sum": round(self.total, 3),
            "min": round(self.min_value, 3) if self.count else 0.0,
            "max": round(self.max_value, 3),
            "mean": round(self.mean, 3),
        }
        for p in PERCENTILES:
            out[f"p{str(p).rstrip('0').rstrip('.')}"] = \
                round(self.percentile(p), 3)
        return out

    def as_dict(self) -> dict:
        """Full export: summary plus the cumulative bucket list
        (``[le, cumulative_count]``, Prometheus histogram semantics)."""
        out = self.summary()
        cum = 0
        series = []
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            series.append([round(self._bucket_upper(idx), 4), cum])
        out["buckets"] = series
        return out


#: Histogram name -> unit, for everything the stack records. A name not
#: listed here records in "ticks" (the server's simulated clock).
UNITS = {
    "admission_wait": "ticks",       # submit -> start of execution
    "batch_residency": "ticks",      # staged in a shard batch -> flush
    "ecall_service": "modeled_ns",   # modeled verifier time per crossing
    "verified_latency": "ticks",     # op submit -> epoch receipt settled
}


class LatencyRecorder:
    """The named bag of histograms the serving stack records into.

    Every observation lands in two places: the **cumulative** histogram
    (the run-lifetime distribution every export reads) and a parallel
    **window** histogram that accumulates only since it was last taken.
    :meth:`take_window` is reset-on-read: it returns the interval view
    and starts a fresh one — the sensor the latency-budget controller
    polls, so a breach in the last interval is not diluted by an hour of
    healthy history. Windows carry full histograms (not snapshot
    deltas), so interval min/max and quantiles are exact to the same
    ``1/SUBBUCKETS`` bound as the cumulative view."""

    def __init__(self):
        self.enabled = True
        self._hists: dict[str, LogHistogram] = {}
        self._windows: dict[str, LogHistogram] = {}

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = LogHistogram(
                name, UNITS.get(name, "ticks"))
        hist.observe(value)
        window = self._windows.get(name)
        if window is None:
            window = self._windows[name] = LogHistogram(
                name, UNITS.get(name, "ticks"))
        window.observe(value)

    def get(self, name: str) -> LogHistogram:
        """The named histogram (an empty one if nothing recorded yet)."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = LogHistogram(
                name, UNITS.get(name, "ticks"))
        return hist

    def window(self, name: str) -> LogHistogram:
        """Peek at the named interval histogram (observations since the
        last :meth:`take_window`) without resetting it."""
        window = self._windows.get(name)
        if window is None:
            window = self._windows[name] = LogHistogram(
                name, UNITS.get(name, "ticks"))
        return window

    def take_window(self, name: str) -> LogHistogram:
        """Reset-on-read: return the named interval histogram and start
        a fresh window. The cumulative histogram is untouched."""
        taken = self.window(name)
        self._windows[name] = LogHistogram(name, UNITS.get(name, "ticks"))
        return taken

    def names(self) -> list[str]:
        return sorted(self._hists)

    def reset(self) -> None:
        self._hists.clear()
        self._windows.clear()

    def as_dict(self, full: bool = False) -> dict:
        return {name: (self._hists[name].as_dict() if full
                       else self._hists[name].summary())
                for name in self.names()}


#: Process-global recorder (mirrors ``repro.instrument.COUNTERS``).
LATENCIES = LatencyRecorder()

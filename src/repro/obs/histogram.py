"""Log-bucketed latency histograms (HDR-style) in simulated time.

The serving stack's latency story (P3: how stale may a provisional
result be before its epoch receipt lands) is a *distribution*, not an
average — the ROADMAP's traffic target makes p99/p99.9 the numbers that
matter. :class:`LogHistogram` records values into logarithmic buckets:
bucket boundaries are ``2^e * (1 + s/SUBBUCKETS)``, i.e. every power of
two is split into ``SUBBUCKETS`` linear sub-buckets, bounding the
relative quantile error at ``1/SUBBUCKETS`` while keeping the bucket
map tiny and mergeable. Values are whatever simulated unit the caller
declares (server ticks for queueing latencies, modeled nanoseconds for
ecall service time); the unit travels with the histogram so exports
stay honest.

:class:`LatencyRecorder` is the named bag of histograms the stack
records into (see ``docs/OBSERVABILITY.md`` for the schema); the
process-global :data:`LATENCIES` instance is what the pipeline,
supervisor, and cost-model gate use, and what ``python -m repro
metrics`` exports.
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass, field

#: Linear sub-buckets per power of two: relative quantile error <= 1/8.
SUBBUCKETS = 8

#: The percentiles every summary exports.
PERCENTILES = (50.0, 95.0, 99.0, 99.9)

#: Exemplar gate: observations beyond this quantile of the *current
#: window* keep their trace id (the span is then reconstructable from
#: the ring or the spool), so outlier latencies are always explainable.
EXEMPLAR_QUANTILE = 99.0

#: Deterministic baseline: every Nth traced observation keeps an
#: exemplar regardless of value, so healthy latencies stay explainable
#: too (and reruns of the same seed keep identical exemplar sets).
EXEMPLAR_EVERY = 64

#: Observations a window must hold before the quantile gate arms (an
#: empty window would call everything an outlier).
EXEMPLAR_MIN_WINDOW = 32

#: Bounded storage: most recent outlier / baseline exemplars retained
#: per histogram. Exemplars carry a trace id, not the span itself, so
#: this bounds memory without bounding explainability.
EXEMPLAR_OUTLIERS = 32
EXEMPLAR_BASELINE = 8


@dataclass(frozen=True)
class Exemplar:
    """One retained observation: the trace id that explains a latency.

    ``at`` is the observation's 1-based index in its histogram's
    stream — deterministic for a given seed, which is what lets
    exemplar sets fold into chaos digests."""

    name: str
    trace: str
    value: float
    at: int
    kind: str  # "outlier" | "baseline"

    def as_dict(self) -> dict:
        return {"name": self.name, "trace": self.trace,
                "value": round(self.value, 3), "at": self.at,
                "kind": self.kind}


@dataclass
class LogHistogram:
    """A mergeable log-bucketed histogram over non-negative values."""

    name: str
    unit: str = "ticks"
    count: int = 0
    total: float = 0.0
    min_value: float = math.inf
    max_value: float = 0.0
    #: bucket index -> count (sparse; see :func:`_bucket_index`).
    buckets: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @staticmethod
    def _bucket_index(value: float) -> int:
        """Bucket 0 holds [0, 1); bucket 1 + e*SUBBUCKETS + s holds
        ``[2^e * (1 + s/S), 2^e * (1 + (s+1)/S))``."""
        if value < 1.0:
            return 0
        e = int(math.floor(math.log2(value)))
        base = 2.0 ** e
        s = int((value / base - 1.0) * SUBBUCKETS)
        if s >= SUBBUCKETS:  # float edge: value == 2^(e+1) - epsilon
            s = SUBBUCKETS - 1
        return 1 + e * SUBBUCKETS + s

    @staticmethod
    def _bucket_upper(index: int) -> float:
        """Exclusive upper edge of a bucket (the ``le`` of exports)."""
        if index == 0:
            return 1.0
        e, s = divmod(index - 1, SUBBUCKETS)
        return 2.0 ** e * (1.0 + (s + 1) / SUBBUCKETS)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        idx = self._bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: "LogHistogram") -> None:
        """Accumulate another histogram (same unit) into this one."""
        if other.unit != self.unit:
            raise ValueError(
                f"cannot merge {other.unit!r} into {self.unit!r}")
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0..100): the upper edge of the
        bucket holding that rank, clamped to the exact observed max."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        cum = 0
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= rank:
                return min(self._bucket_upper(idx), self.max_value)
        return self.max_value

    def summary(self) -> dict:
        """The compact export every consumer embeds (bench JSON, CLI)."""
        out = {
            "unit": self.unit,
            "count": self.count,
            "sum": round(self.total, 3),
            "min": round(self.min_value, 3) if self.count else 0.0,
            "max": round(self.max_value, 3),
            "mean": round(self.mean, 3),
        }
        for p in PERCENTILES:
            out[f"p{str(p).rstrip('0').rstrip('.')}"] = \
                round(self.percentile(p), 3)
        return out

    def as_dict(self) -> dict:
        """Full export: summary plus the cumulative bucket list
        (``[le, cumulative_count]``, Prometheus histogram semantics)."""
        out = self.summary()
        cum = 0
        series = []
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            series.append([round(self._bucket_upper(idx), 4), cum])
        out["buckets"] = series
        return out


#: Histogram name -> unit, for everything the stack records. A name not
#: listed here records in "ticks" (the server's simulated clock).
UNITS = {
    "admission_wait": "ticks",       # submit -> start of execution
    "batch_residency": "ticks",      # staged in a shard batch -> flush
    "ecall_service": "modeled_ns",   # modeled verifier time per crossing
    "verified_latency": "ticks",     # op submit -> epoch receipt settled
}


class LatencyRecorder:
    """The named bag of histograms the serving stack records into.

    Every observation lands in two places: the **cumulative** histogram
    (the run-lifetime distribution every export reads) and a parallel
    **window** histogram that accumulates only since it was last taken.
    :meth:`take_window` is reset-on-read: it returns the interval view
    and starts a fresh one — the sensor the latency-budget controller
    polls, so a breach in the last interval is not diluted by an hour of
    healthy history. Windows carry full histograms (not snapshot
    deltas), so interval min/max and quantiles are exact to the same
    ``1/SUBBUCKETS`` bound as the cumulative view.

    Traced observations additionally feed **exemplar sampling**: the
    trace id of any observation beyond :data:`EXEMPLAR_QUANTILE` of the
    current window is retained (plus a deterministic 1-in-
    :data:`EXEMPLAR_EVERY` baseline), so a p99 outlier in an export is
    always one ``repro obs replay --trace`` away from its full span."""

    def __init__(self):
        self.enabled = True
        self._hists: dict[str, LogHistogram] = {}
        self._windows: dict[str, LogHistogram] = {}
        self._window_resets: dict[str, int] = {}
        #: name -> total traced+untraced observations (the ``at`` index).
        self._observations: dict[str, int] = {}
        self._outliers: dict[str, deque[Exemplar]] = {}
        self._baseline: dict[str, deque[Exemplar]] = {}

    def observe(self, name: str, value: float,
                trace: str | None = None) -> None:
        """Record ``value``; when ``trace`` is given, the observation is
        exemplar-eligible: it is retained (trace id + value + stream
        index) if it lands beyond :data:`EXEMPLAR_QUANTILE` of the
        current window, or as the deterministic 1-in-
        :data:`EXEMPLAR_EVERY` baseline. The gate threshold is computed
        *before* the value enters the window, so a new worst-case can
        exceed it (a window's percentile clamps to its own max)."""
        if not self.enabled:
            return
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = LogHistogram(
                name, UNITS.get(name, "ticks"))
        window = self._windows.get(name)
        if window is None:
            window = self._windows[name] = LogHistogram(
                name, UNITS.get(name, "ticks"))
        at = self._observations.get(name, 0) + 1
        self._observations[name] = at
        if trace is not None:
            if (window.count >= EXEMPLAR_MIN_WINDOW
                    and value > window.percentile(EXEMPLAR_QUANTILE)):
                self._keep(self._outliers, EXEMPLAR_OUTLIERS,
                           Exemplar(name, trace, value, at, "outlier"))
            elif at % EXEMPLAR_EVERY == 0:
                self._keep(self._baseline, EXEMPLAR_BASELINE,
                           Exemplar(name, trace, value, at, "baseline"))
        hist.observe(value)
        window.observe(value)

    @staticmethod
    def _keep(store: dict[str, deque], cap: int, ex: Exemplar) -> None:
        bucket = store.get(ex.name)
        if bucket is None:
            bucket = store[ex.name] = deque(maxlen=cap)
        bucket.append(ex)

    def get(self, name: str) -> LogHistogram:
        """The named histogram (an empty one if nothing recorded yet)."""
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = LogHistogram(
                name, UNITS.get(name, "ticks"))
        return hist

    def window(self, name: str) -> LogHistogram:
        """Peek at the named interval histogram (observations since the
        last :meth:`take_window`) without resetting it."""
        window = self._windows.get(name)
        if window is None:
            window = self._windows[name] = LogHistogram(
                name, UNITS.get(name, "ticks"))
        return window

    def take_window(self, name: str) -> LogHistogram:
        """Reset-on-read: return the named interval histogram and start
        a fresh window. The cumulative histogram is untouched."""
        taken = self.window(name)
        self._windows[name] = LogHistogram(name, UNITS.get(name, "ticks"))
        self._window_resets[name] = self._window_resets.get(name, 0) + 1
        return taken

    def window_meta(self) -> dict:
        """Per-histogram window metadata for ``health()``/exports:
        observations in the current (un-taken) window and how many times
        the window has been reset-on-read."""
        names = sorted(set(self._windows) | set(self._window_resets))
        return {name: {"window_count": self.window(name).count,
                       "resets": self._window_resets.get(name, 0)}
                for name in names}

    # ------------------------------------------------------------------
    def exemplars(self, name: str | None = None) -> list[Exemplar]:
        """Retained exemplars (outliers then baseline, each oldest
        first), optionally for one histogram."""
        names = [name] if name is not None else \
            sorted(set(self._outliers) | set(self._baseline))
        out: list[Exemplar] = []
        for n in names:
            out.extend(self._outliers.get(n, ()))
            out.extend(self._baseline.get(n, ()))
        return out

    def exemplar_digest(self) -> str:
        """Order-stable sha256 over the retained exemplar set. Exemplar
        selection is a pure function of the observation stream, so for a
        seeded run this digest is bit-for-bit reproducible — chaos folds
        it into the run digest when obs mode is armed."""
        h = hashlib.sha256()
        for ex in self.exemplars():
            h.update(f"{ex.name}|{ex.kind}|{ex.trace}|{ex.at}|"
                     f"{ex.value:.6f}\n".encode())
        return h.hexdigest()

    def names(self) -> list[str]:
        return sorted(self._hists)

    def reset(self) -> None:
        self._hists.clear()
        self._windows.clear()
        self._window_resets.clear()
        self._observations.clear()
        self._outliers.clear()
        self._baseline.clear()

    def as_dict(self, full: bool = False) -> dict:
        return {name: (self._hists[name].as_dict() if full
                       else self._hists[name].summary())
                for name in self.names()}


#: Process-global recorder (mirrors ``repro.instrument.COUNTERS``).
LATENCIES = LatencyRecorder()

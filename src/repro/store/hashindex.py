"""FASTER's hash index: keys to log addresses, with CAS semantics.

The index maps each key to the log address of its latest record version.
FASTER updates entries with compare-and-swap so racing threads linearize;
we expose the same :meth:`try_update` discipline (the simulated executor
injects CAS failures to model contention, and the FastVer worker loop
retries exactly as §5.3 / §7 describe).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.keys import BitKey
from repro.instrument import COUNTERS
from repro.store.hybridlog import NULL_ADDRESS


class HashIndex:
    """Key → latest-version log address."""

    def __init__(self):
        self._entries: dict[BitKey, int] = {}

    def lookup(self, key: BitKey) -> int:
        """Latest address for the key, or ``NULL_ADDRESS`` if absent.

        Counts as one memory touch: a FASTER index probe is a real cache
        line access, and the cost model prices it like any store touch.
        """
        COUNTERS.store_reads += 1
        return self._entries.get(key, NULL_ADDRESS)

    def try_update(self, key: BitKey, expected: int, new: int) -> bool:
        """Install ``new`` iff the entry still reads ``expected`` (CAS)."""
        COUNTERS.cas_attempts += 1
        current = self._entries.get(key, NULL_ADDRESS)
        if current != expected:
            COUNTERS.cas_failures += 1
            return False
        self._entries[key] = new
        return True

    def remove(self, key: BitKey) -> None:
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: BitKey) -> bool:
        return key in self._entries

    def keys(self) -> Iterator[BitKey]:
        return iter(self._entries)

    def items(self) -> Iterator[tuple[BitKey, int]]:
        return iter(self._entries.items())

    def snapshot(self) -> dict[BitKey, int]:
        """A shallow copy of the mapping (used by CPR checkpoints)."""
        return dict(self._entries)

    def restore(self, entries: dict[BitKey, int]) -> None:
        self._entries = dict(entries)

"""CPR-style checkpointing (Prasaad et al., SIGMOD 2019; used per §7).

FASTER's Concurrent Prefix Recovery takes fuzzy checkpoints that commit a
*prefix* of each thread's operations. FastVer aligns its verification
epochs with CPR epochs so that "epoch e verified" coincides with "epoch e's
state persisted" (§7 Durability).

A checkpoint consists of: a version number, the log tail address, a full
flush of in-memory log records to the device, and an explicit binary
serialization of the hash index. The verifier separately checkpoints its
*own* state under a MAC (see ``repro.core.multiverifier``); this module
only covers the untrusted database state.
"""

from __future__ import annotations

from repro.core.keys import BitKey
from repro.errors import AvailabilityError, CheckpointError, RecoveryError
from repro.store.faster import FasterKV
from repro.store.hybridlog import LogDevice


class CheckpointToken:
    """A durable database checkpoint."""

    __slots__ = ("version", "tail_address", "index_blob", "ordered_width")

    def __init__(self, version: int, tail_address: int, index_blob: bytes,
                 ordered_width: int | None):
        self.version = version
        self.tail_address = tail_address
        self.index_blob = index_blob
        self.ordered_width = ordered_width


def _serialize_index(entries: dict[BitKey, int]) -> bytes:
    parts = [len(entries).to_bytes(8, "big")]
    for key, address in entries.items():
        enc = key.to_bytes()
        parts.append(len(enc).to_bytes(4, "big"))
        parts.append(enc)
        parts.append(address.to_bytes(8, "big", signed=True))
    return b"".join(parts)


def _deserialize_index(blob: bytes) -> dict[BitKey, int]:
    if len(blob) < 8:
        raise RecoveryError("truncated index blob")
    count = int.from_bytes(blob[:8], "big")
    entries: dict[BitKey, int] = {}
    off = 8
    try:
        for _ in range(count):
            klen = int.from_bytes(blob[off:off + 4], "big")
            off += 4
            if off + klen > len(blob):
                raise RecoveryError("index blob ends mid-entry")
            key = BitKey.from_encoded(blob[off:off + klen])
            off += klen
            address = int.from_bytes(blob[off:off + 8], "big", signed=True)
            off += 8
            entries[key] = address
    except RecoveryError:
        raise
    except Exception as exc:
        # Bit rot produces arbitrary decode failures; surface them all as
        # the one typed recovery error so callers can fall back to the
        # lenient log-scan rebuild.
        raise RecoveryError(f"undecodable index blob: {exc}") from exc
    if off != len(blob):
        raise RecoveryError("trailing bytes in index blob")
    return entries


_versions: dict[int, int] = {}


def take_checkpoint(store: FasterKV, version: int,
                    faults=None) -> CheckpointToken:
    """Persist the store: flush the log, snapshot the index.

    The flush is ``flush_until(tail)`` rather than a re-write of every
    in-memory record: addresses below the head are already on the device
    and — because in-place updates only happen in the mutable tail — their
    pages never change again. Device pages are therefore write-once, which
    is what makes recovery from an *older* token safe even when a *newer*
    checkpoint's flush died partway: the older token's addresses are
    untouched by the failed flush.

    A flush failure (partial flush, unhealable torn write) propagates as a
    typed availability error and **no token is issued** — the previous
    checkpoint stays the recovery point. ``faults`` (a FaultPlan) can
    truncate or corrupt the serialized index blob after a successful
    flush, modeling bit rot on untrusted checkpoint storage; that damage
    is detected at :func:`recover` time, which is why callers keep the
    lenient log-scan rebuild as a fallback.
    """
    if version <= 0:
        raise CheckpointError("checkpoint version must be positive")
    store.log.flush_until(store.log.tail_address)
    blob = _serialize_index(store.index.snapshot())
    if faults is not None:
        if faults.fire("checkpoint.blob.truncate"):
            blob = blob[:len(blob) // 2]
        if faults.fire("checkpoint.blob.corrupt") and blob:
            mid = len(blob) // 2
            blob = blob[:mid] + bytes([blob[mid] ^ 0xFF]) + blob[mid + 1:]
    token = CheckpointToken(version, store.log.tail_address, blob,
                            store.ordered_width)
    # A successful checkpoint supersedes whatever lenient salvage produced
    # this store: recovery now goes through this token, never back through
    # the quarantined pages, so the quarantine list would only mislead a
    # later strict-rebuild audit into reporting long-healed damage.
    store.quarantined_addresses = []
    return token


def rot_blob_at_rest(token: CheckpointToken, faults) -> bool:
    """Fire ``checkpoint.blob.bitrot`` against a *retained* token.

    Unlike ``checkpoint.blob.corrupt`` (which damages the blob as it is
    written), this models rot that sets in while the token sits as the
    recovery point: callers that consult a retained blob — recovery, the
    background scrubber — fire this first, and a hit flips one byte of the
    token *persistently*, exactly like device bitrot. Returns whether the
    blob rotted on this consultation (the damage itself is only ever
    observed through :func:`_deserialize_index` failing later).
    """
    if faults is None or not token.index_blob:
        return False
    if not faults.fire("checkpoint.blob.bitrot"):
        return False
    blob = token.index_blob
    pos = (len(blob) * 2) // 3
    token.index_blob = blob[:pos] + bytes([blob[pos] ^ 0x10]) + blob[pos + 1:]
    return True


def recover(token: CheckpointToken, device: LogDevice) -> FasterKV:
    """Rebuild a store from a checkpoint and its log device.

    Every index entry must resolve on the device; a missing page means the
    adversary destroyed the log (§7 notes durability cannot survive that —
    the failure is *detected*, not repaired).
    """
    store = FasterKV(ordered_width=token.ordered_width, device=device)
    entries = _deserialize_index(token.index_blob)
    store.index.restore(entries)
    store.log._next_address = token.tail_address
    store.log.head_address = token.tail_address
    store.log.read_only_address = token.tail_address
    for key, address in entries.items():
        if address not in device:
            raise RecoveryError(f"log page {address} missing from device")
        try:
            record = store.log.get(address)
        except AvailabilityError:
            raise  # transient; the caller's bounded retry handles it
        except Exception as exc:
            raise RecoveryError(
                f"log page {address} is undecodable: {exc}") from exc
        if record.key != key:
            raise RecoveryError(
                f"index entry for {key!r} resolves to a record for {record.key!r}"
            )
        if not record.tombstone:
            store._track(key, present=True)
    return store

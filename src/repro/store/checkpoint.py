"""CPR-style checkpointing (Prasaad et al., SIGMOD 2019; used per §7).

FASTER's Concurrent Prefix Recovery takes fuzzy checkpoints that commit a
*prefix* of each thread's operations. FastVer aligns its verification
epochs with CPR epochs so that "epoch e verified" coincides with "epoch e's
state persisted" (§7 Durability).

A checkpoint consists of: a version number, the log tail address, a full
flush of in-memory log records to the device, and an explicit binary
serialization of the hash index. The verifier separately checkpoints its
*own* state under a MAC (see ``repro.core.multiverifier``); this module
only covers the untrusted database state.
"""

from __future__ import annotations

from repro.core.keys import BitKey
from repro.errors import CheckpointError, RecoveryError
from repro.store.faster import FasterKV
from repro.store.hybridlog import LogDevice


class CheckpointToken:
    """A durable database checkpoint."""

    __slots__ = ("version", "tail_address", "index_blob", "ordered_width")

    def __init__(self, version: int, tail_address: int, index_blob: bytes,
                 ordered_width: int | None):
        self.version = version
        self.tail_address = tail_address
        self.index_blob = index_blob
        self.ordered_width = ordered_width


def _serialize_index(entries: dict[BitKey, int]) -> bytes:
    parts = [len(entries).to_bytes(8, "big")]
    for key, address in entries.items():
        enc = key.to_bytes()
        parts.append(len(enc).to_bytes(4, "big"))
        parts.append(enc)
        parts.append(address.to_bytes(8, "big", signed=True))
    return b"".join(parts)


def _deserialize_index(blob: bytes) -> dict[BitKey, int]:
    if len(blob) < 8:
        raise RecoveryError("truncated index blob")
    count = int.from_bytes(blob[:8], "big")
    entries: dict[BitKey, int] = {}
    off = 8
    for _ in range(count):
        klen = int.from_bytes(blob[off:off + 4], "big")
        off += 4
        key = BitKey.from_encoded(blob[off:off + klen])
        off += klen
        address = int.from_bytes(blob[off:off + 8], "big", signed=True)
        off += 8
        entries[key] = address
    if off != len(blob):
        raise RecoveryError("trailing bytes in index blob")
    return entries


_versions: dict[int, int] = {}


def take_checkpoint(store: FasterKV, version: int) -> CheckpointToken:
    """Persist the store: flush the log, snapshot the index."""
    if version <= 0:
        raise CheckpointError("checkpoint version must be positive")
    store.log.flush_all()
    blob = _serialize_index(store.index.snapshot())
    return CheckpointToken(version, store.log.tail_address, blob,
                           store.ordered_width)


def recover(token: CheckpointToken, device: LogDevice) -> FasterKV:
    """Rebuild a store from a checkpoint and its log device.

    Every index entry must resolve on the device; a missing page means the
    adversary destroyed the log (§7 notes durability cannot survive that —
    the failure is *detected*, not repaired).
    """
    store = FasterKV(ordered_width=token.ordered_width, device=device)
    entries = _deserialize_index(token.index_blob)
    store.index.restore(entries)
    store.log._next_address = token.tail_address
    store.log.head_address = token.tail_address
    store.log.read_only_address = token.tail_address
    for key, address in entries.items():
        if address not in device:
            raise RecoveryError(f"log page {address} missing from device")
        record = store.log.get(address)
        if record.key != key:
            raise RecoveryError(
                f"index entry for {key!r} resolves to a record for {record.key!r}"
            )
        if not record.tombstone:
            store._track(key, present=True)
    return store

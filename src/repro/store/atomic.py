"""Atomic (value, aux) updates — the 128-bit CAS of §5.3 and §7.

FastVer's worker loop hinges on atomically swapping a record's value and
64-bit aux word together: for 8-byte values this is a hardware 128-bit CAS;
for larger values FASTER-style short-lived record mutexes are used. In
CPython all our "threads" are logical (the simulated executor interleaves
them), so the primitive is trivially atomic — but we keep the CAS *shape*:

* callers pass the expected (value, aux) pair and the update is refused if
  the record has moved on, so the speculative-update-then-log protocol of
  §5.3 (Example 5.2) is exercised for real;
* a pluggable :class:`ContentionInjector` can force spurious failures with
  a configured probability, which the contention model uses to reproduce
  retry behaviour under skewed workloads.
"""

from __future__ import annotations

import random

from repro.instrument import COUNTERS


class ContentionInjector:
    """Injects CAS failures to model inter-thread contention.

    ``failure_probability`` is typically derived by the executor from the
    workload's key-collision rate (two workers touching one key.)
    """

    def __init__(self, failure_probability: float = 0.0, seed: int = 0):
        if not 0.0 <= failure_probability < 1.0:
            raise ValueError("failure probability must be in [0, 1)")
        self.failure_probability = failure_probability
        self._rng = random.Random(seed)

    def should_fail(self) -> bool:
        if self.failure_probability == 0.0:
            return False
        return self._rng.random() < self.failure_probability


#: Default injector: no artificial contention.
NO_CONTENTION = ContentionInjector(0.0)


def compare_and_swap_pair(record, expected_value, expected_aux: int,
                          new_value, new_aux: int,
                          injector: ContentionInjector = NO_CONTENTION) -> bool:
    """Atomically install (new_value, new_aux) iff the record still holds
    (expected_value, expected_aux). Returns success.

    ``record`` is any object with ``value`` and ``aux`` attributes (a
    :class:`~repro.store.hybridlog.LogRecord`).
    """
    COUNTERS.cas_attempts += 1
    if injector.should_fail():
        COUNTERS.cas_failures += 1
        return False
    if record.value != expected_value or record.aux != expected_aux:
        COUNTERS.cas_failures += 1
        return False
    record.value = new_value
    record.aux = new_aux
    return True

"""The FASTER-style untrusted host store substrate (§7).

Hash index over a hybrid-log allocator with epoch protection, atomic
(value, aux) updates, ordered scans, and CPR-style checkpoint/recovery.
Everything in this package is *untrusted* in FastVer's threat model.
"""

from repro.store.atomic import NO_CONTENTION, ContentionInjector, compare_and_swap_pair
from repro.store.checkpoint import CheckpointToken, recover, take_checkpoint
from repro.store.epoch_protection import UNPROTECTED, LightEpoch
from repro.store.faster import FasterKV, KeyDirectory
from repro.store.hashindex import HashIndex
from repro.store.hybridlog import NULL_ADDRESS, HybridLog, LogDevice, LogRecord

__all__ = [
    "NO_CONTENTION",
    "ContentionInjector",
    "compare_and_swap_pair",
    "CheckpointToken",
    "recover",
    "take_checkpoint",
    "UNPROTECTED",
    "LightEpoch",
    "FasterKV",
    "KeyDirectory",
    "HashIndex",
    "NULL_ADDRESS",
    "HybridLog",
    "LogDevice",
    "LogRecord",
]

"""Log-scan recovery: rebuild the hash index from the device alone.

CPR recovery normally restores the index from the checkpoint blob
(:mod:`repro.store.checkpoint`). When the blob is lost or damaged but the
log device survives, the index can be reconstructed by scanning the log:
the newest version of each key is the one at the highest address (FASTER's
version chains grow toward the tail). This is the classic recovery-by-
replay path; FastVer's *integrity* does not depend on it (the verifier
re-checks everything), but availability does.
"""

from __future__ import annotations

from repro.core.keys import BitKey
from repro.errors import RecoveryError, TransientIOError
from repro.store.faster import FasterKV
from repro.store.hybridlog import LogDevice, LogRecord


def rebuild_index_from_log(device: LogDevice, tail_address: int,
                           ordered_width: int | None = None,
                           strict: bool = True) -> FasterKV:
    """Reconstruct a store by scanning every page below ``tail_address``.

    Pages may be missing (never flushed, or destroyed); a key whose newest
    surviving version is a tombstone stays deleted. Missing pages merely
    lose data, which the verifier will flag when the client next touches
    an affected key.

    Undecodable pages (torn writes, bit rot) depend on ``strict``:

    * ``strict=True`` (default) raises :class:`RecoveryError` at the first
      one — nothing is salvaged.
    * ``strict=False`` *quarantines* the page — it is skipped, its address
      is recorded in ``store.quarantined_addresses`` on the returned
      store, and every decodable page (including those *behind* the bad
      one) is still recovered. A key whose newest version was quarantined
      falls back to its newest decodable version; integrity machinery
      treats such staleness exactly like any other rollback, so lenient
      rebuild can degrade availability but never integrity.

    Transient read failures are retried a bounded number of times; in
    lenient mode a persistently unreadable page is quarantined rather
    than aborting the rebuild.
    """
    if tail_address < 0:
        raise RecoveryError("tail address cannot be negative")
    store = FasterKV(ordered_width=ordered_width, device=device)
    newest: dict[BitKey, tuple[int, LogRecord]] = {}
    quarantined: list[int] = []
    for address in range(tail_address):
        if address not in device:
            continue
        try:
            record = LogRecord.deserialize(device.read_with_retry(address))
        except TransientIOError as exc:
            if strict:
                raise
            quarantined.append(address)
            continue
        except Exception as exc:
            if strict:
                raise RecoveryError(
                    f"page {address} is undecodable: {exc}") from exc
            quarantined.append(address)
            continue
        current = newest.get(record.key)
        if current is None or address > current[0]:
            newest[record.key] = (address, record)
    store.log._next_address = tail_address
    store.log.head_address = tail_address
    store.log.read_only_address = tail_address
    from repro.store.hybridlog import NULL_ADDRESS
    for key, (address, record) in newest.items():
        store.index.try_update(key, NULL_ADDRESS, address)
        if not record.tombstone:
            store._track(key, present=True)
    store.quarantined_addresses = quarantined
    return store

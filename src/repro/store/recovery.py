"""Log-scan recovery: rebuild the hash index from the device alone.

CPR recovery normally restores the index from the checkpoint blob
(:mod:`repro.store.checkpoint`). When the blob is lost or damaged but the
log device survives, the index can be reconstructed by scanning the log:
the newest version of each key is the one at the highest address (FASTER's
version chains grow toward the tail). This is the classic recovery-by-
replay path; FastVer's *integrity* does not depend on it (the verifier
re-checks everything), but availability does.
"""

from __future__ import annotations

from repro.core.keys import BitKey
from repro.errors import RecoveryError
from repro.store.faster import FasterKV
from repro.store.hybridlog import LogDevice, LogRecord


def rebuild_index_from_log(device: LogDevice, tail_address: int,
                           ordered_width: int | None = None) -> FasterKV:
    """Reconstruct a store by scanning every page below ``tail_address``.

    Pages may be missing (never flushed, or destroyed); a key whose newest
    surviving version is a tombstone stays deleted. Raises only on
    undecodable pages — missing ones merely lose data, which the verifier
    will flag when the client next touches an affected key.
    """
    if tail_address < 0:
        raise RecoveryError("tail address cannot be negative")
    store = FasterKV(ordered_width=ordered_width, device=device)
    newest: dict[BitKey, tuple[int, LogRecord]] = {}
    for address in range(tail_address):
        if address not in device:
            continue
        try:
            record = LogRecord.deserialize(device.read(address))
        except Exception as exc:
            raise RecoveryError(f"page {address} is undecodable: {exc}") from exc
        current = newest.get(record.key)
        if current is None or address > current[0]:
            newest[record.key] = (address, record)
    store.log._next_address = tail_address
    store.log.head_address = tail_address
    store.log.read_only_address = tail_address
    from repro.store.hybridlog import NULL_ADDRESS
    for key, (address, record) in newest.items():
        store.index.try_update(key, NULL_ADDRESS, address)
        if not record.tombstone:
            store._track(key, present=True)
    return store

"""FasterKV: the FASTER-style host key-value store (§7 substrate).

This is the untrusted host database of Figure 1. It composes the hash
index, hybrid-log allocator, and epoch-protection framework into the API
FastVer builds on:

* ``read`` / ``upsert`` / ``rmw`` / ``delete`` — point operations that keep
  per-record (value, aux) pairs and update them in place in the mutable
  region or by read-copy-update below it;
* ``try_cas`` — the atomic (value, aux) swap the FastVer worker loop uses
  for speculative updates (§5.3);
* ``scan_from`` — ordered scans over data keys (YCSB-E);
* checkpoint hooks used by the CPR module.

The store is *byzantine* in the threat model: nothing here is trusted, and
the adversary package mutates these structures directly in tests.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator

from repro.core.keys import BitKey
from repro.core.records import Value
from repro.errors import StoreError
from repro.instrument import COUNTERS
from repro.store.atomic import NO_CONTENTION, ContentionInjector, compare_and_swap_pair
from repro.store.epoch_protection import LightEpoch
from repro.store.hashindex import HashIndex
from repro.store.hybridlog import NULL_ADDRESS, HybridLog, LogDevice, LogRecord


class KeyDirectory:
    """Sorted directory of data keys, supporting ordered scans.

    FASTER itself is hash-organized; range scans in YCSB-E need key order,
    so we keep a bisect-maintained sorted list of full-width keys. Inserts
    are O(n) in the worst case, which is fine at YCSB-E's 5% insert rate.
    """

    def __init__(self):
        self._sorted: list[BitKey] = []
        self._members: set[BitKey] = set()

    def add(self, key: BitKey) -> None:
        if key in self._members:
            return
        bisect.insort(self._sorted, key)
        self._members.add(key)

    def remove(self, key: BitKey) -> None:
        if key not in self._members:
            return
        self._members.remove(key)
        idx = bisect.bisect_left(self._sorted, key)
        del self._sorted[idx]

    def range_from(self, start: BitKey, count: int) -> list[BitKey]:
        """The first ``count`` keys >= ``start`` in key order."""
        idx = bisect.bisect_left(self._sorted, start)
        return self._sorted[idx:idx + count]

    def __len__(self) -> int:
        return len(self._sorted)

    def __contains__(self, key: BitKey) -> bool:
        return key in self._members

    def keys(self) -> list[BitKey]:
        return list(self._sorted)


class FasterKV:
    """The host store.

    ``ordered_width`` selects which key length participates in the sorted
    scan directory (FastVer passes its data-key width; Merkle keys stay out
    of scan results).
    """

    def __init__(self, ordered_width: int | None = None,
                 memory_budget_records: int = 1 << 30,
                 mutable_fraction: float = 0.9,
                 device: LogDevice | None = None,
                 contention: ContentionInjector = NO_CONTENTION):
        self.index = HashIndex()
        self.log = HybridLog(mutable_fraction=mutable_fraction,
                             memory_budget_records=memory_budget_records,
                             device=device)
        self.epochs = LightEpoch()
        self.directory = KeyDirectory()
        self.ordered_width = ordered_width
        self.contention = contention
        # Device addresses skipped by a lenient log-scan rebuild (see
        # repro.store.recovery); empty on any store built the normal way.
        self.quarantined_addresses: list[int] = []

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def read(self, key: BitKey) -> tuple[Value, int] | None:
        """Current (value, aux) for a key, or None if absent/tombstoned."""
        record = self.read_record(key)
        if record is None or record.tombstone:
            return None
        return record.value, record.aux

    def read_record(self, key: BitKey) -> LogRecord | None:
        """The latest record version (including tombstones), or None."""
        address = self.index.lookup(key)
        if address == NULL_ADDRESS:
            return None
        return self.log.get(address)

    def contains(self, key: BitKey) -> bool:
        record = self.read_record(key)
        return record is not None and not record.tombstone

    def upsert(self, key: BitKey, value: Value, aux: int = 0) -> None:
        """Blind write: install (value, aux) as the key's latest version."""
        while True:
            address = self.index.lookup(key)
            if address != NULL_ADDRESS and self.log.is_mutable(address):
                self.log.update_in_place(address, value, aux)
                record = self.log.get(address)
                record.tombstone = False
                break
            record = LogRecord(key, value, aux, prev_address=address)
            new_address = self.log.append(record)
            if self.index.try_update(key, address, new_address):
                break
        self._track(key, present=True)

    def rmw(self, key: BitKey,
            update: Callable[[Value | None, int], tuple[Value, int]]) -> tuple[Value, int]:
        """Read-modify-write: ``update(old_value_or_None, old_aux)`` returns
        the new (value, aux); retried on index races. Returns the new pair."""
        while True:
            address = self.index.lookup(key)
            if address != NULL_ADDRESS:
                old = self.log.get(address)
                old_value = None if old.tombstone else old.value
                new_value, new_aux = update(old_value, old.aux)
                if self.log.is_mutable(address):
                    self.log.update_in_place(address, new_value, new_aux)
                    old.tombstone = False
                    self._track(key, present=True)
                    return new_value, new_aux
            else:
                new_value, new_aux = update(None, 0)
            record = LogRecord(key, new_value, new_aux, prev_address=address)
            new_address = self.log.append(record)
            if self.index.try_update(key, address, new_address):
                self._track(key, present=True)
                return new_value, new_aux

    def delete(self, key: BitKey) -> bool:
        """Tombstone a key; returns whether it was present."""
        address = self.index.lookup(key)
        if address == NULL_ADDRESS:
            return False
        record = LogRecord(key, self.log.get(address).value, 0,
                           prev_address=address, tombstone=True)
        new_address = self.log.append(record)
        while not self.index.try_update(key, address, new_address):
            address = self.index.lookup(key)
        self._track(key, present=False)
        return True

    def try_cas(self, key: BitKey, expected_value: Value, expected_aux: int,
                new_value: Value, new_aux: int) -> bool:
        """Atomic (value, aux) swap on the latest version (§5.3, §7).

        Only succeeds when the latest version is in the mutable region and
        still holds the expected pair; callers fall back to ``upsert``-style
        RCU (or retry) on failure, as the FastVer worker loop does.
        """
        address = self.index.lookup(key)
        if address == NULL_ADDRESS:
            COUNTERS.cas_attempts += 1
            COUNTERS.cas_failures += 1
            return False
        if not self.log.is_mutable(address):
            # RCU path: append a copy and CAS the index instead.
            old = self.log.get(address)
            if old.tombstone or old.value != expected_value or old.aux != expected_aux:
                COUNTERS.cas_attempts += 1
                COUNTERS.cas_failures += 1
                return False
            record = LogRecord(key, new_value, new_aux, prev_address=address)
            new_address = self.log.append(record)
            return self.index.try_update(key, address, new_address)
        record = self.log.get(address)
        if record.tombstone:
            COUNTERS.cas_attempts += 1
            COUNTERS.cas_failures += 1
            return False
        return compare_and_swap_pair(record, expected_value, expected_aux,
                                     new_value, new_aux, self.contention)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan_from(self, start: BitKey, count: int) -> list[tuple[BitKey, Value, int]]:
        """The next ``count`` live data records in key order (YCSB-E)."""
        out: list[tuple[BitKey, Value, int]] = []
        for key in self.directory.range_from(start, count):
            pair = self.read(key)
            if pair is not None:
                out.append((key, pair[0], pair[1]))
        return out

    # ------------------------------------------------------------------
    # Enumeration (verification scans, checkpoints)
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[BitKey, Value, int]]:
        """All live (key, value, aux) triples, index order."""
        for key, address in list(self.index.items()):
            record = self.log.get(address)
            if not record.tombstone:
                yield key, record.value, record.aux

    def __len__(self) -> int:
        return len(self.index)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _track(self, key: BitKey, present: bool) -> None:
        if self.ordered_width is None or key.length != self.ordered_width:
            return
        if present:
            self.directory.add(key)
        else:
            self.directory.remove(key)

    def validate_chain(self, key: BitKey, limit: int = 64) -> list[int]:
        """Walk the version chain of a key (debug/diagnostic helper)."""
        addresses: list[int] = []
        address = self.index.lookup(key)
        while address != NULL_ADDRESS and len(addresses) < limit:
            addresses.append(address)
            record = self.log.get(address)
            if record.prev_address == address:
                raise StoreError(f"self-referential chain at address {address}")
            address = record.prev_address
        return addresses

"""FASTER-style epoch protection (Chandramouli et al., SIGMOD 2018).

FASTER coordinates lazily-synchronized threads with an epoch framework: a
global epoch counter, a per-thread table of the last epoch each thread has
observed, and *trigger actions* that run once every thread has moved past
the epoch in which the action was registered. FastVer reuses the framework
to synchronize verification epochs with CPR checkpoints (§7).

Our workers are logical (the simulated executor drives them round-robin),
but the protocol is implemented faithfully: a drain action registered at
epoch ``e`` runs only after every registered thread has refreshed to an
epoch ``> e``, which is exactly the safety property FASTER relies on to
reclaim memory and flip checkpoint phases.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ProtocolError

#: Epoch value meaning "thread is not currently protecting anything".
UNPROTECTED = 0


class LightEpoch:
    """Global epoch table with trigger (drain) actions."""

    def __init__(self):
        self.current = 1
        self._thread_epochs: dict[int, int] = {}
        self._drain_list: list[tuple[int, Callable[[], None]]] = []

    # ------------------------------------------------------------------
    # Thread registration
    # ------------------------------------------------------------------
    def register(self, thread_id: int) -> None:
        """Announce a thread to the framework (idempotent)."""
        self._thread_epochs.setdefault(thread_id, UNPROTECTED)

    def unregister(self, thread_id: int) -> None:
        """Remove a thread; it must not be holding protection."""
        if self._thread_epochs.get(thread_id, UNPROTECTED) != UNPROTECTED:
            raise ProtocolError(f"thread {thread_id} unregistered while protected")
        self._thread_epochs.pop(thread_id, None)

    # ------------------------------------------------------------------
    # Protection
    # ------------------------------------------------------------------
    def protect(self, thread_id: int) -> int:
        """Enter (or refresh) protection: observe the current epoch."""
        if thread_id not in self._thread_epochs:
            raise ProtocolError(f"thread {thread_id} is not registered")
        self._thread_epochs[thread_id] = self.current
        self._try_drain()
        return self.current

    def unprotect(self, thread_id: int) -> None:
        """Leave protection; the thread no longer pins any epoch."""
        if thread_id not in self._thread_epochs:
            raise ProtocolError(f"thread {thread_id} is not registered")
        self._thread_epochs[thread_id] = UNPROTECTED
        self._try_drain()

    # ------------------------------------------------------------------
    # Epoch advancement
    # ------------------------------------------------------------------
    def bump(self, on_drain: Callable[[], None] | None = None) -> int:
        """Advance the global epoch, optionally registering a drain action.

        The action fires once no registered thread can still be inside the
        pre-bump epoch (i.e., the *safe* epoch has passed it).
        """
        prior = self.current
        self.current = prior + 1
        if on_drain is not None:
            self._drain_list.append((prior, on_drain))
        self._try_drain()
        return self.current

    @property
    def safe_epoch(self) -> int:
        """The largest epoch strictly below every protected thread's view."""
        protected = [e for e in self._thread_epochs.values() if e != UNPROTECTED]
        if not protected:
            return self.current - 1
        return min(protected) - 1

    def _try_drain(self) -> None:
        safe = self.safe_epoch
        ready = [a for e, a in self._drain_list if e <= safe]
        self._drain_list = [(e, a) for e, a in self._drain_list if e > safe]
        for action in ready:
            action()

    @property
    def pending_drains(self) -> int:
        return len(self._drain_list)

"""FASTER's hybrid-log record allocator, in Python.

The hybrid log is one logical address space split into three regions:

* **mutable tail** (``addr >= read_only_address``): records are updated in
  place;
* **read-only** (``head_address <= addr < read_only_address``): records are
  immutable in memory — updates copy to the tail (read-copy-update);
* **stable** (``addr < head_address``): records have been flushed to disk
  and reading them performs (simulated) I/O.

Addresses are allocated monotonically; each record carries the address of
the *previous* version of the same key, forming the per-key chain FASTER's
hash index points into. FastVer stores its 64-bit aux word inline in the
record (§7), so a value+aux update is one record touch.

The "disk" is a :class:`LogDevice` holding serialized records; a real file
can back it, but the default is an in-memory device so tests are hermetic.
"""

from __future__ import annotations

from repro.core.keys import BitKey
from repro.core.records import Value, decode_value, encode_value
from repro.errors import (
    AvailabilityError,
    CorruptPageError,
    StoreError,
    TornWriteError,
    TransientIOError,
)
from repro.instrument import COUNTERS

#: Address value meaning "no previous version".
NULL_ADDRESS = -1


class LogRecord:
    """One record version in the log."""

    __slots__ = ("key", "value", "aux", "prev_address", "tombstone")

    def __init__(self, key: BitKey, value: Value, aux: int,
                 prev_address: int = NULL_ADDRESS, tombstone: bool = False):
        self.key = key
        self.value = value
        self.aux = aux
        self.prev_address = prev_address
        self.tombstone = tombstone

    def serialize(self) -> bytes:
        """Explicit binary encoding used when the record moves to disk."""
        key_enc = self.key.to_bytes()
        val_enc = encode_value(self.value)
        flags = 1 if self.tombstone else 0
        return b"".join(
            (
                flags.to_bytes(1, "big"),
                self.aux.to_bytes(8, "big"),
                self.prev_address.to_bytes(8, "big", signed=True),
                len(key_enc).to_bytes(4, "big"),
                key_enc,
                len(val_enc).to_bytes(4, "big"),
                val_enc,
            )
        )

    @classmethod
    def deserialize(cls, blob: bytes) -> "LogRecord":
        if len(blob) < 21:
            raise StoreError("truncated log record")
        flags = blob[0]
        aux = int.from_bytes(blob[1:9], "big")
        prev = int.from_bytes(blob[9:17], "big", signed=True)
        klen = int.from_bytes(blob[17:21], "big")
        key = BitKey.from_encoded(blob[21:21 + klen])
        off = 21 + klen
        vlen = int.from_bytes(blob[off:off + 4], "big")
        value = decode_value(blob[off + 4:off + 4 + vlen])
        return cls(key, value, aux, prev, tombstone=bool(flags & 1))


class LogDevice:
    """The stable-storage backing of the log (a page of bytes per address).

    When a :class:`~repro.faults.FaultPlan` is attached via :attr:`faults`,
    writes can tear (persist only a prefix — the power-loss analogue) and
    reads can fail transiently. Torn writes are *silent* here, exactly as
    on real hardware; it is the flush paths' read-back verification that
    turns them into typed :class:`~repro.errors.TornWriteError`.
    """

    def __init__(self):
        self._pages: dict[int, bytes] = {}
        self.writes = 0
        self.reads = 0
        self.faults = None

    def write(self, address: int, blob: bytes) -> None:
        self.writes += 1
        if self.faults is not None and self.faults.fire("device.write.torn"):
            blob = blob[:len(blob) // 2]
        self._pages[address] = blob

    def read(self, address: int) -> bytes:
        self.reads += 1
        if self.faults is not None and self.faults.fire("device.read.transient"):
            raise TransientIOError(
                f"transient read failure at address {address}")
        if self.faults is not None and address in self._pages \
                and self.faults.fire("device.read.bitrot"):
            # Latent sector corruption: the flip is *persisted* — the page
            # itself rots, so every later read (including recovery scans)
            # sees the same wrong bytes. Silent by design: turning rot into
            # a typed error is the scrubber's and the verifier's job, never
            # the device's. The flipped offset lands in the tail of the
            # page (the value encoding) so the record usually still
            # decodes — the dangerous kind of rot.
            blob = self._pages[address]
            if blob:
                pos = len(blob) - 1 - (address % max(1, len(blob) // 3))
                self._pages[address] = (blob[:pos]
                                        + bytes([blob[pos] ^ 0x20])
                                        + blob[pos + 1:])
        try:
            return self._pages[address]
        except KeyError:
            raise StoreError(f"address {address} not on device") from None

    def read_with_retry(self, address: int, attempts: int = 3) -> bytes:
        """Read a page, absorbing transient failures with bounded retries."""
        for attempt in range(attempts):
            try:
                return self.read(address)
            except TransientIOError:
                if attempt == attempts - 1:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def __contains__(self, address: int) -> bool:
        return address in self._pages

    def __len__(self) -> int:
        return len(self._pages)


class HybridLog:
    """The three-region allocator."""

    def __init__(self, mutable_fraction: float = 0.9,
                 memory_budget_records: int = 1 << 30,
                 device: LogDevice | None = None):
        if not 0.0 < mutable_fraction <= 1.0:
            raise ValueError("mutable_fraction must be in (0, 1]")
        self._records: dict[int, LogRecord] = {}
        self._next_address = 0
        self.head_address = 0          # below: on device only
        self.read_only_address = 0     # below: immutable in memory
        self.mutable_fraction = mutable_fraction
        self.memory_budget_records = memory_budget_records
        self.device = device if device is not None else LogDevice()

    # ------------------------------------------------------------------
    # Allocation and access
    # ------------------------------------------------------------------
    @property
    def tail_address(self) -> int:
        return self._next_address

    def append(self, record: LogRecord) -> int:
        """Allocate the record at the tail; returns its address."""
        address = self._next_address
        self._next_address += 1
        self._records[address] = record
        COUNTERS.store_writes += 1
        if len(self._records) > self.memory_budget_records:
            self._shift_addresses()
        return address

    def get(self, address: int) -> LogRecord:
        """Fetch the record at an address, reading from disk if evicted."""
        COUNTERS.store_reads += 1
        record = self._records.get(address)
        if record is not None:
            return record
        if address < 0 or address >= self._next_address:
            raise StoreError(f"address {address} was never allocated")
        blob = self.device.read_with_retry(address)
        try:
            return LogRecord.deserialize(blob)
        except (StoreError, ValueError) as exc:
            # Structural rot: the persisted bytes no longer decode. Typed
            # as a detection (rot and tampering are indistinguishable on
            # untrusted storage), never as a raw parse error.
            raise CorruptPageError(
                f"page at address {address} failed structural decode: "
                f"{exc}") from exc

    def is_mutable(self, address: int) -> bool:
        return address >= self.read_only_address

    def in_memory(self, address: int) -> bool:
        return address >= self.head_address

    def update_in_place(self, address: int, value: Value, aux: int) -> None:
        """Mutate a record in the mutable region (FASTER's hot path)."""
        if not self.is_mutable(address):
            raise StoreError(f"address {address} is not in the mutable region")
        record = self._records[address]
        record.value = value
        record.aux = aux
        COUNTERS.store_writes += 1

    # ------------------------------------------------------------------
    # Region management
    # ------------------------------------------------------------------
    def _shift_addresses(self) -> None:
        """Advance head/read-only offsets to respect the memory budget."""
        in_memory = self._next_address - self.head_address
        excess = in_memory - self.memory_budget_records
        if excess > 0:
            self.flush_until(self.head_address + excess)
        mutable_target = int(self.memory_budget_records * self.mutable_fraction)
        new_ro = max(self.read_only_address, self._next_address - mutable_target)
        self.read_only_address = min(new_ro, self._next_address)

    def _write_page(self, address: int, blob: bytes, attempts: int = 3) -> None:
        """Write one page and verify it by read-back (the fsync+checksum
        discipline). A torn write is retried in place; if it stays torn the
        page is left as-is on the device and :class:`TornWriteError`
        surfaces — a typed availability failure, never silent corruption.
        """
        for _ in range(attempts):
            self.device.write(address, blob)
            try:
                if self.device.read(address) == blob:
                    return
            except TransientIOError:
                continue  # could not confirm; rewrite and re-verify
        raise TornWriteError(
            f"page {address} failed read-back verification after "
            f"{attempts} attempts")

    def flush_until(self, new_head: int) -> int:
        """Write all records below ``new_head`` to the device and drop them.

        Returns the number of records flushed. Used by the memory budget
        and by CPR checkpoints. Crash-consistent: pages are written in
        address order with read-back verification, and on a partial-flush
        or torn-write failure the flushed *prefix* is committed (head
        advances to it) before the typed availability error propagates —
        un-flushed records stay in memory, so nothing is lost and a retry
        resumes where the failure hit.
        """
        new_head = min(new_head, self._next_address)
        flushed = 0
        faults = self.device.faults
        address = self.head_address
        try:
            for address in range(self.head_address, new_head):
                record = self._records.get(address)
                if record is None:
                    continue
                if faults is not None and faults.fire("device.flush.partial"):
                    raise TransientIOError(
                        f"flush aborted before address {address} "
                        f"(simulated partial flush)")
                self._write_page(address, record.serialize())
                del self._records[address]
                flushed += 1
        except AvailabilityError:
            self._mark_flushed(address)
            raise
        self._mark_flushed(new_head)
        return flushed

    def _mark_flushed(self, new_head: int) -> None:
        """Commit the verified flushed prefix: head may only advance."""
        self.head_address = max(self.head_address, new_head)
        self.read_only_address = max(self.read_only_address, self.head_address)

    def flush_all(self) -> int:
        """Flush every in-memory record (verified), keeping records
        readable — flushed pages are re-read from the device on demand."""
        flushed = 0
        faults = self.device.faults
        for address in sorted(self._records):
            if faults is not None and faults.fire("device.flush.partial"):
                raise TransientIOError(
                    f"flush aborted before address {address} "
                    f"(simulated partial flush)")
            self._write_page(address, self._records[address].serialize())
            flushed += 1
        return flushed

    @property
    def in_memory_count(self) -> int:
        return len(self._records)

"""The supervisor: watchdog, recovery ladder, and degraded-mode exit.

The serving layer's availability story (docs/PROTOCOL.md, "Transport,
overload, and degraded-mode semantics") hinges on one invariant: after
*any* availability failure of the verifier path, no further data
operation touches the database until a recovery has completed — a lost
log batch would otherwise unbalance the epoch's set hashes at the next
close. The supervisor owns that gate:

* **Watchdog** — detects a verifier that rebooted *out of band* (no
  operation failed, but the enclave's reboot counter moved, meaning its
  volatile state is gone) and flips the server into degraded mode before
  the next request can hit the empty enclave.
* **Recovery ladder** — paced by a jittered
  :class:`~repro.backoff.BackoffPolicy`, each heal attempt runs
  checkpoint recovery (:meth:`FastVer.recover`) and falls back to lenient
  log-scan salvage when the checkpoint itself is damaged
  (:class:`~repro.errors.RecoveryError`). The ``server.supervisor.stall``
  fault point models an attempt that dies before reaching the database.
* **Degraded-mode exit** — after the database is healthy again, the
  queued degraded-mode writes are replayed (idempotently: their original
  client nonces travel with them) and only then does the server return to
  normal service and count a recovery.
"""

from __future__ import annotations

from repro.backoff import BackoffPolicy
from repro.errors import AvailabilityError, RecoveryError
from repro.instrument import COUNTERS


class Supervisor:
    """Heals the verifier behind a :class:`FastVerServer`."""

    def __init__(self, server, policy: BackoffPolicy):
        self.server = server
        self.policy = policy
        #: Successful heal sessions (normal service restored).
        self.heals = 0
        #: Heal sessions that fell back to lenient salvage.
        self.salvages = 0
        #: Individual heal attempts that failed (stall or recover error).
        self.failed_attempts = 0
        self._expected_reboots = server.db.enclave.reboots

    # ------------------------------------------------------------------
    def check_watchdog(self) -> None:
        """Flag an out-of-band verifier reboot before it can serve a
        request from empty volatile state."""
        if self.server.db.enclave.reboots != self._expected_reboots:
            self.server._enter_degraded("verifier rebooted out of band")

    def note_reboots(self) -> None:
        """Resynchronize the watchdog (recovery legitimately reboots)."""
        self._expected_reboots = self.server.db.enclave.reboots

    # ------------------------------------------------------------------
    def try_heal(self) -> bool:
        """One bounded heal session. Returns True when normal service is
        restored; False leaves the server degraded for a later session
        (every incoming request starts a new one, breaker permitting)."""
        server = self.server
        for delay in self.policy.delays():
            self.policy.sleep(delay)
            if server.faults is not None and \
                    server.faults.fire("server.supervisor.stall"):
                self.failed_attempts += 1
                continue
            db = server.db
            try:
                if db.last_checkpoint is None:
                    raise RecoveryError("no checkpoint to recover from")
                db.recover(db.last_checkpoint)
            except AvailabilityError:
                self.failed_attempts += 1
                continue
            except RecoveryError:
                # The checkpoint itself is unusable: lenient salvage. A
                # transient failure during salvage keeps us degraded.
                try:
                    server._salvage()
                    self.salvages += 1
                except AvailabilityError:
                    self.failed_attempts += 1
                    continue
            else:
                # Checkpoint recovery rolled the database back to its last
                # durable state; un-checkpointed serving-layer bookkeeping
                # (provisional caches, non-durable dedup entries) must
                # follow it.
                server._rollback_provisional()
            self.note_reboots()
            if not server._replay_degraded_writes():
                self.failed_attempts += 1
                continue
            self.heals += 1
            COUNTERS.recovered += 1
            server._exit_degraded()
            return True
        return False

"""The supervisor: watchdog, recovery ladder, and degraded-mode exit.

The serving layer's availability story (docs/PROTOCOL.md, "Transport,
overload, and degraded-mode semantics") hinges on one invariant: after
*any* availability failure of the verifier path, no further data
operation touches the database until a recovery has completed — a lost
log batch would otherwise unbalance the epoch's set hashes at the next
close. The supervisor owns that gate:

* **Watchdog** — detects a verifier that rebooted *out of band* (no
  operation failed, but the enclave's reboot counter moved, meaning its
  volatile state is gone) and flips the server into degraded mode before
  the next request can hit the empty enclave.
* **Recovery ladder** — paced by a jittered
  :class:`~repro.backoff.BackoffPolicy`, each heal attempt climbs the
  rungs in cost order: verified record-level **repair** when the damage
  is latent quarantined rot and the verifier session is clean (the
  surgical rung — see :mod:`repro.scrub`), else **failover** to the warm
  standby when one is attached and healthy (the standby already holds
  every acknowledged write), else **checkpoint restore**
  (:meth:`FastVer.recover`), else lenient **log-scan salvage** when the
  checkpoint itself is damaged (:class:`~repro.errors.RecoveryError`).
  When salvage *also* reports the state unrecoverable, the ladder
  escalates with a typed :class:`~repro.errors.UnrecoverableError`
  carrying the fault seed and trace digest — the operator's repro
  handle. The ``server.supervisor.stall`` fault point models an attempt
  that dies before reaching the database.
* **Degraded-mode exit** — after the database is healthy again, the
  queued degraded-mode writes are replayed (idempotently: their original
  client nonces travel with them) and only then does the server return to
  normal service and count a recovery.

Each rung charges simulated ticks proportional to the work it really
does (per record restored/salvaged, per entry drained at promotion), so
recovery-time objectives are measurable: ``last_recovery_ticks`` holds
the cost of the latest successful heal session.
"""

from __future__ import annotations

from repro.backoff import BackoffPolicy
from repro.errors import (
    AvailabilityError,
    IntegrityError,
    RecoveryError,
    UnrecoverableError,
)
from repro.instrument import COUNTERS
from repro.obs import TRACER


class Supervisor:
    """Heals the verifier behind a :class:`FastVerServer`."""

    def __init__(self, server, policy: BackoffPolicy):
        self.server = server
        self.policy = policy
        #: Successful heal sessions (normal service restored).
        self.heals = 0
        #: Heal sessions that fell back to lenient salvage.
        self.salvages = 0
        #: Heal sessions resolved by promoting the warm standby.
        self.failovers = 0
        #: Individual heal attempts that failed (stall or recover error).
        self.failed_attempts = 0
        #: Simulated ticks the latest successful heal session cost.
        self.last_recovery_ticks = 0.0
        #: Which rung resolved the latest successful heal attempt.
        self._last_rung: str | None = None
        self._expected_reboots = server.db.enclave.reboots

    # ------------------------------------------------------------------
    def check_watchdog(self) -> None:
        """Flag an out-of-band verifier reboot before it can serve a
        request from empty volatile state."""
        if self.server.db.enclave.reboots != self._expected_reboots:
            self.server._enter_degraded("verifier rebooted out of band")

    def note_reboots(self) -> None:
        """Resynchronize the watchdog (recovery legitimately reboots)."""
        self._expected_reboots = self.server.db.enclave.reboots

    # ------------------------------------------------------------------
    def try_heal(self) -> bool:
        """One bounded heal session. Returns True when normal service is
        restored; False leaves the server degraded for a later session
        (every incoming request starts a new one, breaker permitting).
        Raises :class:`UnrecoverableError` when the bottom rung of the
        ladder reports the state unrecoverable — retrying cannot help."""
        server = self.server
        t0 = server.now
        slo = getattr(server, "_slo", None)
        # SLO advisory: with an objective already burning, the polite
        # first backoff delay is pure added downtime — skip straight to
        # the first attempt and let later attempts pace normally.
        urgent = slo is not None and bool(slo.firing())
        for attempt, delay in enumerate(self.policy.delays()):
            self.policy.sleep(0.0 if urgent and attempt == 0 else delay)
            if server.faults is not None and \
                    server.faults.fire("server.supervisor.stall"):
                self.failed_attempts += 1
                continue
            if not self._heal_once():
                continue
            self.note_reboots()
            if not server._replay_degraded_writes():
                self.failed_attempts += 1
                continue
            self.heals += 1
            COUNTERS.recovered += 1
            server._integrity_dirty = False
            self.last_recovery_ticks = server.now - t0
            COUNTERS.recovery_ticks += int(round(self.last_recovery_ticks))
            server._exit_degraded()
            TRACER.record("heal", server.now, None, rung=self._last_rung,
                          ticks=round(self.last_recovery_ticks, 1),
                          slo_pressure=urgent)
            return True
        return False

    def proactive_repair(self) -> bool:
        """SLO-advised repair pump: the ``scrub_quarantine`` objective is
        burning (the quarantine is not converging on its own), so run the
        surgical rung *now* — from normal service, without waiting for a
        heal session — and let the burn rate fall as the quarantine
        drains. Returns True when a repair pass ran and emptied it."""
        if self.server.degraded:
            return False  # a heal session owns recovery; don't race it
        if not self._try_repair():
            return False
        TRACER.record("heal", self.server.now, None, rung="repair",
                      ticks=0.0, slo_pressure=True, proactive=True)
        return True

    def _heal_once(self) -> bool:
        """One rung-climbing attempt: repair, else failover, else
        checkpoint restore, else lenient salvage. True when the database
        is healthy again."""
        server = self.server
        cfg = server.config
        repl = server.replication
        # Rung 0: verified record-level repair. Cheapest by orders of
        # magnitude — it touches only the quarantined pages, not the
        # store — but narrow: it applies when the damage is *latent*
        # (scrubber-quarantined pages or suspect keys, found while the
        # verifier stayed clean and the enclave stayed up). An alarm the
        # verifier actually raised, or a dead enclave, means session
        # state is suspect and the heavier rungs own the heal.
        if self._try_repair():
            self._last_rung = "repair"
            return True
        # Rung 1: failover. The warm standby already holds every
        # acknowledged write, so promotion costs only the drained tail —
        # this is the RTO argument for replication.
        if repl is not None and repl.can_promote():
            try:
                drained = repl.promote()
            except AvailabilityError:
                self.failed_attempts += 1
                return False
            self.failovers += 1
            self._last_rung = "failover"
            server._advance(cfg.promote_base_ticks
                            + drained * cfg.promote_tick_per_entry)
            # No _rollback_provisional here: the promoted state holds
            # every operation the idempotency table ever recorded.
            return True
        db = server.db
        # Rung 2: checkpoint restore in place.
        try:
            if db.last_checkpoint is None:
                raise RecoveryError("no checkpoint to recover from")
            db.recover(db.last_checkpoint)
        except RecoveryError as restore_exc:
            # Rung 3: the checkpoint is unusable — lenient log-scan
            # salvage. A RecoveryError *here too* means the ladder is out
            # of rungs; escalate with the repro handle instead of
            # retrying an attempt that cannot succeed.
            try:
                server._salvage()
            except RecoveryError as exc:
                faults = server.faults
                seed = getattr(faults, "seed", None)
                trace = faults.trace_digest() if faults is not None else "-"
                raise UnrecoverableError(
                    f"recovery ladder exhausted: "
                    f"restore failed ({restore_exc}); "
                    f"salvage failed ({exc}); no promotable standby; "
                    f"fault seed={seed} trace={trace}") from exc
            except AvailabilityError:
                self.failed_attempts += 1
                return False
            self.salvages += 1
            self._last_rung = "salvage"
            server._advance(
                cfg.salvage_base_ticks
                + len(server.db.store) * cfg.salvage_tick_per_record)
        except AvailabilityError:
            self.failed_attempts += 1
            return False
        else:
            # Checkpoint recovery rolled the database back to its last
            # durable state; un-checkpointed serving-layer bookkeeping
            # (provisional caches, non-durable dedup entries) must
            # follow it.
            self._last_rung = "restore"
            server._rollback_provisional()
            server._advance(
                cfg.restore_base_ticks
                + len(db.store) * cfg.restore_tick_per_record)
            # A restore re-reads the same device pages whose rot may have
            # tripped the alarm; repair the suspects now or the next
            # touch restarts the whole ladder.
            try:
                server._drain_suspects()
            except IntegrityError:
                # A repair courier lied; the forged pages stay
                # quarantined (and alarmed on touch) — the restore
                # itself still stands.
                server._integrity_dirty = True
        if repl is not None:
            # The healed primary's timeline rolled back past writes the
            # standby already applied; the old replica no longer extends
            # it. Rebuild the pair from the healed state.
            repl.resync()
        return True

    def _try_repair(self) -> bool:
        """Rung 0: resolve the heal by repairing quarantined pages in
        place. Only when the damage is latent — scrub quarantine or
        suspect keys with the verifier session itself clean and the
        enclave up — and only if every quarantined page actually ends up
        repaired; anything less falls through to the heavier rungs."""
        server = self.server
        scrub = server.scrubber()
        if scrub is None or server._integrity_dirty:
            return False
        db = server.db
        probe = db.enclave.probe()
        if not (probe["alive"] and probe["loaded"]):
            return False
        if not db.store.quarantined_addresses and not server._suspect_keys:
            return False
        try:
            if server._suspect_keys:
                server._drain_suspects()
            if db.store.quarantined_addresses:
                scrub._repair_quarantined()
        except IntegrityError:
            server._integrity_dirty = True
            return False
        return not db.store.quarantined_addresses

"""A circuit breaker around the enclave call gate.

Classic three-state machine (Nygard's *Release It!* pattern, as deployed
in front of every RPC fleet):

* **closed** — requests flow; consecutive downstream failures are counted.
* **open** — after ``threshold`` consecutive failures the breaker trips:
  requests fail fast with :class:`~repro.errors.CircuitOpenError` (reads
  may still be served from the degraded cache) instead of hammering a
  verifier that is down, wedged, or mid-recovery.
* **half-open** — once ``cooldown`` ticks of the server's simulated clock
  have passed, exactly one probe request is let through. Success closes
  the breaker; failure re-opens it and restarts the cooldown.

The breaker is availability machinery only: it never sees, and cannot
influence, integrity verdicts (an :class:`~repro.errors.IntegrityError`
is not a *failure* of the verifier — it is the verifier working).
"""

from __future__ import annotations

from repro.instrument import COUNTERS

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker over a simulated clock."""

    def __init__(self, threshold: int = 3, cooldown: float = 20.0):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown cannot be negative")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.trips = 0          # closed/half-open -> open transitions
        self.probes = 0         # half-open probe requests admitted

    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """May a request proceed to the verifier at time ``now``?

        An open breaker transitions to half-open (admitting this caller as
        the probe) once the cooldown has elapsed. The caller must report
        the probe's outcome via :meth:`record_success` /
        :meth:`record_failure`, which resolves the half-open state.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.opened_at is not None and \
                    now - self.opened_at >= self.cooldown:
                self.state = HALF_OPEN
                self.probes += 1
                return True
            COUNTERS.broken += 1
            return False
        # HALF_OPEN: one probe is already in flight this cooldown window.
        COUNTERS.broken += 1
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or \
                self.consecutive_failures >= self.threshold:
            self.force_open(now)

    def force_open(self, now: float) -> None:
        """Trip the breaker immediately (also the injection point for the
        ``server.breaker.trip`` fault)."""
        if self.state != OPEN:
            self.trips += 1
        self.state = OPEN
        self.opened_at = now

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "probes": self.probes,
        }

"""The deadline-aware request pipeline in front of :class:`FastVer`.

This is the front end the paper's deployment model assumes (§2, Figure 1:
an untrusted host mediating between many clients and a small trusted
verifier) and the ROADMAP's traffic target requires: a request passes
through **admission** (bounded queue; overload is shed with a typed
error, never silently dropped), a **deadline** check against the server's
simulated clock, an **idempotency table** keyed by the client's own
nonces (so a retried operation is answered from the recorded result
instead of being re-applied or fed to the verifier's anti-replay window
twice), a **circuit breaker** around the enclave call gate, and finally
execution against the database. Failures flip the server into **degraded
mode**: reads are served from the cache of checkpoint-durable verified
values, writes are queued for idempotent replay, and the supervisor heals
the verifier in the background of subsequent requests.

Everything here is untrusted availability machinery. It cannot weaken
integrity: results still carry verifier receipts, degraded reads are
explicitly marked as such, and a lying pipeline is caught by exactly the
checks that catch a lying host.

Time is simulated: ``server.now`` advances per processed request and per
backoff sleep, which keeps chaos soaks deterministic while still giving
deadlines, breaker cooldowns, and retry pacing real meaning.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace

from repro.backoff import BackoffPolicy
from repro.core.fastver import FastVer
from repro.core.protocol import GetRequest, PutRequest
from repro.errors import (
    AvailabilityError,
    CircuitOpenError,
    DeadlineExceededError,
    DegradedModeError,
    IntegrityError,
    LeaseExpiredError,
    NotLeaderError,
    OverloadError,
    ProtocolError,
    WireDropError,
)
from repro.instrument import COUNTERS
from repro.obs import LATENCIES, TRACER
from repro.obs.slo import SloConfig, SloEngine
from repro.server.breaker import OPEN, CircuitBreaker
from repro.server.supervisor import Supervisor
from repro.store.recovery import rebuild_index_from_log


@dataclass
class ServerConfig:
    """Serving-layer tuning knobs (all times in simulated ticks)."""

    #: Admission queue bound; submissions beyond it are shed.
    queue_capacity: int = 64
    #: Deadline granted to a request that does not bring its own.
    default_deadline: float = 200.0
    #: Consecutive verifier failures before the breaker opens.
    breaker_threshold: int = 3
    #: Ticks an open breaker waits before admitting a half-open probe.
    breaker_cooldown: float = 30.0
    #: Degraded-mode write queue bound (beyond it, writes are shed).
    degraded_write_capacity: int = 256
    #: LRU capacity of the verified-read cache serving degraded reads.
    read_cache_capacity: int = 65536
    #: Idempotency-table capacity (completed request results).
    completed_capacity: int = 8192
    #: Simulated service time charged per processed request.
    time_per_request: float = 1.0
    # --- group-commit batching (opt-in; see docs/PROTOCOL.md) ---------
    #: Stage queued operations into per-verifier-shard batches and settle
    #: each batch in a single multi-shard ecall (receipt-synchronous group
    #: commit). Off by default: the legacy pump is byte-identical.
    group_commit: bool = False
    #: Flush a shard's batch once it holds this many operations.
    max_batch_ops: int = 8
    #: Flush a shard's batch once its oldest op has lingered this long.
    max_batch_ticks: float = 8.0
    # --- pipelined settlement (opt-in; requires group_commit) ---------
    #: Dispatch each shard flush as a pipelined ecall whose receipts
    #: stream back on subsequent pumps instead of settling inside the
    #: pump that flushed it — admission overlaps verification. Off by
    #: default: the receipt-synchronous pump is byte-identical.
    pipeline: bool = False
    #: Explicit bound on completions awaiting an epoch receipt. At the
    #: bound, new submissions are shed with OverloadError (typed
    #: backpressure); completions already in flight that push past it
    #: drop the *oldest* pending latency observation, counted by
    #: ``COUNTERS.settlement_overflow`` and traced — never silently.
    settlement_capacity: int = 1 << 16
    # --- latency-budget batch controller (opt-in; needs group_commit) -
    #: p99 verified-latency budget in ticks. When set, an AIMD
    #: controller adapts each shard's effective max_batch_ops /
    #: max_batch_ticks to chase this budget: grow while under, halve on
    #: breach. None keeps the static knobs above.
    latency_budget_p99: float | None = None
    #: Floor / ceiling the controller may move a shard's batch bound to.
    controller_min_batch: int = 1
    controller_max_batch: int = 256
    #: Additive increase per under-budget evaluation (ops).
    controller_grow_step: int = 4
    #: Multiplicative decrease per over-budget evaluation.
    controller_shrink_factor: float = 0.5
    #: Linger coupling: a shard's effective max_batch_ticks is this many
    #: ticks per op of its current batch bound, so a half-full batch
    #: never lingers past the window the ops bound was sized for.
    controller_ticks_per_op: float = 4.0
    #: Pacing/budget of one supervisor heal session (None = default).
    heal_backoff: BackoffPolicy | None = None
    # --- recovery-ladder cost model (simulated ticks per rung) --------
    #: Fixed cost of a checkpoint restore, plus a per-record scan cost.
    restore_base_ticks: float = 5.0
    restore_tick_per_record: float = 0.05
    #: Fixed cost of a lenient log-scan salvage, plus per-record cost.
    salvage_base_ticks: float = 10.0
    salvage_tick_per_record: float = 0.05
    #: Fixed cost of a failover promotion, plus a cost per drained
    #: (acknowledged-but-unshipped) log entry — the warm standby already
    #: holds everything else, which is the whole RTO argument.
    promote_base_ticks: float = 1.0
    promote_tick_per_entry: float = 0.02
    # --- background scrub & verified repair (repro.scrub) -------------
    #: Run the background scrubber one budgeted slice per pump. Off by
    #: default: with it off the pipeline is byte-identical to before.
    scrub_enabled: bool = False
    #: Device pages re-verified per scrub slice (the starvation bound:
    #: admission always outpaces the scrub walk). 3 pages at the default
    #: per-page cost keeps the steady-state tax under the 10% bar that
    #: BENCH_repair.json enforces; raise it to tighten rot-detection
    #: latency at the price of throughput.
    scrub_budget_pages: int = 3
    #: Simulated cost per scrubbed page.
    scrub_tick_per_page: float = 0.02
    #: Fixed + per-page cost of one verified record repair — the MTTR
    #: driver. Orders of magnitude under the restore/salvage bases
    #: above: that gap IS the self-healing argument (BENCH_repair.json
    #: quantifies it).
    repair_base_ticks: float = 0.1
    repair_tick_per_page: float = 0.1
    # --- SLO burn-rate engine (opt-in; see repro.obs.slo) -------------
    #: Declared service objectives. When set, an :class:`SloEngine`
    #: evaluates burn rates each epoch close (inside ``maintain()``),
    #: surfaces alerts via ``health()["slo"]`` and ``slo`` trace events,
    #: and advises the latency-budget controller (alert firing biases
    #: the AIMD shrink path) and the supervisor (quarantine alerts run a
    #: proactive repair pump). None keeps the server byte-identical to
    #: before — no evaluations, no counters, no trace events.
    slo: "SloConfig | None" = None


@dataclass
class ServerRequest:
    """The wire envelope: one client operation plus serving metadata."""

    kind: str                        # "get" | "put"
    op: GetRequest | PutRequest
    deadline: float
    worker: int = 0
    #: Leadership generation the client believes it is talking to; a
    #: mismatch after a failover earns a typed redirect (NotLeaderError)
    #: instead of silent service from a possibly-stale view.
    generation: int = 0
    #: Trace id for span events (repro.obs). Minted by the client SDK;
    #: requests submitted without one get :attr:`auto_trace` — derived
    #: from the idempotency key, so a retry of the same operation joins
    #: the same span.
    trace: str | None = None
    #: Simulated time this request was first admitted (stamped by the
    #: server; the anchor of the end-to-end verified-latency histogram).
    submitted_at: float | None = None
    #: Opt-in replica read: a get carrying a budget here may be served
    #: by a tailing standby as a *verified-stale* result, at most this
    #: many epochs behind the primary. None (the default) always routes
    #: to the primary.
    max_stale_epochs: int | None = None

    @property
    def client_id(self) -> int:
        return self.op.client_id

    @property
    def nonce(self) -> int:
        return self.op.nonce

    @property
    def dedup_key(self) -> tuple[int, int]:
        return (self.op.client_id, self.op.nonce)

    @property
    def auto_trace(self) -> str:
        """Fallback trace id: stable across retries of this operation."""
        return f"c{self.op.client_id}.n{self.op.nonce}"


@dataclass
class ServerResult:
    """What the server sends back over the wire."""

    payload: bytes | None
    nonce: int
    #: Served from the degraded cache: verified and checkpoint-durable,
    #: but possibly stale (see docs/PROTOCOL.md for the exact guarantee).
    degraded: bool = False
    #: Answered from the idempotency table (an earlier attempt applied).
    deduped: bool = False
    #: Leadership generation the answering server vouches for. Dedup and
    #: query replies are re-stamped with the *current* generation (an
    #: honest post-failover server vouches for its recorded results — they
    #: are durable across promotion by construction), so a regression here
    #: is always split-brain evidence, never a stale-but-honest record.
    generation: int = 0
    #: Served by a tailing standby as a verified-stale read: the value is
    #: covered by a completed set-hash verification at ``as_of_epoch``
    #: (primary epoch numbering) but may miss newer writes. Only returned
    #: for requests that opted in via ``max_stale_epochs``.
    stale: bool = False
    #: Primary epoch the serving standby last verified a marker for.
    as_of_epoch: int = 0
    #: How many epochs behind the primary that verification point was.
    stale_epochs: int = 0


@dataclass
class Ticket:
    """A submitted request's slot in the admission queue."""

    request: ServerRequest
    result: ServerResult | None = None
    error: Exception | None = None
    done: bool = False
    #: Simulated time this ticket entered a shard's open batch (group
    #: commit only; feeds the batch-residency histogram).
    staged_at: float | None = None


@dataclass
class _Completion:
    """Idempotency-table entry: the recorded outcome of an applied op."""

    result: ServerResult
    #: Covered by a checkpoint: survives recovery rollback.
    durable: bool = False


@dataclass
class _InFlightBatch:
    """A dispatched group commit whose receipts are still streaming back
    (``config.pipeline`` only). The ecall already ran — completions are
    recorded, state is applied — but the tickets resolve on a later
    pump, when the receipt stream delivers them. ``generation`` pins the
    leadership view at dispatch: settling under a newer generation
    rejects every ticket with ``NotLeaderError`` instead of vouching for
    receipts a deposed leader minted."""

    shard: int
    #: (ticket, result-or-None, per-op error-or-None), in batch order.
    entries: list[tuple[Ticket, ServerResult | None, Exception | None]]
    generation: int
    dispatched_at: float
    dispatched_pump: int


class FastVerServer:
    """The resilient serving layer around one :class:`FastVer`.

    ``salvage_hook``, when provided, is called with the list of
    ``(key_bits, payload)`` records a lenient log-scan salvage recovered,
    and returns the (possibly filtered) list to rebuild from — the chaos
    harness uses it to validate survivors against its oracle.
    """

    def __init__(self, db: FastVer, config: ServerConfig | None = None,
                 salvage_hook=None,
                 warm: list[tuple[int | bytes, bytes]] | None = None):
        self.db = db
        db._server = self
        self.config = config or ServerConfig()
        cfg = self.config
        self.now = 0.0
        self.faults = db.faults
        self.salvage_hook = salvage_hook
        self.breaker = CircuitBreaker(cfg.breaker_threshold,
                                      cfg.breaker_cooldown)
        heal = cfg.heal_backoff or BackoffPolicy(
            max_attempts=4, base_delay=2.0, max_delay=30.0, seed=1)
        heal.sleep_fn = self._advance
        self.supervisor = Supervisor(self, heal)
        self.queue: deque[Ticket] = deque()
        #: Degraded-mode write backlog, FIFO, deduplicated by nonce.
        self.degraded_writes: "OrderedDict[tuple[int, int], ServerRequest]" \
            = OrderedDict()
        #: Idempotency table: (client_id, nonce) -> recorded outcome.
        self.completed: "OrderedDict[tuple[int, int], _Completion]" \
            = OrderedDict()
        #: Verified values as of the last checkpoint (degraded-read tier).
        self.committed_reads: OrderedDict = OrderedDict()
        #: Verified values observed since the last checkpoint.
        self.provisional_reads: dict = {}
        self.degraded_since: float | None = None
        self.degraded_reason: str | None = None
        self.replayed_writes = 0
        #: Leadership generation; bumped by each failover promotion.
        self.generation = 0
        #: client_id -> FenceReceipt from the most recent promotion.
        self._fences: dict = {}
        #: Warm-standby replication, attached via :meth:`attach_standby`.
        self.replication = None
        #: Background scrubber (built lazily; rebound when the database
        #: or the replication group changes under it).
        self._scrubber = None
        #: An operation tripped the verifier's alarm since the last
        #: successful heal. Gates the supervisor's repair rung: surgical
        #: repair is for *latent* rot found quietly by the scrubber, not
        #: for a store the verifier has already condemned mid-flight.
        self._integrity_dirty = False
        #: Keys whose touches raised the alarm — after a restore, these
        #: are re-checked and surgically repaired so a rotted device page
        #: cannot drive a restore → touch → alarm → restore loop.
        self._suspect_keys: set = set()
        #: Group-commit staging: shard id -> open batch of tickets.
        self._shard_batches: dict[int, list[Ticket]] = {}
        #: shard id -> simulated time its open batch admitted its first op.
        self._shard_opened: dict[int, float] = {}
        #: (client_id, nonce) -> shard currently staging that operation.
        self._staged_keys: dict[tuple[int, int], int] = {}
        self.batches_flushed = 0
        self.batch_ops_flushed = 0
        #: Pipelined dispatches whose receipts have not streamed back yet
        #: (config.pipeline only); settled by later pumps FIFO.
        self._inflight: deque = deque()
        #: Monotone pump counter: an in-flight batch settles once the
        #: pump counter has moved past the pump that dispatched it.
        self._pump_seq = 0
        self.batches_pipelined = 0
        #: (trace, submitted_at) of completions whose epoch receipt is
        #: still pending — drained into the verified-latency histogram by
        #: the next successful epoch close. Explicitly bounded by
        #: config.settlement_capacity: submissions are shed at the bound
        #: and any overflow past it (work already admitted) drops the
        #: oldest observation with a counter bump and a trace event.
        self._awaiting_epoch: deque = deque()
        #: AIMD latency-budget controller (None unless configured).
        self._controller = None
        if cfg.latency_budget_p99 is not None and cfg.group_commit:
            from repro.server.controller import LatencyBudgetController
            self._controller = LatencyBudgetController(self)
        #: SLO burn-rate engine (None unless objectives are declared).
        self._slo = SloEngine(cfg.slo) if cfg.slo is not None else None
        #: bitkey() memo. The derivation is pure in the configured key
        #: width, so entries stay valid across recovery and salvage.
        self._bitkey_cache: OrderedDict = OrderedDict()
        self.bitkey_hits = 0
        self.bitkey_misses = 0
        for key, payload in (warm or []):
            self.committed_reads[db.data_key(key)] = payload
        self._trim_read_cache()

    # ==================================================================
    # Clock
    # ==================================================================
    def _advance(self, ticks: float) -> None:
        self.now += ticks

    def advance(self, ticks: float) -> None:
        """Let simulated time pass (tests drive deadlines through this)."""
        if ticks < 0:
            raise ValueError("time does not run backwards")
        self._advance(ticks)

    # ==================================================================
    # Wire API
    # ==================================================================
    #: bitkey() memo bound (entries are tiny; the bound only guards
    #: against pathological key churn).
    BITKEY_CACHE_CAPACITY = 65536

    def bitkey(self, key: int | bytes):
        """Map a client key to the data-width BitKey requests are signed
        over (stable across recovery and salvage — it only depends on the
        configured key width). Memoized: SDK clients derive the same key's
        BitKey once per operation, and at batched throughputs the hash
        derivation shows up ahead of the enclave in the host profile."""
        hit = self._bitkey_cache.get(key)
        if hit is not None:
            self._bitkey_cache.move_to_end(key)
            self.bitkey_hits += 1
            return hit
        self.bitkey_misses += 1
        derived = self.db.data_key(key)
        self._bitkey_cache[key] = derived
        if len(self._bitkey_cache) > self.BITKEY_CACHE_CAPACITY:
            self._bitkey_cache.popitem(last=False)
        return derived

    def submit(self, request: ServerRequest) -> Ticket:
        """Admission control: accept the request into the bounded queue or
        shed it with a typed error. Consults the wire fault point first —
        a dropped request was never admitted anywhere."""
        if request.trace is None:
            request.trace = request.auto_trace
        if self.faults is not None and \
                self.faults.fire("server.wire.request"):
            COUNTERS.wire_drops += 1
            TRACER.record("drop", self.now, request.trace, wire="request")
            raise WireDropError("request lost on the client->server wire")
        if len(self.queue) >= self.config.queue_capacity:
            COUNTERS.shed += 1
            TRACER.record("shed", self.now, request.trace,
                          reason="queue_full")
            raise OverloadError(
                f"admission queue full ({self.config.queue_capacity})")
        if len(self._awaiting_epoch) >= self.config.settlement_capacity:
            # Typed backpressure: the settlement queue is a real resource;
            # admitting more work at the bound would silently discard the
            # oldest pending receipt observation instead.
            COUNTERS.shed += 1
            TRACER.record("shed", self.now, request.trace,
                          reason="settlement_backlog")
            raise OverloadError(
                f"settlement backlog at capacity "
                f"({self.config.settlement_capacity} completions awaiting "
                f"an epoch receipt); close an epoch (maintain) before "
                f"submitting more")
        if self.faults is not None and \
                self.faults.fire("server.queue.shed"):
            COUNTERS.shed += 1
            TRACER.record("shed", self.now, request.trace, reason="fault")
            raise OverloadError("admission control shed the request")
        COUNTERS.admitted += 1
        request.submitted_at = self.now
        TRACER.record("admit", self.now, request.trace, op=request.kind,
                      worker=request.worker, generation=request.generation)
        ticket = Ticket(request)
        self.queue.append(ticket)
        return ticket

    def pump(self, max_requests: int | None = None) -> int:
        """Process queued requests FIFO; returns how many were processed.

        With ``config.group_commit`` set, the drain stages operations into
        per-verifier-shard batches and settles each in a single
        multi-shard ecall; every ticket still resolves before pump
        returns (receipt-synchronous group commit). Otherwise each
        request executes on its own — the legacy loop, unchanged."""
        if self.config.group_commit:
            processed = self._pump_batched(max_requests)
        else:
            processed = 0
            while self.queue and (max_requests is None
                                  or processed < max_requests):
                ticket = self.queue.popleft()
                self._advance(self.config.time_per_request)
                request = ticket.request
                if request.submitted_at is not None:
                    LATENCIES.observe("admission_wait",
                                      self.now - request.submitted_at,
                                      trace=request.trace)
                try:
                    ticket.result = self._execute(request)
                except Exception as exc:
                    ticket.error = exc
                    TRACER.record("error", self.now, request.trace,
                                  type=type(exc).__name__)
                ticket.done = True
                processed += 1
        self._scrub_pump()
        if self.replication is not None:
            self.replication.pump()
        return processed

    def handle(self, request: ServerRequest) -> ServerResult:
        """Synchronous convenience: submit, drain the queue, and return
        this request's outcome (raising its typed error, if any). Under
        ``config.pipeline`` the receipt streams back on a later pump, so
        the drain keeps pumping until this ticket settles."""
        ticket = self.submit(request)
        self.pump()
        if self.config.pipeline:
            for _ in range(64):
                if ticket.done:
                    break
                self.pump()
            if not ticket.done:
                raise RuntimeError(
                    "pipelined ticket failed to settle: a dispatched "
                    "batch never streamed its receipt back")
        if ticket.error is not None:
            raise ticket.error
        assert ticket.result is not None
        return ticket.result

    def query(self, client_id: int, nonce: int):
        """Idempotency lookup for a retrying client: ``("done", result)``
        if the operation was applied, ``("pending", None)`` if it sits in
        the degraded-mode write queue, else ``("unknown", None)`` —
        meaning it was never applied and a fresh-nonce reissue is safe."""
        hit = self.completed.get((client_id, nonce))
        if hit is not None:
            return ("done", replace(hit.result, deduped=True,
                                    generation=self.generation))
        if (client_id, nonce) in self.degraded_writes:
            return ("pending", None)
        return ("unknown", None)

    def cancel(self, client_id: int, nonce: int) -> ServerResult | None:
        """Definitive resolution for a client giving up: returns the
        recorded result if the operation was applied, otherwise removes it
        from the degraded write queue and returns None — after which the
        operation can never be applied."""
        hit = self.completed.get((client_id, nonce))
        if hit is not None:
            return replace(hit.result, deduped=True,
                           generation=self.generation)
        self.degraded_writes.pop((client_id, nonce), None)
        return None

    # ==================================================================
    # Execution
    # ==================================================================
    @property
    def degraded(self) -> bool:
        return self.degraded_since is not None

    @property
    def recoveries(self) -> int:
        return self.supervisor.heals

    def _admission(self, request: ServerRequest) -> ServerResult | None:
        """Everything that happens to a request *before* it reaches the
        database, in the exact order the legacy path runs it: watchdog,
        deadline, background heal, idempotency lookup, generation fence,
        degraded-mode service, and the circuit breaker. Returns a result
        for requests answered here (dedup hits, degraded/cached reads),
        raises their typed errors, and returns None for requests cleared
        to execute. Shared verbatim by the per-op and batched pumps."""
        self.supervisor.check_watchdog()
        if self.now > request.deadline:
            COUNTERS.deadline_expired += 1
            TRACER.record("deadline", self.now, request.trace,
                          deadline=request.deadline)
            raise DeadlineExceededError(
                f"deadline {request.deadline:.0f} passed at "
                f"{self.now:.0f} before execution; the operation was "
                f"not applied")
        if self.degraded and self.breaker.allow(self.now):
            if not self.supervisor.try_heal():
                self.breaker.record_failure(self.now)
        # Dedup AFTER any heal: healing rolls non-durable completions
        # back, so a hit here is either checkpoint-durable or was applied
        # by this very recovery's replay — never a rolled-back ghost.
        hit = self.completed.get(request.dedup_key)
        if hit is not None:
            TRACER.record("dedup", self.now, request.trace)
            return replace(hit.result, deduped=True,
                           generation=self.generation)
        # Generation fence: after the dedup lookup (a stale client whose
        # op DID land still gets its recorded answer), before any fresh
        # work is accepted from a client that hasn't adopted the fence.
        if request.generation != self.generation:
            TRACER.record("fence", self.now, request.trace,
                          stale=request.generation,
                          current=self.generation)
            raise NotLeaderError(
                f"request names leadership generation "
                f"{request.generation}, current is {self.generation}; "
                f"fetch leader_info, adopt the fence receipt, and resolve "
                f"in-flight operations through the idempotency table")
        # Lease gate: BEFORE degraded serving, so a deposed (or
        # partitioned) primary whose quorum abandoned it cannot keep
        # answering even from its degraded cache — it stops on its first
        # request after expiry, ahead of any rejected ecall. An honest
        # primary renews inside lease_ok() long before the margin.
        if self.replication is not None and not self.replication.lease_ok():
            TRACER.record("lease", self.now, request.trace, event="gate",
                          generation=self.generation)
            raise LeaseExpiredError(
                "leadership lease expired and the standby quorum would "
                "not renew it; back off and retry — an honest primary "
                "recovers on its next pump, a deposed one never will")
        if self.degraded:
            return self._degraded_op(request)
        if self.faults is not None and \
                self.faults.fire("server.breaker.trip"):
            self.breaker.force_open(self.now)
        if not self.breaker.allow(self.now):
            if request.kind == "get":
                return self._cached_read(
                    request, CircuitOpenError(
                        "breaker open and key not in the verified-read "
                        "cache"))
            raise CircuitOpenError(
                "circuit breaker open: writes fail fast until a probe "
                "closes it")
        return None

    def _try_replica(self, request: ServerRequest) -> ServerResult | None:
        """Route an opted-in get to the replication group's freshest
        tailing standby. Returns None — falling through to the primary —
        when the request did not opt in, no live replica is within both
        the group's and the request's staleness budget, or the replica
        holds no verified-committed value for the key. No completion is
        recorded: a replica read mints no receipt (the client's SDK vets
        it against receipts it already holds instead)."""
        if (self.replication is None or request.kind != "get"
                or request.max_stale_epochs is None):
            return None
        hit = self.replication.replica_read(request.op.key.bits)
        if hit is None:
            return None
        payload, as_of_epoch, stale_epochs = hit
        if stale_epochs > request.max_stale_epochs:
            return None
        return ServerResult(payload, request.nonce, stale=True,
                            as_of_epoch=as_of_epoch,
                            stale_epochs=stale_epochs,
                            generation=self.generation)

    def _execute(self, request: ServerRequest) -> ServerResult:
        early = self._admission(request)
        if early is not None:
            return early
        replica = self._try_replica(request)
        if replica is not None:
            return replica
        try:
            result = self._apply(request)
        except IntegrityError:
            # The verifier working, not the verifier failing — but note
            # the key: if a restore follows, the suspect drain re-checks
            # it so a rotted page cannot re-trip the alarm forever.
            self._integrity_dirty = True
            key = getattr(request.op, "key", None)
            if key is not None:
                self._suspect_keys.add(key)
            raise
        except AvailabilityError as exc:
            self.breaker.record_failure(self.now)
            self._enter_degraded(f"{type(exc).__name__}: {exc}")
            raise
        self.breaker.record_success()
        self._record_completion(request, result)
        if self.faults is not None and \
                self.faults.fire("server.wire.response"):
            COUNTERS.wire_drops += 1
            raise WireDropError(
                "response lost on the server->client wire (the operation "
                "WAS applied; the idempotency table remembers it)")
        return result

    def _apply(self, request: ServerRequest) -> ServerResult:
        client = self.db.clients.get(request.client_id)
        if client is None:
            raise ProtocolError(
                f"request from unregistered client {request.client_id}")
        worker = request.worker % self.db.config.n_workers
        if request.kind == "get":
            op = self.db.apply_get(client, request.op, worker)
        elif request.kind == "put":
            op = self.db.apply_put(client, request.op, worker)
        else:
            raise ProtocolError(f"unknown request kind {request.kind!r}")
        return ServerResult(op.payload, op.nonce,
                            generation=self.generation)

    def _record_completion(self, request: ServerRequest,
                           result: ServerResult) -> None:
        self.provisional_reads[request.op.key] = result.payload
        self.completed[request.dedup_key] = _Completion(result)
        TRACER.record("receipt", self.now, request.trace,
                      op=request.kind)
        if request.submitted_at is not None:
            self._awaiting_epoch.append((request.trace,
                                         request.submitted_at))
            while len(self._awaiting_epoch) > \
                    self.config.settlement_capacity:
                # Work admitted before the backlog filled can still push
                # past the bound; the drop is counted and traced, never
                # silent (the request itself is unaffected — only its
                # pending latency observation is lost).
                dropped, _ = self._awaiting_epoch.popleft()
                COUNTERS.settlement_overflow += 1
                TRACER.record("shed", self.now, dropped,
                              reason="settlement_overflow")
        if self.replication is not None and request.kind == "put":
            # Ship the signed request itself: the standby's enclave
            # re-validates the client MAC, so the channel never has to be
            # trusted with the op's authenticity.
            self.replication.note_put(request.op)
        while len(self.completed) > self.config.completed_capacity:
            self.completed.popitem(last=False)

    # ------------------------------------------------------------------
    # Group-commit batching (opt-in via config.group_commit)
    # ------------------------------------------------------------------
    def _pump_batched(self, max_requests: int | None = None) -> int:
        """Drain the admission queue into per-shard batches and settle
        each batch in one multi-shard ecall.

        Flush policy: a shard flushes when it reaches ``max_batch_ops``,
        when its oldest staged op has lingered ``max_batch_ticks``, when a
        staged op's deadline is about to expire, or when a retry of an
        already-staged (client, nonce) arrives (so the retry is answered
        from the idempotency table instead of being staged twice).

        Receipt-synchronous mode (the default): every open batch flushes
        and settles before pump returns — group commit batches crossings,
        never acknowledgements. Pipelined mode (``config.pipeline``):
        the pump first settles receipts streamed back from batches
        dispatched on earlier pumps, and open batches may stay staged
        across pumps while new work keeps arriving, so deep batches fill
        while admission continues; an idle pump (nothing admitted, queue
        empty) dispatches whatever is staged rather than stall."""
        processed = 0
        pipelined = self.config.pipeline
        if pipelined:
            self._pump_seq += 1
            self._settle_inflight()
        while self.queue and (max_requests is None
                              or processed < max_requests):
            ticket = self.queue.popleft()
            self._advance(self.config.time_per_request)
            processed += 1
            if ticket.request.submitted_at is not None:
                LATENCIES.observe("admission_wait",
                                  self.now - ticket.request.submitted_at,
                                  trace=ticket.request.trace)
            try:
                early = self._admission(ticket.request)
            except Exception as exc:
                ticket.error = exc
                TRACER.record("error", self.now, ticket.request.trace,
                              type=type(exc).__name__)
                ticket.done = True
                continue
            if early is not None:
                ticket.result = early
                ticket.done = True
                continue
            replica = self._try_replica(ticket.request)
            if replica is not None:
                ticket.result = replica
                ticket.done = True
                continue
            dedup_key = ticket.request.dedup_key
            staged_at = self._staged_keys.get(dedup_key)
            if staged_at is not None:
                # Dedup-aware flush: commit the staged twin first, then
                # answer this retry from the table it just landed in.
                self._flush_shard(staged_at)
                hit = self.completed.get(dedup_key)
                if hit is not None:
                    ticket.result = replace(hit.result, deduped=True,
                                            generation=self.generation)
                    ticket.done = True
                    continue
                # The twin failed; this attempt proceeds on its own.
            shard = ticket.request.worker % self.db.config.n_workers
            batch = self._shard_batches.setdefault(shard, [])
            if not batch:
                self._shard_opened[shard] = self.now
            ticket.staged_at = self.now
            TRACER.record("stage", self.now, ticket.request.trace,
                          shard=shard, depth=len(batch) + 1)
            batch.append(ticket)
            self._staged_keys[dedup_key] = shard
            if len(batch) >= self._batch_limit(shard):
                self._flush_shard(shard)
            else:
                self._flush_due()
        if pipelined:
            self._flush_due()
            if processed == 0 and not self.queue:
                # Idle pump: no new arrivals can deepen the open batches
                # this pump, so dispatch them instead of stalling the
                # receipt stream.
                self._flush_open_batches()
        else:
            self._flush_open_batches()
        return processed

    def _batch_limit(self, shard: int) -> int:
        """Effective max_batch_ops for a shard: the controller's adapted
        bound when one is running, else the static knob."""
        if self._controller is not None:
            return self._controller.batch_limit(shard)
        return self.config.max_batch_ops

    def _linger_limit(self, shard: int) -> float:
        """Effective max_batch_ticks for a shard (see _batch_limit)."""
        if self._controller is not None:
            return self._controller.linger_limit(shard)
        return self.config.max_batch_ticks

    def _flush_due(self) -> None:
        """Flush shards whose linger window closed or whose oldest staged
        deadline would not survive another service tick."""
        horizon = self.now + self.config.time_per_request
        for shard in list(self._shard_batches):
            batch = self._shard_batches.get(shard)
            if not batch:
                continue
            age = self.now - self._shard_opened.get(shard, self.now)
            if age >= self._linger_limit(shard) or \
                    any(t.request.deadline <= horizon for t in batch):
                self._flush_shard(shard)

    def _flush_open_batches(self) -> None:
        for shard in list(self._shard_batches):
            self._flush_shard(shard)

    def _flush_shard(self, shard: int) -> None:
        """Settle one shard's open batch through ``FastVer.apply_batch``
        and resolve its tickets, mirroring the legacy path's post-apply
        stages (breaker accounting, degraded-mode entry, completion
        recording, response-wire fault) per operation."""
        batch = self._shard_batches.pop(shard, None)
        self._shard_opened.pop(shard, None)
        if not batch:
            return
        ops = []
        live: list[Ticket] = []
        for ticket in batch:
            self._staged_keys.pop(ticket.request.dedup_key, None)
            request = ticket.request
            if self.now > request.deadline:
                # It lingered past its deadline waiting for batch-mates.
                COUNTERS.deadline_expired += 1
                TRACER.record("deadline", self.now, request.trace,
                              deadline=request.deadline, staged=True)
                ticket.error = DeadlineExceededError(
                    f"deadline {request.deadline:.0f} passed at "
                    f"{self.now:.0f} while staged for group commit; the "
                    f"operation was not applied")
                ticket.done = True
                continue
            client = self.db.clients.get(request.client_id)
            worker = request.worker % self.db.config.n_workers
            ops.append((client, request.op, request.kind, worker))
            live.append(ticket)
        if not ops:
            return
        self.batches_flushed += 1
        self.batch_ops_flushed += len(ops)
        for ticket in live:
            # Per-op flush events (same shard/ops detail on each) so one
            # request's span carries its whole batched lifecycle.
            TRACER.record("flush", self.now, ticket.request.trace,
                          shard=shard, ops=len(ops))
            if ticket.staged_at is not None:
                LATENCIES.observe("batch_residency",
                                  self.now - ticket.staged_at,
                                  trace=ticket.request.trace)
        try:
            outcomes = self.db.apply_batch(ops)
        except IntegrityError as exc:
            # The verifier working, not the verifier failing — but with a
            # group commit the alarm voids every op in flight.
            self._integrity_dirty = True
            for ticket in live:
                key = getattr(ticket.request.op, "key", None)
                if key is not None:
                    self._suspect_keys.add(key)
                ticket.error = exc
                TRACER.record("error", self.now, ticket.request.trace,
                              type=type(exc).__name__)
                ticket.done = True
            return
        except AvailabilityError as exc:
            self.breaker.record_failure(self.now)
            self._enter_degraded(f"{type(exc).__name__}: {exc}")
            for ticket in live:
                ticket.error = exc
                TRACER.record("error", self.now, ticket.request.trace,
                              type=type(exc).__name__)
                ticket.done = True
            return
        if self.config.pipeline:
            # Pipelined dispatch: the ecall ran and its effects are the
            # truth now — completions recorded, provisional state applied
            # — but the tickets resolve when the receipt stream delivers
            # them on a later pump (_settle_inflight). The response-wire
            # fault point moves with the response: it fires at settle.
            entries: list = []
            for ticket, outcome in zip(live, outcomes):
                if outcome.error is not None:
                    entries.append((ticket, None, outcome.error))
                    continue
                result = ServerResult(outcome.payload, outcome.nonce,
                                      generation=self.generation)
                self.breaker.record_success()
                self._record_completion(ticket.request, result)
                entries.append((ticket, result, None))
            self._inflight.append(_InFlightBatch(
                shard, entries, self.generation, self.now,
                self._pump_seq))
            self.batches_pipelined += 1
            COUNTERS.inflight_batches_max = max(
                COUNTERS.inflight_batches_max, len(self._inflight))
        else:
            for ticket, outcome in zip(live, outcomes):
                if outcome.error is not None:
                    ticket.error = outcome.error
                    TRACER.record("error", self.now, ticket.request.trace,
                                  type=type(outcome.error).__name__)
                    ticket.done = True
                    continue
                result = ServerResult(outcome.payload, outcome.nonce,
                                      generation=self.generation)
                self.breaker.record_success()
                self._record_completion(ticket.request, result)
                if self.faults is not None and \
                        self.faults.fire("server.wire.response"):
                    COUNTERS.wire_drops += 1
                    TRACER.record("drop", self.now, ticket.request.trace,
                                  wire="response")
                    ticket.error = WireDropError(
                        "response lost on the server->client wire (the "
                        "operation WAS applied; the idempotency table "
                        "remembers it)")
                    ticket.done = True
                    continue
                ticket.result = result
                ticket.done = True
        if self.replication is not None:
            # Shipping coalesces along batch boundaries: everything this
            # group commit produced travels in one shipment.
            self.replication.note_boundary()

    def _settle_inflight(self, force: bool = False) -> None:
        """Resolve dispatched batches whose receipts streamed back:
        everything dispatched on an earlier pump — or everything still in
        flight, when ``force`` (maintain() and the final drain must not
        leave receipts hanging)."""
        while self._inflight and (
                force or self._inflight[0].dispatched_pump
                < self._pump_seq):
            record = self._inflight.popleft()
            deposed = record.generation != self.generation
            for ticket, result, error in record.entries:
                request = ticket.request
                if deposed:
                    # The receipt was minted by a leadership generation
                    # that has since been fenced off; an honest server
                    # refuses to vouch for it. The operation itself DID
                    # apply and survived promotion (completions are
                    # durable across _adopt_promoted), so the client
                    # resolves through the idempotency table after
                    # adopting the fence.
                    TRACER.record("fence", self.now, request.trace,
                                  stale=record.generation,
                                  current=self.generation, streamed=True)
                    ticket.error = NotLeaderError(
                        f"streamed receipt was dispatched under deposed "
                        f"generation {record.generation}, current is "
                        f"{self.generation}; fetch leader_info, adopt "
                        f"the fence receipt, and resolve through the "
                        f"idempotency table")
                    ticket.done = True
                    continue
                if error is not None:
                    ticket.error = error
                    TRACER.record("error", self.now, request.trace,
                                  type=type(error).__name__)
                    ticket.done = True
                    continue
                TRACER.record("settle", self.now, request.trace,
                              shard=record.shard,
                              pumps=self._pump_seq
                              - record.dispatched_pump)
                if self.faults is not None and \
                        self.faults.fire("server.wire.response"):
                    COUNTERS.wire_drops += 1
                    TRACER.record("drop", self.now, request.trace,
                                  wire="response")
                    ticket.error = WireDropError(
                        "response lost on the server->client wire (the "
                        "operation WAS applied; the idempotency table "
                        "remembers it)")
                    ticket.done = True
                    continue
                ticket.result = result
                ticket.done = True

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def _cached_read(self, request: ServerRequest,
                     miss: Exception) -> ServerResult:
        key = request.op.key
        if key in self.committed_reads:
            self.committed_reads.move_to_end(key)
            COUNTERS.degraded += 1
            TRACER.record("degraded", self.now, request.trace,
                          served="cached_read")
            return ServerResult(self.committed_reads[key], request.nonce,
                                degraded=True,
                                generation=self.generation)
        raise miss

    def _degraded_op(self, request: ServerRequest) -> ServerResult:
        if request.kind == "get":
            return self._cached_read(
                request, DegradedModeError(
                    "recovery in flight and key not in the verified-read "
                    "cache"))
        if request.dedup_key not in self.degraded_writes:
            if len(self.degraded_writes) >= \
                    self.config.degraded_write_capacity:
                COUNTERS.shed += 1
                raise OverloadError("degraded-mode write queue full")
            self.degraded_writes[request.dedup_key] = request
            COUNTERS.degraded += 1
            TRACER.record("degraded", self.now, request.trace,
                          served="queued_write")
        raise DegradedModeError(
            "recovery in flight; write queued for idempotent replay — "
            "poll the idempotency table rather than reissuing")

    def _enter_degraded(self, reason: str) -> None:
        if self.degraded_since is None:
            self.degraded_since = self.now
            self.degraded_reason = reason

    def _exit_degraded(self) -> None:
        self.degraded_since = None
        self.degraded_reason = None
        self.breaker.record_success()

    def _rollback_provisional(self) -> None:
        """Checkpoint recovery rolled the database back; roll the serving
        layer's un-checkpointed bookkeeping back with it."""
        self.provisional_reads.clear()
        self.completed = OrderedDict(
            (k, v) for k, v in self.completed.items() if v.durable)
        # Rolled-back completions will never earn this epoch's receipt;
        # their pending latency observations roll back with them.
        self._awaiting_epoch.clear()

    def _replay_degraded_writes(self) -> bool:
        """Re-apply the degraded-mode write backlog FIFO. The original
        requests travel with their original nonces and MACs, so replay is
        idempotent end to end. Returns False (leaving the failed write at
        the queue head) if the database fails again mid-replay."""
        while self.degraded_writes:
            key, request = next(iter(self.degraded_writes.items()))
            try:
                result = self._apply(request)
            except AvailabilityError:
                return False
            self._record_completion(request, result)
            self.degraded_writes.pop(key, None)
            self.replayed_writes += 1
        return True

    # ------------------------------------------------------------------
    # Salvage (the recovery ladder's last rung)
    # ------------------------------------------------------------------
    def _salvage(self) -> None:
        """The checkpoint is unusable: lenient-rebuild from the log,
        re-provision a fresh database over the survivors, re-register the
        same clients (their keys and nonce counters carry over), and
        rebase every serving-layer cache on the salvaged state."""
        old_db = self.db
        device = old_db.store.log.device
        device.faults = None  # the salvage read pass itself runs clean
        salvaged = rebuild_index_from_log(
            device, old_db.store.log.tail_address,
            ordered_width=old_db.config.key_width, strict=False)
        width = old_db.config.key_width
        items: list[tuple[int, bytes]] = []
        for key, value, _aux in salvaged.items():
            if key.length != width:
                continue  # merkle plumbing; the fresh instance rebuilds it
            payload = getattr(value, "payload", None)
            if payload is None:
                continue
            items.append((key.bits, payload))
        items.sort()
        if self.salvage_hook is not None:
            items = self.salvage_hook(items)
        new_db = FastVer(old_db.config, items=items)
        for client in old_db.clients.values():
            new_db.register_client(client)
        new_db.verify()
        new_db.checkpoint()
        old_db._server = None
        new_db._server = self
        self.db = new_db
        from repro.faults.plan import install_faults
        install_faults(new_db, self.faults)
        # The salvaged snapshot is the durable truth now.
        self.provisional_reads.clear()
        self.completed.clear()
        self._awaiting_epoch.clear()
        self.committed_reads = OrderedDict(
            (new_db.data_key(k), payload) for k, payload in items)
        self._trim_read_cache()

    def _trim_read_cache(self) -> None:
        while len(self.committed_reads) > self.config.read_cache_capacity:
            self.committed_reads.popitem(last=False)

    # ------------------------------------------------------------------
    # Background scrub & verified repair (repro.scrub)
    # ------------------------------------------------------------------
    def scrubber(self):
        """The server's scrubber, rebound whenever salvage or promotion
        swapped the database (or replication was attached) under it. The
        ledger and cumulative stats carry across rebinds — the audit
        trail outlives any one store instance."""
        if not self.config.scrub_enabled:
            return None
        cfg = self.config
        current = self._scrubber
        if current is None or current.db is not self.db \
                or current.repl is not self.replication:
            from repro.scrub import Scrubber
            fresh = Scrubber(
                self.db, budget_pages=cfg.scrub_budget_pages,
                repl=self.replication, server=self,
                now_fn=lambda: self.now, advance_fn=self._advance,
                tick_per_page=cfg.scrub_tick_per_page,
                repair_base_ticks=cfg.repair_base_ticks,
                repair_tick_per_page=cfg.repair_tick_per_page)
            if current is not None:
                fresh.ledger = current.ledger
                fresh.pages_checked = current.pages_checked
                fresh.mismatches_found = current.mismatches_found
                fresh.repairs_done = current.repairs_done
                fresh.full_passes = current.full_passes
            self._scrubber = fresh
        return self._scrubber

    def _scrub_pump(self) -> None:
        """One budgeted scrub slice per pump, skipped while degraded (the
        supervisor owns the store then) or mid-alarm. A repair forgery —
        an external candidate the enclave rejected — has no client to
        surface to, so it degrades the server and lets the heal ladder
        replace the store from an authentic recovery point."""
        scrub = self.scrubber()
        if scrub is None or self.degraded or self._integrity_dirty:
            return
        try:
            scrub.pump()
        except IntegrityError as exc:
            self._integrity_dirty = True
            self.breaker.record_failure(self.now)
            self._enter_degraded(
                f"repair forgery detected: {type(exc).__name__}: {exc}")
        except AvailabilityError as exc:
            # A fault fired mid-repair: the enclave session may have run
            # ahead of the host's clock mirror, so the slice cannot simply
            # be retried — treat it like any other failed session and let
            # the heal ladder resynchronize host and enclave state.
            self.breaker.record_failure(self.now)
            self._enter_degraded(
                f"scrub interrupted mid-repair: {type(exc).__name__}: {exc}")

    def _drain_suspects(self) -> bool:
        """Post-restore rot triage: a restore rolls the *state* back, but
        the device pages it reads are the same ones that just tripped the
        alarm — if the cause was latent rot (not a live host attack), the
        next touch re-trips it and the ladder loops. Re-check every key
        whose touch raised the alarm, quarantine the ones whose pages
        really are dirty, and repair them surgically. Returns True when
        no suspect remains quarantined."""
        scrub = self.scrubber()
        if scrub is None or not self._suspect_keys:
            self._suspect_keys.clear()
            return True
        store = self.db.store
        for key in list(self._suspect_keys):
            address = store.index.lookup(key)
            if address < 0 or store.log.in_memory(address) \
                    or address in store.quarantined_addresses:
                continue
            reason = scrub._check_page(key, address)
            if reason is not None:
                store.quarantined_addresses.append(address)
                scrub._quarantine_keys[address] = key
                COUNTERS.scrub_mismatches += 1
                scrub.mismatches_found += 1
                scrub.ledger.record(self.now, address, key,
                                    reason=f"suspect:{reason}",
                                    outcome="quarantined")
        self._suspect_keys.clear()
        scrub._repair_quarantined()
        return not store.quarantined_addresses

    # ------------------------------------------------------------------
    # Replication and failover
    # ------------------------------------------------------------------
    def attach_standby(self, config=None, promote_hook=None):
        """Provision a warm standby fed by authenticated log shipping;
        the supervisor's recovery ladder gains a failover rung."""
        from repro.replication.manager import ReplicationManager
        self.replication = ReplicationManager(self, config=config,
                                              promote_hook=promote_hook)
        return self.replication

    def leader_info(self, client_id: int):
        """Redirect target for a fenced client: the current generation
        plus this client's fence receipt from the latest promotion (None
        when no failover has happened yet)."""
        return (self.generation, self._fences.get(client_id))

    def _adopt_promoted(self, db: FastVer, generation: int, fences: dict,
                        items: list[tuple[int, bytes]]) -> None:
        """Swap the promoted standby in as this server's database.

        Called by :meth:`ReplicationManager.promote` after the fence is
        closed and the deposed enclave is down. Every recorded completion
        becomes durable — the standby holds every shipped *and* drained
        operation, so nothing in the idempotency table can roll back.
        """
        old_db = self.db
        old_db._server = None
        db._server = self
        self.db = db
        self.generation = generation
        self._fences = dict(fences)
        # Clients registered after the standby was bootstrapped may never
        # have shipped a put; carry them over so queued degraded writes
        # and fresh requests still resolve.
        for client in old_db.clients.values():
            if client.client_id not in db.clients:
                db.register_client(client)
        from repro.faults.plan import install_faults
        install_faults(db, self.faults)
        self.provisional_reads.clear()
        self.committed_reads = OrderedDict(
            (db.data_key(k), payload) for k, payload in items)
        self._trim_read_cache()
        for entry in self.completed.values():
            entry.durable = True
        # Promotion closed the fenced epochs on the standby: every
        # completion the new primary carries is epoch-verified now.
        self._settle_verified(promoted=True)
        self.supervisor.note_reboots()

    # ==================================================================
    # Maintenance and health
    # ==================================================================
    def maintain(self):
        """Epoch close + durable checkpoint through the pipeline's
        protections; promotes provisional serving-layer state to durable.
        Refuses (typed) while degraded — checkpointing a half-recovered
        store would launder provisional state into the recovery point."""
        if self._shard_batches:
            # A checkpoint must not straddle an open group commit: settle
            # staged work first so the maintain marker lands on a batch
            # boundary.
            self._flush_open_batches()
        if self._inflight:
            # Nor may it straddle receipts still streaming back: deliver
            # every in-flight dispatch before the epoch closes.
            self._settle_inflight(force=True)
        if self.degraded:
            if not self.supervisor.try_heal():
                raise DegradedModeError(
                    "cannot checkpoint while recovery is in flight")
        try:
            report = self.db.verify()
            checkpoint = self.db.checkpoint()
        except IntegrityError:
            raise
        except AvailabilityError as exc:
            self.breaker.record_failure(self.now)
            self._enter_degraded(f"{type(exc).__name__}: {exc}")
            raise
        if self.replication is not None:
            # The epoch close is on the log too: the standby closes its
            # own epoch and advances its sealed floor in step.
            self.replication.note_epoch(report.epoch)
        self._settle_verified(epoch=report.epoch)
        if self._slo is not None:
            # SLO evaluation peeks the verified-latency window (the
            # controller below still owns its reset-on-read) and runs
            # before the controller so a fresh alert biases this very
            # epoch's AIMD decision. The engine itself never counts —
            # the wiring does, and the counters are unpriced.
            fired = self._slo.observe_epoch(self)
            COUNTERS.slo_evaluations += 1
            COUNTERS.slo_alerts += fired
            if "scrub_quarantine" in self._slo.firing():
                if self.supervisor.proactive_repair():
                    COUNTERS.slo_proactive_repairs += 1
        if self._controller is not None:
            # The epoch close just fed the verified-latency window; let
            # the controller walk the batch bounds against its budget.
            self._controller.observe_epoch()
        elif self._slo is not None:
            # No controller to reset-on-read the window: take it here so
            # each SLO evaluation still sees one epoch's interval, not an
            # ever-growing cumulative tail.
            LATENCIES.take_window("verified_latency")
        for entry in self.completed.values():
            entry.durable = True
        self.committed_reads.update(self.provisional_reads)
        self.provisional_reads.clear()
        self._trim_read_cache()
        if self.replication is not None:
            self.replication.pump()
        return checkpoint

    def _settle_verified(self, epoch: int | None = None,
                         promoted: bool = False) -> None:
        """An epoch receipt landed (epoch close, or a promotion that
        fenced the epochs): every pending completion's end-to-end
        verified latency — op submit to receipt — is now known."""
        settled = len(self._awaiting_epoch)
        for _trace, submitted_at in self._awaiting_epoch:
            LATENCIES.observe("verified_latency", self.now - submitted_at,
                              trace=_trace)
        self._awaiting_epoch.clear()
        TRACER.record("epoch", self.now, None, epoch=epoch,
                      settled=settled, promoted=promoted)

    def force_heal(self) -> bool:
        """Operator-initiated recovery (used after tamper cleanup): enter
        degraded mode and run one heal session immediately."""
        self._enter_degraded("operator-forced recovery")
        return self.supervisor.try_heal()

    def health(self) -> dict:
        """Liveness surface: always answers, even degraded."""
        return {
            "now": self.now,
            "mode": "degraded" if self.degraded else "normal",
            "degraded_reason": self.degraded_reason,
            "queue_depth": len(self.queue),
            "degraded_writes": len(self.degraded_writes),
            "breaker": self.breaker.snapshot(),
            "enclave": self.db.enclave.probe(),
            "recoveries": self.supervisor.heals,
            "salvages": self.supervisor.salvages,
            "replayed_writes": self.replayed_writes,
            "generation": self.generation,
            "failovers": self.supervisor.failovers,
            "batching": {
                "group_commit": self.config.group_commit,
                "open_shards": len(self._shard_batches),
                "staged_ops": sum(len(b)
                                  for b in self._shard_batches.values()),
                "batches_flushed": self.batches_flushed,
                "batch_ops_flushed": self.batch_ops_flushed,
                "bitkey_cache": {"hits": self.bitkey_hits,
                                 "misses": self.bitkey_misses},
                "pipeline": self.config.pipeline,
                "inflight_batches": len(self._inflight),
                "inflight_ops": sum(len(r.entries)
                                    for r in self._inflight),
                "batches_pipelined": self.batches_pipelined,
                "settlement_backlog": len(self._awaiting_epoch),
                "settlement_capacity": self.config.settlement_capacity,
            },
            "controller": None if self._controller is None
            else self._controller.snapshot(),
            "slo": None if self._slo is None else self._slo.snapshot(),
            "obs": {
                "trace_events": len(TRACER),
                "trace_dropped": TRACER.dropped,
                "trace_capacity": TRACER.capacity,
                "spool": None if TRACER.sink is None
                else TRACER.sink.stats(),
                "windows": LATENCIES.window_meta(),
            },
            "scrub": None if self._scrubber is None else {
                "pages_checked": self._scrubber.pages_checked,
                "mismatches": self._scrubber.mismatches_found,
                "repairs": self._scrubber.repairs_done,
                "full_passes": self._scrubber.full_passes,
                "quarantined": len(self.db.store.quarantined_addresses),
                "checkpoint_stale": self._scrubber.checkpoint_stale,
            },
            "replication": None if self.replication is None else {
                "standby_healthy": self.replication.can_promote(),
                "lag": self.replication.lag(),
                "shipped_batches": self.replication.shipped_batches,
                "rejects": self.replication.rejects,
                "group_size": len(self.replication.standbys),
                "group_live": len(self.replication.live_standbys()),
                "quorum": self.replication.config.quorum,
                "lease_valid": self.replication.lease_valid(),
            },
        }

    def ready(self) -> bool:
        """Readiness probe: should a load balancer route new work here?"""
        probe = self.db.enclave.probe()
        return (not self.degraded and self.breaker.state != OPEN
                and probe["alive"] and probe["loaded"]
                and len(self.queue) < self.config.queue_capacity)

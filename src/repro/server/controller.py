"""AIMD latency-budget controller for the pipelined group commit.

Static batch knobs force an offline choice on the throughput/latency
frontier: deep batches amortize enclave crossings (the paper's §7
lever) but hold staged operations longer, so the end-to-end verified
latency — op submit to epoch receipt — climbs with depth. This
controller closes the loop instead: the operator declares a p99
``verified_latency`` budget (``ServerConfig.latency_budget_p99``) and
the controller walks every shard's effective ``max_batch_ops`` /
``max_batch_ticks`` toward the deepest batch that still honors it.

The control law is classic AIMD. The sensor is the *windowed* view of
the verified-latency histogram (``LATENCIES.take_window``): each epoch
close settles a fresh interval of observations, the controller reads
that interval's p99 — undiluted by older history — and either grows
the batch bound additively (under budget: deeper batches are free
throughput) or shrinks it multiplicatively (over budget: back off fast,
latency debt compounds). The linger bound tracks the ops bound at
``controller_ticks_per_op`` ticks per op, so a half-full batch never
waits out a window the controller has already decided is too long.

Decisions are per shard (each shard owns its staging queue and its
bound can diverge after a reconfiguration), driven by the shared
sensor. Every evaluation emits a ``controller`` trace event and bumps
``controller_grows`` / ``controller_shrinks``; the current bounds are
exported by ``FastVerServer.health()["controller"]``.

The controller reads only the observability layer and touches no
database state, so it cannot perturb the modeled cost numbers — it
changes *when* flushes happen, and the counters price whatever actually
ran. It requires ``LATENCIES.enabled`` (with the layer off the windows
stay empty and the bounds simply hold).
"""

from __future__ import annotations

from repro.instrument import COUNTERS
from repro.obs import LATENCIES, TRACER


class LatencyBudgetController:
    """Per-shard AIMD walk of the group-commit batch bounds against a
    p99 verified-latency budget."""

    def __init__(self, server):
        cfg = server.config
        self.server = server
        self.budget = cfg.latency_budget_p99
        self.min_batch = cfg.controller_min_batch
        self.max_batch = cfg.controller_max_batch
        self.grow_step = cfg.controller_grow_step
        self.shrink_factor = cfg.controller_shrink_factor
        self.ticks_per_op = cfg.controller_ticks_per_op
        #: shard -> current effective max_batch_ops. Shards start at the
        #: static knob, clamped into the controller's range.
        self._limits: dict[int, int] = {}
        self.evaluations = 0
        self.last_p99: float | None = None
        self.last_action: str | None = None

    # ------------------------------------------------------------------
    def _initial(self) -> int:
        return max(self.min_batch,
                   min(self.server.config.max_batch_ops, self.max_batch))

    def batch_limit(self, shard: int) -> int:
        """The shard's current effective ``max_batch_ops``."""
        limit = self._limits.get(shard)
        return limit if limit is not None else self._initial()

    def linger_limit(self, shard: int) -> float:
        """The shard's current effective ``max_batch_ticks``: the time a
        full batch takes to fill at the load the ops bound was sized
        for, so lingering never outlasts the budgeted window."""
        return self.ticks_per_op * self.batch_limit(shard)

    # ------------------------------------------------------------------
    def observe_epoch(self) -> None:
        """One control step, run after each epoch settlement (the moment
        the verified-latency window gains its interval of observations).
        Consumes the window; an empty interval holds the bounds."""
        window = LATENCIES.take_window("verified_latency")
        if not window.count:
            return
        self.evaluations += 1
        p99 = window.percentile(99.0)
        self.last_p99 = p99
        breach = p99 > self.budget
        # SLO advisory: a firing verified-latency burn alert means the
        # *trend* is eating the error budget even if this one interval's
        # p99 squeaked under — treat it as a breach and back off.
        slo = getattr(self.server, "_slo", None)
        if not breach and slo is not None \
                and "verified_latency_p99" in slo.firing():
            breach = True
        self.last_action = "shrink" if breach else "grow"
        moved = 0
        for shard in range(self.server.db.config.n_workers):
            current = self.batch_limit(shard)
            if breach:
                new = max(self.min_batch,
                          int(current * self.shrink_factor))
            else:
                new = min(self.max_batch, current + self.grow_step)
            if new != current:
                moved += 1
                if breach:
                    COUNTERS.controller_shrinks += 1
                else:
                    COUNTERS.controller_grows += 1
            self._limits[shard] = new
        TRACER.record("controller", self.server.now, None,
                      action=self.last_action, p99=round(p99, 3),
                      budget=self.budget, window=window.count,
                      batch=self.batch_limit(0),
                      ticks=round(self.linger_limit(0), 3), moved=moved)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Gauge surface for ``health()`` and the metrics exposition."""
        limits = {shard: self.batch_limit(shard)
                  for shard in range(self.server.db.config.n_workers)}
        return {
            "budget_p99": self.budget,
            "last_p99": self.last_p99,
            "last_action": self.last_action,
            "evaluations": self.evaluations,
            "batch_limits": limits,
            "linger_limits": {s: self.ticks_per_op * b
                              for s, b in limits.items()},
        }

"""The resilient serving layer: deadline-aware pipeline, circuit breaker,
supervisor-driven recovery, and degraded-mode operation (see
docs/PROTOCOL.md, "Transport, overload, and degraded-mode semantics")."""

from repro.server.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.server.pipeline import (
    FastVerServer,
    ServerConfig,
    ServerRequest,
    ServerResult,
    Ticket,
)
from repro.server.supervisor import Supervisor

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "FastVerServer",
    "ServerConfig",
    "ServerRequest",
    "ServerResult",
    "Supervisor",
    "Ticket",
]

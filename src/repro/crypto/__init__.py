"""Cryptographic primitives: hashing, multiset hashing, PRFs, MACs.

See DESIGN.md for the substitutions relative to the paper (blake2b for
Blake3, keyed blake2b for AES-CMAC, HMAC for digital signatures) and why
they preserve the verification semantics.
"""

from repro.crypto.hashing import (
    DIGEST_SIZE,
    NULL_HASH,
    encode_fields,
    hash_bytes,
    hash_fields,
    hash_key_to_data_key_bytes,
)
from repro.crypto.mac import TAG_SIZE, MacKey
from repro.crypto.multiset import EMPTY_HASH, MultisetHasher, aggregate
from repro.crypto.prf import PRF_SIZE, Prf

__all__ = [
    "DIGEST_SIZE",
    "NULL_HASH",
    "encode_fields",
    "hash_bytes",
    "hash_fields",
    "hash_key_to_data_key_bytes",
    "TAG_SIZE",
    "MacKey",
    "EMPTY_HASH",
    "MultisetHasher",
    "aggregate",
    "PRF_SIZE",
    "Prf",
]

"""Keyed pseudo-random function.

Concerto/FastVer build their multiset hash from AES-CMAC accelerated with
AES-NI (§7). We substitute a keyed blake2b truncated to 16 bytes — also a
PRF under standard assumptions, also C-speed — and let the cost model carry
the paper's 3.2 GB/s multiset-hashing rate.
"""

from __future__ import annotations

import hashlib
import secrets

#: PRF output width in bytes; the paper's set hashes are 16-byte values.
PRF_SIZE = 16


class Prf:
    """A keyed PRF ``F_k: bytes -> 16 bytes``."""

    __slots__ = ("_key",)

    def __init__(self, key: bytes):
        if not 16 <= len(key) <= 64:
            raise ValueError("PRF key must be 16..64 bytes")
        self._key = key

    @classmethod
    def generate(cls) -> "Prf":
        """A PRF under a fresh random key."""
        return cls(secrets.token_bytes(32))

    def evaluate(self, message: bytes) -> bytes:
        """Evaluate the PRF; output is :data:`PRF_SIZE` bytes."""
        return hashlib.blake2b(
            message, key=self._key, digest_size=PRF_SIZE
        ).digest()

    def evaluate_int(self, message: bytes) -> int:
        """PRF output as a 128-bit integer (convenient for XOR aggregation)."""
        return int.from_bytes(self.evaluate(message), "big")

    def key_bytes(self) -> bytes:
        """Expose the raw key (needed to persist sealed verifier state)."""
        return self._key

"""Message authentication for the client/verifier protocol (§2.1).

The paper signs results with the verifier's private key, but notes
(footnote 2) that in deployment the clients and verifier establish a secure
channel and use MACs instead. We implement that efficient variant: HMAC-SHA256
tags under per-principal symmetric keys. Unforgeability of the MAC is the
property the protocol relies on.
"""

from __future__ import annotations

import hmac
import secrets

from repro.crypto.hashing import encode_fields
from repro.errors import SignatureError
from repro.instrument import COUNTERS

#: MAC tag width in bytes.
TAG_SIZE = 32


class MacKey:
    """A symmetric MAC key shared between two protocol principals."""

    __slots__ = ("_key", "name")

    def __init__(self, key: bytes, name: str = "key"):
        if len(key) < 16:
            raise ValueError("MAC key must be at least 16 bytes")
        self._key = key
        self.name = name

    @classmethod
    def generate(cls, name: str = "key") -> "MacKey":
        return cls(secrets.token_bytes(32), name=name)

    def sign(self, *fields: bytes) -> bytes:
        """Produce a tag over a tuple of byte fields."""
        COUNTERS.mac_ops += 1
        return hmac.new(self._key, encode_fields(*fields), "sha256").digest()

    def verify(self, tag: bytes, *fields: bytes) -> None:
        """Check a tag; raise :class:`SignatureError` on mismatch."""
        COUNTERS.mac_ops += 1
        expected = hmac.new(self._key, encode_fields(*fields), "sha256").digest()
        if not hmac.compare_digest(tag, expected):
            raise SignatureError(f"MAC verification failed under key {self.name!r}")

    def key_bytes(self) -> bytes:
        return self._key

"""Collision-resistant hashing for Merkle records.

The paper uses a C implementation of Blake3 (§7). ``hashlib.blake2b`` is the
closest C-speed primitive in the standard library; we fix a 32-byte digest to
match the paper's hash width. The cost model (``repro.sim.costs``) charges
Merkle hashing at the paper's measured ~400 MB/s regardless of what the
wall clock says here, so the substitution does not distort the evaluation.

All multi-field hashing goes through :func:`encode_fields`, a length-prefixed
canonical encoding, so distinct field tuples can never collide by
concatenation ambiguity.
"""

from __future__ import annotations

import hashlib

from repro.instrument import COUNTERS

#: Digest size in bytes for Merkle hashing (matches SHA-256/Blake3 width).
DIGEST_SIZE = 32

#: Hash of the absent value — used for null pointers in Merkle values.
NULL_HASH = b"\x00" * DIGEST_SIZE


def encode_fields(*parts: bytes) -> bytes:
    """Length-prefix and concatenate byte fields into one unambiguous blob.

    ``encode_fields(b"ab", b"c") != encode_fields(b"a", b"bc")`` — each part
    is prefixed with its 4-byte big-endian length.
    """
    out = bytearray()
    for part in parts:
        out += len(part).to_bytes(4, "big")
        out += part
    return bytes(out)


def decode_fields(blob: bytes) -> list[bytes]:
    """Inverse of :func:`encode_fields`; raises ``ValueError`` on bad input."""
    parts: list[bytes] = []
    i = 0
    while i < len(blob):
        if i + 4 > len(blob):
            raise ValueError("truncated field length")
        n = int.from_bytes(blob[i:i + 4], "big")
        i += 4
        if i + n > len(blob):
            raise ValueError("truncated field payload")
        parts.append(blob[i:i + n])
        i += n
    return parts


def hash_bytes(data: bytes, counters=None) -> bytes:
    """Collision-resistant hash of a byte string (the Merkle hash H)."""
    c = counters if counters is not None else COUNTERS
    c.merkle_hashes += 1
    c.merkle_hash_bytes += len(data)
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).digest()


def hash_fields(*parts: bytes, counters=None) -> bytes:
    """Hash a tuple of byte fields under the canonical encoding."""
    return hash_bytes(encode_fields(*parts), counters=counters)


def hash_key_to_data_key_bytes(application_key: bytes) -> bytes:
    """Map an arbitrary application key to a 32-byte data key (§2.1).

    The paper hashes client keys with SHA-256 when they are not already
    32 bytes; we do the same (uninstrumented — it is part of request parsing,
    not verification work).
    """
    if len(application_key) == DIGEST_SIZE:
        return application_key
    return hashlib.sha256(application_key).digest()

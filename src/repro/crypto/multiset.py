"""Collision-resistant multiset hashing (§5.1, §7).

Deferred memory verification needs a hash over *multisets* of records such
that two different multisets collide only with negligible probability, and
such that hashes held by different verifier threads can be combined cheaply
at epoch close (§5.3).

The paper uses "the construction suggested in Concerto with AES-CMAC as a
PRF". We implement the same family — an incremental multiset hash over PRF
outputs (Clarke et al., ASIACRYPT 2003) — with one deliberate choice: the
default combiner is **addition mod 2^128** (MSet-Add-Hash) rather than plain
XOR. Plain XOR is only *set*-collision-resistant: an element inserted an
even number of times cancels out, which would let a byzantine host hide a
double-add/double-evict pair. MSet-Add-Hash is multiset-collision-resistant
without auxiliary counts, and aggregation across verifier threads remains a
single 128-bit modular addition of 16-byte values. The XOR combiner is kept
available (``combiner="xor"``) for ablation experiments.
"""

from __future__ import annotations

from repro.crypto.hashing import encode_fields
from repro.crypto.prf import PRF_SIZE, Prf
from repro.instrument import COUNTERS

#: The hash of the empty multiset under either combiner.
EMPTY_HASH = 0

_MOD = 1 << (8 * PRF_SIZE)
_MASK = _MOD - 1

#: Supported combining operations.
COMBINERS = ("add", "xor")


class MultisetHasher:
    """Streaming multiset-hash accumulator under a shared PRF key.

    One hasher per (verifier thread, epoch, read/write side); all hashers in
    a deployment share the PRF key so their accumulators can be aggregated at
    epoch close.
    """

    __slots__ = ("_prf", "value", "combiner", "_counters")

    def __init__(self, prf: Prf, combiner: str = "add", counters=None):
        if combiner not in COMBINERS:
            raise ValueError(f"combiner must be one of {COMBINERS}")
        self._prf = prf
        self.combiner = combiner
        self.value: int = EMPTY_HASH
        self._counters = counters if counters is not None else COUNTERS

    def insert(self, element: bytes) -> None:
        """Add one element to the multiset."""
        self._counters.multiset_updates += 1
        self._counters.multiset_hash_bytes += len(element)
        h = self._prf.evaluate_int(element)
        if self.combiner == "add":
            self.value = (self.value + h) & _MASK
        else:
            self.value ^= h

    def insert_entry(self, *fields: bytes) -> None:
        """Add an element given as a tuple of byte fields (canonical form)."""
        self.insert(encode_fields(*fields))

    def combine(self, other_value: int) -> None:
        """Fold another accumulator's value into this one (aggregation)."""
        if self.combiner == "add":
            self.value = (self.value + other_value) & _MASK
        else:
            self.value ^= other_value

    def reset(self) -> None:
        self.value = EMPTY_HASH

    def spawn(self) -> "MultisetHasher":
        """A fresh empty accumulator under the same key and combiner."""
        return MultisetHasher(self._prf, combiner=self.combiner,
                              counters=self._counters)


def aggregate(values: list[int], combiner: str = "add") -> int:
    """Aggregate per-thread set-hash values into one 16-byte value (§5.3)."""
    if combiner not in COMBINERS:
        raise ValueError(f"combiner must be one of {COMBINERS}")
    acc = EMPTY_HASH
    for v in values:
        if combiner == "add":
            acc = (acc + v) & _MASK
        else:
            acc ^= v
    return acc

"""Exception hierarchy for the FastVer reproduction.

Every failure the verifier can signal derives from :class:`IntegrityError`,
so callers that only care about "did someone tamper with my data" can catch
one type. Operational errors (bad arguments, capacity, protocol misuse by an
honest caller) derive from :class:`ReproError` but not ``IntegrityError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IntegrityError(ReproError):
    """The verifier detected evidence of tampering or byzantine host behavior.

    Raising this is the *success* mode of the integrity machinery: a malicious
    host tried something and got caught. It is never raised during honest
    execution (tests assert this).
    """


class HashMismatchError(IntegrityError):
    """A record's value hash did not match the hash stored at its parent."""


class ParentNotInCacheError(IntegrityError):
    """A Merkle add/evict named a parent record that is not verifier-cached.

    An honest host always caches the parent first, so hitting this means the
    host either skipped the protocol step or lied about the tree structure.
    """


class StructuralError(IntegrityError):
    """The host presented an inconsistent view of the sparse Merkle tree.

    Examples: a claimed parent that is not an ancestor of the key, a pointer
    that does not point at the key being added, or an LCA that does not cover
    both keys during an insert split.
    """


class TimestampError(IntegrityError):
    """A deferred-mode timestamp violated the verifier clock discipline."""


class EpochError(IntegrityError):
    """An epoch rule was violated (e.g., a record skipped epoch migration)."""


class SetHashMismatchError(IntegrityError):
    """The aggregated read-set and write-set hashes differ at epoch close.

    This is the deferred-verification catch-all: *any* value/timestamp
    tampering of a deferred record that escaped per-operation checks lands
    here at the next verification scan.
    """


class ReplayError(IntegrityError):
    """A client nonce was replayed or went backwards."""


class SignatureError(IntegrityError):
    """A message authentication code failed to verify."""


class RollbackError(IntegrityError):
    """Verifier state on restore is older than the sealed anti-rollback state."""


class SplitBrainError(IntegrityError):
    """A receipt or leadership generation regressed: evidence that two
    verifiers are (or were) serving concurrently. Raised client-side when a
    server vouches for a generation lower than one the client has already
    adopted — the signature of a deposed primary still answering."""


class StaleReplayError(IntegrityError):
    """A verified-stale replica read contradicts trusted client state: the
    server vouched for an as-of epoch that provably covers a write this
    client settled (it holds the verifier-signed op receipt), yet served a
    superseded value back. That is a replay dressed up as staleness —
    honest replica lag can never travel behind the vouched as-of point."""


class ReceiptBindingError(IntegrityError):
    """A deduplicated server result contradicts the verifier receipt the
    client already holds for the same nonce. The idempotency table is host
    state; mutating a recorded answer after the fact is caught by re-checking
    it against the enclave-signed op receipt."""


class CacheStateError(IntegrityError):
    """The host referenced a cache slot inconsistently (wrong key / free slot)."""


class CorruptPageError(IntegrityError):
    """A persisted page failed *structural* decoding on read: the stored
    bytes no longer parse back into a log record at all. Untrusted
    storage makes rot and tampering indistinguishable by construction,
    so this surfaces as the detection it is — the serving layer heals
    and the scrubber quarantines the page for record-level repair."""


class RepairForgeryError(IntegrityError):
    """A scrub-repair candidate failed the enclave's re-vetting: the payload
    the host offered as the "authentic" copy of a corrupted record does not
    hash-match the Merkle state the verifier still holds for that key. The
    repair path never trusts its source — a standby, the shipped tail, and
    the host's own caches are all untrusted couriers — so a host that feeds
    the repairer a forged page is caught by exactly the ``add_merkle`` check
    that would have caught it serving the forgery directly."""


class ProtocolError(ReproError):
    """An honest-caller misuse of the verifier API (not an integrity failure)."""


class AvailabilityError(ReproError):
    """A benign (non-byzantine) failure: the operation did not complete and
    no result was produced, but recovery can restore service.

    This is the third leg of the tri-state invariant (see
    ``docs/PROTOCOL.md``): an operation either succeeds with a verifiable
    receipt, raises :class:`IntegrityError` because the host actually lied,
    or raises an ``AvailabilityError`` — "crashed mid-write" is typed
    differently from "tampered" by construction. After catching one, the
    caller must run recovery (``FastVer.recover``) before issuing further
    operations; the interrupted operation's state is indeterminate until
    then, though never silently wrong.
    """


class TransientIOError(AvailabilityError):
    """An untrusted I/O operation failed transiently; a retry may succeed."""


class TornWriteError(AvailabilityError):
    """A device write persisted only partially (power-loss analogue) and
    bounded read-back retries could not repair it."""


class EnclaveUnavailableError(AvailabilityError):
    """The enclave call gate failed transiently, or the enclave holds no
    restored state; the call did not execute and no trusted state changed."""


class EnclaveRebootError(EnclaveUnavailableError):
    """The enclave rebooted, losing volatile verifier state. Not retryable:
    the host must restore the sealed checkpoint (``FastVer.recover``) before
    any further enclave interaction."""


class OverloadError(AvailabilityError):
    """The serving layer shed the request: its admission queue (or the
    degraded-mode write queue) is full. The request was **not** applied;
    retrying after backoff is always safe."""


class DeadlineExceededError(AvailabilityError):
    """The request's deadline passed before it reached execution. The
    request was **not** applied (deadlines are only checked ahead of the
    store/verifier call, never between apply and respond — a result that
    exists is always returned)."""


class WireDropError(AvailabilityError):
    """The untrusted client<->server wire lost a message. If the *request*
    was lost nothing happened; if the *response* was lost the operation may
    have been applied — the SDK resolves the ambiguity through the
    server's nonce-keyed idempotency table, never by blind re-execution."""


class CircuitOpenError(AvailabilityError):
    """The circuit breaker around the enclave call gate is open: the
    request was rejected without touching the verifier. Reads may still be
    served from the degraded cache; writes fail fast until a half-open
    probe closes the breaker."""


class DegradedModeError(AvailabilityError):
    """The server is in degraded mode (verifier recovery in flight). A
    write raising this has been *queued* for replay after recovery — keep
    polling the idempotency table rather than re-issuing it. A read raising
    this missed the degraded cache and produced nothing."""


class BatchAbortedError(AvailabilityError):
    """A group-commit batch could not be isolated around a failing entry
    (the poisoned operation had already mutated host tree structure, e.g.
    an insert path) and the whole batch was voided. No operation in the
    batch was acknowledged; the server enters recovery and clients resolve
    through the idempotency table, exactly as for any availability error."""


class RetriesExhaustedError(AvailabilityError):
    """The client SDK spent its whole retry budget and confirmed, via the
    server's idempotency table, that the operation was never applied."""


class NotLeaderError(AvailabilityError):
    """The request carried a fenced leadership generation: a standby was
    promoted since the client last refreshed its view. Nothing was applied.
    The client should fetch ``leader_info`` (picking up the fence receipt),
    adopt the new generation, and resolve the in-flight op through the
    idempotency table before re-issuing."""


class LeaseExpiredError(AvailabilityError):
    """The primary's leadership lease expired and a quorum of standbys
    would not renew it. Nothing was applied — the whole point of the lease
    is that a deposed (or partitioned) primary stops burning host and
    enclave work *before* its first rejected ecall, rather than after.
    Clients back off and retry; an honest primary renews on its next pump,
    a deposed one never will (its replication group adopted a higher
    generation and refuses grants for the old one)."""


class RepairFailedError(AvailabilityError):
    """A scrub-repair attempt died before the candidate page was re-vetted
    and patched (no authentic source reachable, or the repair write itself
    failed — the ``scrub.repair.fail`` fault point). The page stays
    quarantined; the scrubber retries on a later pump and the supervisor's
    heal ladder falls through to the whole-store rungs."""


class UnrecoverableError(AvailabilityError):
    """The supervisor's whole recovery ladder — failover, checkpoint
    restore, lenient salvage — failed. Retrying cannot help; the message
    carries the fault seed and injection-trace digest so the failure can
    be replayed for manual intervention."""


class CapacityError(ReproError):
    """A fixed-size resource (verifier cache, enclave memory) is exhausted."""


class EnclaveError(ReproError):
    """Errors in the simulated enclave runtime (bad call gate usage, etc.)."""


class EnclaveDeadError(EnclaveUnavailableError, EnclaveError):
    """The enclave instance was destroyed (torn down or fenced) and can
    never serve again; only failover to a standby or a re-provision helps.
    Typed as both an availability failure (the supervisor routes it into
    the recovery ladder) and an enclave runtime error (call-gate misuse
    against a dead instance)."""


class StoreError(ReproError):
    """Errors inside the FASTER-style host store substrate."""


class CheckpointError(StoreError):
    """A checkpoint could not be taken or restored."""


class RecoveryError(StoreError):
    """Recovery from a checkpoint + log failed."""

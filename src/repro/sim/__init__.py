"""Cost-model-driven performance simulation (see DESIGN.md methodology)."""

from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.executor import RunResult, SimulatedExecutor
from repro.sim.metrics import MetricsBuilder, PhaseTiming, RunMetrics
from repro.sim.tuning import LatencyTuner, run_with_budget

__all__ = [
    "DEFAULT_COSTS",
    "CostModel",
    "RunResult",
    "SimulatedExecutor",
    "MetricsBuilder",
    "PhaseTiming",
    "RunMetrics",
    "LatencyTuner",
    "run_with_budget",
]

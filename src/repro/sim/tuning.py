"""Latency-budget control (performance goal P3, §2.3 and §8.1).

The paper's desideratum P3: "a solution approach for verified databases
should allow the client application to control latency, e.g., specify a
latency bound of one second" — and FastVer exposes exactly two knobs, the
batch size between verifications and the partition depth d. This module
closes the loop: :class:`LatencyTuner` watches each verification's
simulated duration and resizes the batch so the measured verification
latency converges to the requested budget.

The controller is multiplicative-increase/multiplicative-decrease on the
batch size with damping, which converges quickly because verification
latency is roughly proportional to the number of records touched per
epoch, which is monotone in the batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enclave.costmodel import SIMULATED, EnclaveCostProfile
from repro.instrument import COUNTERS, Counters
from repro.sim.costs import DEFAULT_COSTS, CostModel


@dataclass
class TunerState:
    """One observation of a completed verification."""

    batch: int
    latency_s: float


class LatencyTuner:
    """Adapts the ops-per-epoch batch toward a verification-latency budget."""

    def __init__(self, target_latency_s: float, n_workers: int,
                 modeled_db_records: int,
                 profile: EnclaveCostProfile = SIMULATED,
                 costs: CostModel = DEFAULT_COSTS,
                 initial_batch: int = 1_000,
                 min_batch: int = 100, max_batch: int = 1 << 24,
                 damping: float = 0.5):
        if target_latency_s <= 0:
            raise ValueError("latency budget must be positive")
        if not 0 < damping <= 1:
            raise ValueError("damping must be in (0, 1]")
        self.target = target_latency_s
        self.n_workers = n_workers
        self.modeled_db_records = modeled_db_records
        self.profile = profile
        self.costs = costs
        self.batch = initial_batch
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.damping = damping
        self.history: list[TunerState] = []

    def latency_of(self, verify_counters: Counters) -> float:
        """Simulated duration of one verification phase, in seconds."""
        serial = self.costs.total_ns(verify_counters, self.profile,
                                     self.modeled_db_records)
        return self.costs.parallel_ns(serial, self.n_workers) / 1e9

    def observe(self, verify_counters: Counters) -> float:
        """Record a verification and retune the batch. Returns its latency."""
        latency = self.latency_of(verify_counters)
        self.history.append(TunerState(self.batch, latency))
        if latency > 0:
            ratio = self.target / latency
            # Damped multiplicative step; cap the per-epoch move so one
            # noisy epoch cannot slam the batch to an extreme.
            step = max(0.25, min(4.0, ratio ** self.damping))
            self.batch = int(self.batch * step)
        else:
            self.batch *= 2
        self.batch = max(self.min_batch, min(self.max_batch, self.batch))
        return latency

    @property
    def converged(self) -> bool:
        """Within 2x of the budget on the last observation."""
        if not self.history:
            return False
        last = self.history[-1].latency_s
        return self.target / 2 <= last <= self.target * 2


def run_with_budget(db, client, generator, total_ops: int,
                    target_latency_s: float, n_workers: int,
                    modeled_db_records: int,
                    profile: EnclaveCostProfile = SIMULATED,
                    costs: CostModel = DEFAULT_COSTS,
                    initial_batch: int = 1_000):
    """Drive a FastVer store under a latency budget.

    Returns ``(tuner, metrics)`` where metrics is the run's
    :class:`~repro.sim.metrics.RunMetrics`. Operation scheduling matches
    the measured executor; only the epoch boundary is chosen adaptively.
    """
    from repro.sim.metrics import MetricsBuilder
    from repro.workloads.ycsb import OP_GET, OP_INSERT, OP_PUT

    tuner = LatencyTuner(target_latency_s, n_workers, modeled_db_records,
                         profile=profile, costs=costs,
                         initial_batch=initial_batch)
    builder = MetricsBuilder(n_workers, modeled_db_records, profile, costs)
    done = 0
    stream = generator.operations(total_ops)
    before = COUNTERS.snapshot()
    while done < total_ops:
        batch_target = min(tuner.batch, total_ops - done)
        in_batch = 0
        for kind, key, arg in stream:
            worker = done % n_workers
            if kind == OP_GET:
                db.get(client, key, worker=worker)
            elif kind in (OP_PUT, OP_INSERT):
                db.put(client, key, arg, worker=worker)
            else:
                db.scan(client, key, arg, worker=worker)
            done += 1
            in_batch += 1
            if in_batch >= batch_target:
                break
        db.flush()
        builder.add_ops(COUNTERS.snapshot().diff(before), in_batch)
        v_before = COUNTERS.snapshot()
        db.verify()
        db.flush()
        delta = COUNTERS.snapshot().diff(v_before)
        builder.add_verification(delta)
        tuner.observe(delta)
        before = COUNTERS.snapshot()
    return tuner, builder.build()

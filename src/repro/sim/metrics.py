"""Run-level metrics: throughput and verification latency (§8.1).

A FastVer benchmark run alternates *operation phases* (B operations across
n workers) with *verification phases* (epoch close: sorted Merkle updates,
anchor migration, set-hash aggregation). The two headline metrics are:

* **throughput** — key operations per simulated second, counting both
  phases (verification is not free time);
* **verification latency** — the simulated duration of one verification
  phase: how stale a provisional result can be before its epoch receipt
  arrives, the quantity the client's latency budget bounds (P3).

Both derive from counters via the cost model; see DESIGN.md for why this
preserves the paper's comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.enclave.costmodel import SIMULATED, EnclaveCostProfile
from repro.instrument import Counters
from repro.sim.costs import DEFAULT_COSTS, CostModel


@dataclass
class PhaseTiming:
    """Simulated timing of one phase (ops or verification)."""

    serial_ns: float
    wall_ns: float
    verifier_ns: float
    host_ns: float


@dataclass
class RunMetrics:
    """Aggregate result of a measured run."""

    key_ops: int
    op_wall_ns: float
    verify_wall_ns: float
    n_verifications: int
    verifier_fraction: float
    #: Replication/failover summary (from the run's counters): failovers,
    #: shipped_batches, replication_lag_max, recovery_ticks. All zero for
    #: runs without a warm standby attached.
    replication: dict = field(default_factory=dict)
    #: Background scrub & repair summary (from the run's counters):
    #: scrubbed_pages, scrub_mismatches, scrub_repairs, repair_failures,
    #: repair_forgeries, quarantined_pages. All zero for runs without the
    #: scrubber attached.
    scrub: dict = field(default_factory=dict)
    #: SLO engine summary (from the run's counters): slo_evaluations,
    #: slo_alerts, slo_proactive_repairs. All zero for runs without
    #: ``ServerConfig.slo`` armed.
    slo: dict = field(default_factory=dict)
    #: Observability-pipeline summary (filled by the run driver, not the
    #: counters — the obs layer never counts): trace ring events/dropped,
    #: spool stats, windowed-histogram metadata.
    obs: dict = field(default_factory=dict)

    @property
    def total_wall_ns(self) -> float:
        return self.op_wall_ns + self.verify_wall_ns

    @property
    def throughput_mops(self) -> float:
        """Millions of key operations per simulated second."""
        if self.total_wall_ns == 0:
            return 0.0
        return self.key_ops / (self.total_wall_ns / 1e9) / 1e6

    @property
    def verification_latency_s(self) -> float:
        """Average simulated duration of one verification phase."""
        if self.n_verifications == 0:
            return 0.0
        return self.verify_wall_ns / self.n_verifications / 1e9

    def as_dict(self) -> dict:
        """JSON-ready export (used by ``python -m repro metrics``)."""
        return {
            "key_ops": self.key_ops,
            "op_wall_ns": round(self.op_wall_ns, 1),
            "verify_wall_ns": round(self.verify_wall_ns, 1),
            "total_wall_ns": round(self.total_wall_ns, 1),
            "n_verifications": self.n_verifications,
            "verifier_fraction": round(self.verifier_fraction, 4),
            "throughput_mops": round(self.throughput_mops, 6),
            "verification_latency_s": round(self.verification_latency_s, 9),
            "replication": dict(self.replication),
            "scrub": dict(self.scrub),
            "slo": dict(self.slo),
            "obs": dict(self.obs),
        }


class MetricsBuilder:
    """Accumulates phase counters and produces :class:`RunMetrics`."""

    def __init__(self, n_workers: int, modeled_db_records: int,
                 profile: EnclaveCostProfile = SIMULATED,
                 costs: CostModel = DEFAULT_COSTS,
                 serial_verifier: bool = False):
        self.n_workers = n_workers
        self.modeled_db_records = modeled_db_records
        self.profile = profile
        self.costs = costs
        #: Concerto-style deployments funnel all verifier work through one
        #: thread (§5.3); when set, verifier time does not parallelize.
        self.serial_verifier = serial_verifier
        self.op_counters = Counters()
        self.verify_counters = Counters()
        self.key_ops = 0
        self.n_verifications = 0

    def _phase(self, c: Counters) -> PhaseTiming:
        verifier = self.costs.verifier_ns(c, self.profile)
        host = self.costs.host_ns(c, self.modeled_db_records)
        serial = verifier + host
        if self.serial_verifier:
            # Host work spreads across workers; the single verifier thread
            # is the ceiling (plus it serializes against host handoff).
            wall = max(self.costs.parallel_ns(host, self.n_workers), verifier) \
                + min(host, verifier) * 0.05
        else:
            wall = self.costs.parallel_ns(serial, self.n_workers)
        return PhaseTiming(serial, wall, verifier, host)

    def add_ops(self, counters: Counters, key_ops: int) -> None:
        self.op_counters.add(counters)
        self.key_ops += key_ops

    def add_verification(self, counters: Counters) -> None:
        self.verify_counters.add(counters)
        self.n_verifications += 1

    def build(self) -> RunMetrics:
        ops = self._phase(self.op_counters)
        ver = self._phase(self.verify_counters)
        combined = Counters()
        combined.add(self.op_counters)
        combined.add(self.verify_counters)
        fraction = self.costs.verifier_fraction(
            combined, self.profile, self.modeled_db_records)
        return RunMetrics(
            key_ops=self.key_ops,
            op_wall_ns=ops.wall_ns,
            verify_wall_ns=ver.wall_ns,
            n_verifications=self.n_verifications,
            verifier_fraction=fraction,
            # Assembled from the field metadata ("group": "replication")
            # so the max-merge rule and the export share one definition.
            replication=combined.group_dict("replication"),
            scrub=combined.group_dict("scrub"),
            slo=combined.group_dict("slo"),
        )
